"""Tests for the exact combinatorial primitives of the probabilistic model."""

import math
from fractions import Fraction

import pytest
from scipy import special

from repro.core.combinatorics import (
    binomial,
    digamma,
    harmonic_number,
    hypergeometric_pmf,
    log_binomial,
    log_factorial,
    multiset_coefficient,
)


class TestBinomial:
    def test_small_values(self):
        assert binomial(5, 2) == 10
        assert binomial(10, 0) == 1
        assert binomial(10, 10) == 1

    def test_out_of_range_is_zero(self):
        assert binomial(3, 5) == 0
        assert binomial(-1, 0) == 0
        assert binomial(3, -1) == 0

    def test_large_values_are_exact(self):
        assert binomial(100, 50) == math.comb(100, 50)

    def test_log_binomial_matches_log_of_exact(self):
        assert log_binomial(30, 12) == pytest.approx(math.log(binomial(30, 12)), rel=1e-9)

    def test_log_binomial_out_of_support(self):
        assert log_binomial(3, 5) == float("-inf")


class TestMultisetCoefficient:
    def test_known_values(self):
        assert multiset_coefficient(3, 2) == 6
        assert multiset_coefficient(1, 5) == 1

    def test_degenerate_alphabet(self):
        assert multiset_coefficient(0, 0) == 1
        assert multiset_coefficient(0, 3) == 0


class TestHypergeometric:
    def test_pmf_sums_to_one(self):
        population, successes, draws = 20, 7, 5
        total = sum(hypergeometric_pmf(x, population, successes, draws) for x in range(draws + 1))
        assert total == Fraction(1)

    def test_matches_direct_formula(self):
        value = hypergeometric_pmf(2, 10, 4, 3)
        expected = Fraction(binomial(4, 2) * binomial(6, 1), binomial(10, 3))
        assert value == expected

    def test_impossible_configuration_is_zero(self):
        assert hypergeometric_pmf(5, 10, 4, 3) == 0
        assert hypergeometric_pmf(0, 5, 2, 10) == 0

    def test_mean_matches_theory(self):
        population, successes, draws = 30, 12, 7
        mean = sum(
            x * hypergeometric_pmf(x, population, successes, draws) for x in range(draws + 1)
        )
        assert float(mean) == pytest.approx(draws * successes / population)


class TestSpecialFunctions:
    def test_harmonic_number_integers(self):
        assert harmonic_number(0) == 0.0
        assert harmonic_number(1) == pytest.approx(1.0)
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)

    def test_harmonic_number_matches_digamma_identity(self):
        euler_gamma = -special.digamma(1.0)
        for n in (2.5, 7, 13.25):
            assert harmonic_number(n) == pytest.approx(special.digamma(n + 1) + euler_gamma)

    def test_digamma_wrapper(self):
        assert digamma(1.0) == pytest.approx(float(special.digamma(1.0)))

    def test_log_factorial(self):
        assert log_factorial(5) == pytest.approx(math.log(120))
        with pytest.raises(ValueError):
            log_factorial(-1)
