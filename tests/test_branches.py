"""Tests for branch structures and branch isomorphism (Definitions 2 & 3)."""

from collections import Counter

from repro.core.branches import Branch, branch_multiset, branch_of, branches_of, iter_branches
from repro.graphs.graph import Graph


class TestBranchExtraction:
    def test_paper_example2_branches_of_g1(self, paper_g1):
        """Example 2: B(v1)={A; y,y}, B(v2)={C; y,z}, B(v3)={B; y,z}."""
        assert branch_of(paper_g1, "v1") == Branch("A", ("y", "y"))
        assert branch_of(paper_g1, "v2") == Branch("C", ("y", "z"))
        assert branch_of(paper_g1, "v3") == Branch("B", ("y", "z"))

    def test_paper_example2_branches_of_g2(self, paper_g2):
        """Example 2: B(u1)={B; x,z}, B(u2)={A; y}, B(u3)={A; x}, B(u4)={C; y,z}."""
        assert branch_of(paper_g2, "u1") == Branch("B", ("x", "z"))
        assert branch_of(paper_g2, "u2") == Branch("A", ("y",))
        assert branch_of(paper_g2, "u3") == Branch("A", ("x",))
        assert branch_of(paper_g2, "u4") == Branch("C", ("y", "z"))

    def test_isolated_vertex_branch(self):
        graph = Graph.from_dicts({0: "Z"}, {})
        assert branch_of(graph, 0) == Branch("Z", ())

    def test_edge_labels_are_sorted(self):
        graph = Graph.from_dicts(
            {0: "A", 1: "B", 2: "C", 3: "D"},
            {(0, 1): "z", (0, 2): "a", (0, 3): "m"},
        )
        assert branch_of(graph, 0).edge_labels == ("a", "m", "z")

    def test_branches_of_returns_sorted_list(self, paper_g2):
        branches = branches_of(paper_g2)
        assert len(branches) == 4
        keys = [(b.vertex_label, b.edge_labels) for b in branches]
        assert keys == sorted(keys, key=lambda item: (str(item[0]), [str(x) for x in item[1]]))

    def test_iter_branches_covers_every_vertex(self, paper_g1):
        pairs = dict(iter_branches(paper_g1))
        assert set(pairs) == {"v1", "v2", "v3"}


class TestBranchProperties:
    def test_degree_property(self, paper_g1):
        assert branch_of(paper_g1, "v1").degree == 2

    def test_as_strings_layout(self, paper_g1):
        assert branch_of(paper_g1, "v1").as_strings() == ["A", "y", "y"]

    def test_str_rendering(self, paper_g1):
        assert str(branch_of(paper_g1, "v2")) == "{C; y, z}"

    def test_isomorphism_is_equality_of_canonical_keys(self, paper_g1, paper_g2):
        assert branch_of(paper_g1, "v2").is_isomorphic_to(branch_of(paper_g2, "u4"))
        assert not branch_of(paper_g1, "v1").is_isomorphic_to(branch_of(paper_g2, "u2"))

    def test_branches_are_hashable_and_orderable(self):
        a = Branch("A", ("x",))
        b = Branch("A", ("y",))
        assert len({a, b, Branch("A", ("x",))}) == 2
        assert sorted([b, a]) == [a, b]


class TestBranchMultiset:
    def test_multiset_counts_duplicates(self):
        graph = Graph.from_dicts({0: "A", 1: "A"}, {})
        counts = branch_multiset(graph)
        assert counts == Counter({("A", ()): 2})

    def test_paper_example2_intersection_size(self, paper_g1, paper_g2):
        counts1 = branch_multiset(paper_g1)
        counts2 = branch_multiset(paper_g2)
        intersection = sum((counts1 & counts2).values())
        assert intersection == 1, "only B(v2) ≃ B(u4) is shared (Example 2)"

    def test_multiset_size_equals_vertex_count(self, paper_g1, paper_g2):
        assert sum(branch_multiset(paper_g1).values()) == 3
        assert sum(branch_multiset(paper_g2).values()) == 4

    def test_mixed_label_types_do_not_crash_sorting(self):
        graph = Graph.from_dicts({0: "A", 1: 7}, {(0, 1): 3})
        branches = branches_of(graph)
        assert len(branches) == 2
