"""Tests for the posterior estimator Pr[GED <= τ̂ | GBD = ϕ]."""

import pytest

from repro.core.estimator import GBDAEstimator
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.exceptions import EstimationError


@pytest.fixture(scope="module")
def estimator():
    gbd_prior = GBDPrior(num_components=2, seed=0).fit_from_samples(
        [0, 1, 1, 2, 2, 2, 3, 3, 4, 5, 6, 8, 10], max_value=12
    )
    ged_prior = GEDPrior(max_tau=6, num_vertex_labels=4, num_edge_labels=3).fit([6, 10])
    return GBDAEstimator(gbd_prior, ged_prior, num_vertex_labels=4, num_edge_labels=3)


class TestPosterior:
    def test_posterior_is_probability_like(self, estimator):
        for gbd in range(0, 8):
            value = estimator.posterior(gbd, tau_hat=4, extended_order=10)
            assert 0.0 <= value <= 1.0

    def test_small_gbd_scores_higher_than_large_gbd(self, estimator):
        near = estimator.posterior(1, tau_hat=3, extended_order=10)
        far = estimator.posterior(8, tau_hat=3, extended_order=10)
        assert near > far

    def test_monotone_in_threshold(self, estimator):
        values = [estimator.posterior(3, tau_hat=tau, extended_order=10) for tau in range(0, 7)]
        assert values == sorted(values), "a larger threshold can only increase the posterior"

    def test_identical_graphs_accepted_at_any_threshold(self, estimator):
        assert estimator.posterior(0, tau_hat=1, extended_order=10) > 0.1

    def test_posterior_profile_sums_to_posterior(self, estimator):
        gbd, tau_hat, order = 2, 4, 10
        profile = estimator.posterior_profile(gbd, tau_hat, order)
        assert len(profile) == tau_hat + 1
        assert min(sum(profile), 1.0) == pytest.approx(
            estimator.posterior(gbd, tau_hat, order), abs=1e-9
        )

    def test_posterior_profile_clamped_when_raw_sum_overflows(self, estimator):
        # At gbd=0 the raw Bayes summands total well above 1 (the three Λ
        # terms are estimated independently); the profile must agree with
        # the clamped posterior instead of returning the unclamped values.
        gbd, tau_hat, order = 0, 6, 10
        model = estimator.model_for(order)
        prior_gbd = estimator.gbd_prior.probability(gbd)
        raw_sum = sum(
            model.lambda1(tau, gbd) * estimator.ged_prior.probability(tau, order) / prior_gbd
            for tau in range(tau_hat + 1)
            if model.lambda1(tau, gbd) > 0
        )
        assert raw_sum > 1.0, "fixture must exercise the overflow branch"
        profile = estimator.posterior_profile(gbd, tau_hat, order)
        assert sum(profile) == pytest.approx(estimator.posterior(gbd, tau_hat, order), abs=1e-12)
        assert sum(profile) == pytest.approx(1.0, abs=1e-12)
        assert all(contribution >= 0.0 for contribution in profile)
        # prefixes of the clamped profile never exceed 1
        cumulative = 0.0
        for contribution in profile:
            cumulative += contribution
            assert cumulative <= 1.0 + 1e-12

    def test_posterior_profile_unclamped_case_matches_raw_summands(self, estimator):
        # When the raw sum stays below 1 the clamp must be a no-op.
        gbd, tau_hat, order = 8, 6, 10
        profile = estimator.posterior_profile(gbd, tau_hat, order)
        assert sum(profile) == pytest.approx(estimator.posterior(gbd, tau_hat, order), abs=1e-12)
        assert sum(profile) < 1.0

    def test_invalid_arguments_rejected(self, estimator):
        with pytest.raises(EstimationError):
            estimator.posterior(0, tau_hat=-1, extended_order=10)
        with pytest.raises(EstimationError):
            estimator.posterior(-1, tau_hat=2, extended_order=10)

    def test_posterior_profile_validates_like_posterior(self, estimator):
        with pytest.raises(EstimationError):
            estimator.posterior_profile(0, tau_hat=-1, extended_order=10)
        with pytest.raises(EstimationError):
            estimator.posterior_profile(-1, tau_hat=2, extended_order=10)


class TestAccepts:
    def test_accept_threshold(self, estimator):
        posterior = estimator.posterior(1, tau_hat=4, extended_order=10)
        assert estimator.accepts(1, 4, 10, gamma=posterior - 1e-9)
        assert not estimator.accepts(1, 4, 10, gamma=min(posterior + 1e-9, 1.0)) or posterior >= 1.0

    def test_gamma_validation(self, estimator):
        with pytest.raises(EstimationError):
            estimator.accepts(1, 4, 10, gamma=1.5)

    def test_precomputed_posterior_reused(self, estimator):
        assert estimator.accepts(1, 4, 10, gamma=0.0, posterior=0.5)
        assert not estimator.accepts(1, 4, 10, gamma=0.9, posterior=0.5)


class TestModelCache:
    def test_models_cached_per_order(self, estimator):
        model_a = estimator.model_for(10)
        model_b = estimator.model_for(10)
        assert model_a is model_b
        assert estimator.model_for(6) is not model_a

    def test_unfitted_priors_rejected(self):
        with pytest.raises(EstimationError):
            GBDAEstimator(GBDPrior(), GEDPrior(3, 2, 2).fit([5]), 2, 2)
        with pytest.raises(EstimationError):
            GBDAEstimator(
                GBDPrior().fit_from_samples([1, 2, 3]), GEDPrior(3, 2, 2), 2, 2
            )
