"""Tests for the Hungarian and greedy assignment solvers."""

import itertools
import random

import numpy as np
import pytest
from scipy.optimize import linear_sum_assignment

from repro.assignment.greedy import greedy_assignment, sorted_greedy_assignment
from repro.assignment.hungarian import assignment_cost, hungarian
from repro.exceptions import AssignmentError


def _random_matrix(rows, cols, seed):
    rng = random.Random(seed)
    return [[rng.uniform(0, 10) for _ in range(cols)] for _ in range(rows)]


def _brute_force_optimum(matrix):
    rows, cols = len(matrix), len(matrix[0])
    best = float("inf")
    for permutation in itertools.permutations(range(cols), rows):
        best = min(best, sum(matrix[r][c] for r, c in enumerate(permutation)))
    return best


class TestHungarian:
    def test_identity_matrix(self):
        matrix = [[0.0 if i == j else 1.0 for j in range(4)] for i in range(4)]
        assignment = hungarian(matrix)
        assert assignment == [0, 1, 2, 3]
        assert assignment_cost(matrix, assignment) == 0.0

    def test_matches_scipy_on_random_square_matrices(self):
        for seed in range(8):
            matrix = _random_matrix(6, 6, seed)
            ours = assignment_cost(matrix, hungarian(matrix))
            rows, cols = linear_sum_assignment(np.array(matrix))
            theirs = float(np.array(matrix)[rows, cols].sum())
            assert ours == pytest.approx(theirs, abs=1e-9)

    def test_matches_brute_force_on_small_matrices(self):
        for seed in range(5):
            matrix = _random_matrix(4, 4, 100 + seed)
            assert assignment_cost(matrix, hungarian(matrix)) == pytest.approx(
                _brute_force_optimum(matrix), abs=1e-9
            )

    def test_rectangular_matrices_more_columns(self):
        matrix = _random_matrix(3, 6, 7)
        assignment = hungarian(matrix)
        assert len(assignment) == 3
        assert len(set(assignment)) == 3
        rows, cols = linear_sum_assignment(np.array(matrix))
        assert assignment_cost(matrix, assignment) == pytest.approx(
            float(np.array(matrix)[rows, cols].sum()), abs=1e-9
        )

    def test_assignment_is_a_valid_matching(self):
        matrix = _random_matrix(5, 5, 3)
        assignment = hungarian(matrix)
        assert sorted(set(assignment)) == sorted(assignment)

    def test_more_rows_than_columns_rejected(self):
        with pytest.raises(AssignmentError):
            hungarian([[1.0], [2.0]])

    def test_ragged_matrix_rejected(self):
        with pytest.raises(AssignmentError):
            hungarian([[1.0, 2.0], [1.0]])

    def test_empty_matrix(self):
        assert hungarian([]) == []

    def test_negative_costs_supported(self):
        matrix = [[-5.0, 0.0], [0.0, -5.0]]
        assignment = hungarian(matrix)
        assert assignment_cost(matrix, assignment) == pytest.approx(-10.0)


class TestGreedy:
    def test_row_greedy_picks_cheapest_free_column(self):
        matrix = [[1.0, 9.0], [1.0, 9.0]]
        assert greedy_assignment(matrix) == [0, 1]

    def test_sorted_greedy_can_beat_row_greedy(self):
        # Row greedy commits row 0 to column 0 (cost 1) forcing row 1 into 100;
        # sorted greedy assigns the global cheapest pairs first.
        matrix = [[1.0, 2.0], [1.0, 100.0]]
        row_cost = assignment_cost(matrix, greedy_assignment(matrix))
        sorted_cost = assignment_cost(matrix, sorted_greedy_assignment(matrix))
        assert sorted_cost <= row_cost

    def test_greedy_never_beats_hungarian(self):
        for seed in range(6):
            matrix = _random_matrix(6, 6, 200 + seed)
            optimal = assignment_cost(matrix, hungarian(matrix))
            assert assignment_cost(matrix, greedy_assignment(matrix)) >= optimal - 1e-9
            assert assignment_cost(matrix, sorted_greedy_assignment(matrix)) >= optimal - 1e-9

    def test_greedy_is_a_valid_matching(self):
        matrix = _random_matrix(5, 8, 9)
        for solver in (greedy_assignment, sorted_greedy_assignment):
            assignment = solver(matrix)
            assert len(assignment) == 5
            assert len(set(assignment)) == 5

    def test_empty_matrix(self):
        assert greedy_assignment([]) == []
        assert sorted_greedy_assignment([]) == []

    def test_invalid_shapes_rejected(self):
        with pytest.raises(AssignmentError):
            greedy_assignment([[1.0], [2.0]])
        with pytest.raises(AssignmentError):
            sorted_greedy_assignment([[1.0, 2.0], [3.0]])
