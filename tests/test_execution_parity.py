"""Cross-path parity: every online execution path returns identical answers.

The multi-layer refactor leaves four ways to answer one similarity query —

* :meth:`GBDASearch.query` (thin wrapper over the :class:`ExecutionCore`),
* :meth:`GBDASearch.query_reference` (the literal per-pair Algorithm 1 loop),
* :meth:`BatchQueryEngine.query` (vectorized single-query serving) and
  :meth:`BatchQueryEngine.query_batch` (true batched matrix scoring) — each
  in both the pruned filter-and-verify form (``pruned_execution=True``, the
  default: γ-threshold inversion + GBD lower-bound elimination) and the
  unpruned dense form, and
* shard-parallel scoring (per-shard engines merged by
  :meth:`BatchQueryEngine.merge_answers`, the executor's ``"data-parallel"``
  decomposition) —

and this property test drives all of them across seeds, γ/τ̂ grids, query
shapes, and pruning on/off, asserting bit-identical accepted sets and
posterior scores everywhere.  The top-k mode is verified against the first
``k`` entries of the full γ=0 reference ranking (ties broken by graph id).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.kernels import available_backends
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine

MAX_TAU = 3
#: Both kernel backends when the native one builds here, else just numpy —
#: the parity property then covers every online path under each backend.
BACKENDS = available_backends()
#: For ``pytest.mark.parametrize`` legs: a skipped ``native`` leg (instead of
#: a silently absent one) when this machine has no working C toolchain.
BACKEND_PARAMS = [
    pytest.param(
        name,
        marks=()
        if name in BACKENDS
        else pytest.mark.skip(reason="native kernel backend unavailable here"),
    )
    for name in ("numpy", "native")
]
_FITTED_CACHE = {}


def _fitted(seed: int, pruning: bool, backend: str = BACKENDS[0]):
    """Build (once per configuration) a fitted search + engines + shards."""
    key = (seed, pruning, backend)
    if key not in _FITTED_CACHE:
        rng = random.Random(100 + seed)
        graphs = [
            random_labeled_graph(rng.randint(4, 9), rng.randint(3, 12), seed=rng)
            for _ in range(25)
        ]
        database = GraphDatabase(graphs, name=f"parity-{seed}")
        search = GBDASearch(
            database,
            max_tau=MAX_TAU,
            num_prior_pairs=80,
            seed=seed,
            use_index_pruning=pruning,
        ).fit()
        engine = BatchQueryEngine.from_search(
            search, keep_scores="all", cache_size=None, kernel_backend=backend
        )
        # default engine: accepted-only scores, pruned filter-and-verify path
        default_engine = BatchQueryEngine.from_search(
            search, cache_size=None, kernel_backend=backend
        )
        unpruned_engine = BatchQueryEngine.from_search(
            search, cache_size=None, pruned_execution=False, kernel_backend=backend
        )
        shard_engines = engine.shard_engines(3)
        _FITTED_CACHE[key] = (
            search,
            engine,
            default_engine,
            unpruned_engine,
            shard_engines,
        )
    return _FITTED_CACHE[key]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.sampled_from([0, 1]),
    pruning=st.booleans(),
    backend=st.sampled_from(BACKENDS),
    query_seed=st.integers(min_value=0, max_value=40),
    tau_hat=st.integers(min_value=0, max_value=MAX_TAU),
    gamma=st.sampled_from([0.05, 0.3, 0.5, 0.75, 0.9]),
)
def test_all_online_paths_agree(seed, pruning, backend, query_seed, tau_hat, gamma):
    search, engine, default_engine, unpruned_engine, shard_engines = _fitted(
        seed, pruning, backend
    )
    qrng = random.Random(query_seed)
    query = SimilarityQuery(
        random_labeled_graph(qrng.randint(3, 10), qrng.randint(2, 14), seed=qrng),
        tau_hat,
        gamma,
    )

    reference = search.query_reference(query)
    wrapped = search.query(query)
    single = engine.query(query)
    # batch the query together with a decoy so the matrix path really runs
    # a multi-row group (decoy shares τ̂; different graph and γ)
    decoy = SimilarityQuery(
        random_labeled_graph(4, 4, seed=query_seed + 1), tau_hat, 0.5
    )
    batched = engine.query_batch([decoy, query])[1]
    # pruned filter-and-verify (default engine) vs explicit unpruned engine
    pruned_single = default_engine.query(query)
    pruned_batch = default_engine.query_batch([decoy, query])[1]
    unpruned = unpruned_engine.query(query)
    sharded = BatchQueryEngine.merge_answers(
        [shard for shard in (e.query(query) for e in shard_engines)]
    )

    expected_ids = reference.answer.accepted_ids
    assert wrapped.answer.accepted_ids == expected_ids
    assert single.accepted_ids == expected_ids
    assert batched.accepted_ids == expected_ids
    assert pruned_single.accepted_ids == expected_ids
    assert pruned_batch.accepted_ids == expected_ids
    assert unpruned.accepted_ids == expected_ids
    assert sharded.accepted_ids == expected_ids

    # posterior scores are bit-identical, not merely approximately equal
    assert wrapped.posteriors == reference.posteriors
    assert wrapped.gbd_values == reference.gbd_values
    assert single.scores == reference.posteriors
    assert batched.scores == reference.posteriors
    assert sharded.scores == reference.posteriors
    expected_accepted_scores = {gid: reference.posteriors[gid] for gid in expected_ids}
    assert pruned_single.scores == expected_accepted_scores
    assert pruned_batch.scores == expected_accepted_scores
    assert unpruned.scores == expected_accepted_scores

    # top-k mode: exactly the first k of the γ=0 reference ranking
    k = 1 + (query_seed % 7)
    expected_topk = search.query_topk_reference(query, k)
    assert search.query_topk(query, k).ranking == expected_topk
    assert default_engine.query_topk(query, k).ranking == expected_topk
    sharded_topk = BatchQueryEngine.merge_topk_answers(
        [e.query_topk(query, k) for e in shard_engines], k
    )
    assert sharded_topk.ranking == expected_topk


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@pytest.mark.parametrize("pruning", [False, True])
def test_query_batch_returns_input_order(pruning, backend):
    search, engine, _default, _unpruned, _shards = _fitted(0, pruning, backend)
    qrng = random.Random(7)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(3, 9), qrng.randint(2, 12), seed=qrng),
            qrng.randint(0, MAX_TAU),
            qrng.choice([0.25, 0.5, 0.9]),
        )
        for _ in range(17)
    ]
    answers = engine.query_batch(queries)
    assert len(answers) == len(queries)
    for query, answer in zip(queries, answers):
        assert answer.accepted_ids == search.query(query).answer.accepted_ids


def test_data_parallel_executor_matches_batch():
    from repro.serving import ServingExecutor

    search, engine, default_engine, _unpruned, _shards = _fitted(1, False)
    qrng = random.Random(3)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(3, 9), qrng.randint(2, 12), seed=qrng),
            qrng.randint(0, MAX_TAU),
            0.5,
        )
        for _ in range(8)
    ]
    executor = ServingExecutor(default_engine, num_workers=2, mode="data-parallel")
    answers = executor.map(queries)
    expected = default_engine.query_batch(queries)
    for answer, reference in zip(answers, expected):
        assert answer.accepted_ids == reference.accepted_ids
        assert answer.scores == reference.scores
    assert executor.last_stats.num_queries == len(queries)


@pytest.mark.parametrize("backend", BACKEND_PARAMS)
@pytest.mark.parametrize("pruning", [False, True])
def test_bound_filter_never_prunes_an_accepted_graph(pruning, backend):
    """The γ-threshold inversion is sound: pruned-out rows are never accepted.

    (The accepted-set equality of the property test implies this; asserting
    it directly on the counters documents the filter really fires.)
    """
    search, _engine, default_engine, _unpruned, _shards = _fitted(0, pruning, backend)
    before = default_engine.prune_counters
    qrng = random.Random(99)
    for _ in range(10):
        query = SimilarityQuery(
            random_labeled_graph(qrng.randint(3, 12), qrng.randint(2, 16), seed=qrng),
            qrng.randint(0, MAX_TAU),
            qrng.choice([0.5, 0.9, 0.99]),
        )
        assert (
            default_engine.query(query).accepted_ids
            == search.query_reference(query).answer.accepted_ids
        )
    after = default_engine.prune_counters
    generated = after["candidates_generated"] - before["candidates_generated"]
    pruned = after["candidates_pruned"] - before["candidates_pruned"]
    verified = after["candidates_verified"] - before["candidates_verified"]
    assert generated == pruned + verified > 0


def test_topk_on_query_routes_through_every_path():
    """``SimilarityQuery(top_k=...)`` is honoured by query/query_batch/executor."""
    from repro.serving import ServingExecutor

    search, _engine, default_engine, _unpruned, _shards = _fitted(0, False)
    qrng = random.Random(5)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(3, 9), qrng.randint(2, 12), seed=qrng),
            qrng.randint(0, MAX_TAU),
            0.5,
            top_k=qrng.randint(1, 6),
        )
        for _ in range(6)
    ]
    expected = [search.query_topk_reference(q, q.top_k) for q in queries]

    for query, ranked in zip(queries, expected):
        assert default_engine.query(query).ranking == ranked
    for answer, ranked in zip(default_engine.query_batch(queries), expected):
        assert answer.ranking == ranked
        assert answer.accepted_ids == frozenset(gid for gid, _ in ranked)
        assert answer.scores == dict(ranked)

    executor = ServingExecutor(default_engine, num_workers=2, mode="data-parallel")
    for answer, ranked in zip(executor.map(queries), expected):
        assert answer.ranking == ranked

    # regression: query_sharded must re-rank per-shard top-k's, not union them
    for query, ranked in zip(queries, expected):
        sharded = default_engine.query_sharded(query, 3)
        assert sharded.ranking == ranked
        assert sharded.accepted_ids == frozenset(gid for gid, _ in ranked)
