"""Cross-path parity: every online execution path returns identical answers.

The multi-layer refactor leaves four ways to answer one similarity query —

* :meth:`GBDASearch.query` (thin wrapper over the :class:`ExecutionCore`),
* :meth:`GBDASearch.query_reference` (the literal per-pair Algorithm 1 loop),
* :meth:`BatchQueryEngine.query` (vectorized single-query serving) and
  :meth:`BatchQueryEngine.query_batch` (true batched matrix scoring), and
* shard-parallel scoring (per-shard engines merged by
  :meth:`BatchQueryEngine.merge_answers`, the executor's ``"data-parallel"``
  decomposition) —

and this property test drives all of them across seeds, γ/τ̂ grids, query
shapes, and pruning on/off, asserting bit-identical accepted sets and
posterior scores everywhere.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine

MAX_TAU = 3
_FITTED_CACHE = {}


def _fitted(seed: int, pruning: bool):
    """Build (once per configuration) a fitted search + engines + shards."""
    key = (seed, pruning)
    if key not in _FITTED_CACHE:
        rng = random.Random(100 + seed)
        graphs = [
            random_labeled_graph(rng.randint(4, 9), rng.randint(3, 12), seed=rng)
            for _ in range(25)
        ]
        database = GraphDatabase(graphs, name=f"parity-{seed}")
        search = GBDASearch(
            database,
            max_tau=MAX_TAU,
            num_prior_pairs=80,
            seed=seed,
            use_index_pruning=pruning,
        ).fit()
        engine = BatchQueryEngine.from_search(search, keep_scores="all", cache_size=None)
        default_engine = BatchQueryEngine.from_search(search, cache_size=None)
        shard_engines = engine.shard_engines(3)
        _FITTED_CACHE[key] = (search, engine, default_engine, shard_engines)
    return _FITTED_CACHE[key]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.sampled_from([0, 1]),
    pruning=st.booleans(),
    query_seed=st.integers(min_value=0, max_value=40),
    tau_hat=st.integers(min_value=0, max_value=MAX_TAU),
    gamma=st.sampled_from([0.05, 0.3, 0.5, 0.75, 0.9]),
)
def test_all_online_paths_agree(seed, pruning, query_seed, tau_hat, gamma):
    search, engine, default_engine, shard_engines = _fitted(seed, pruning)
    qrng = random.Random(query_seed)
    query = SimilarityQuery(
        random_labeled_graph(qrng.randint(3, 10), qrng.randint(2, 14), seed=qrng),
        tau_hat,
        gamma,
    )

    reference = search.query_reference(query)
    wrapped = search.query(query)
    single = engine.query(query)
    # batch the query together with a decoy so the matrix path really runs
    # a multi-row group (decoy shares τ̂; different graph and γ)
    decoy = SimilarityQuery(
        random_labeled_graph(4, 4, seed=query_seed + 1), tau_hat, 0.5
    )
    batched = engine.query_batch([decoy, query])[1]
    fast = default_engine.query_batch([query])[0]  # accepted-only fast path
    sharded = BatchQueryEngine.merge_answers(
        [shard for shard in (e.query(query) for e in shard_engines)]
    )

    expected_ids = reference.answer.accepted_ids
    assert wrapped.answer.accepted_ids == expected_ids
    assert single.accepted_ids == expected_ids
    assert batched.accepted_ids == expected_ids
    assert fast.accepted_ids == expected_ids
    assert sharded.accepted_ids == expected_ids

    # posterior scores are bit-identical, not merely approximately equal
    assert wrapped.posteriors == reference.posteriors
    assert wrapped.gbd_values == reference.gbd_values
    assert single.scores == reference.posteriors
    assert batched.scores == reference.posteriors
    assert sharded.scores == reference.posteriors
    assert fast.scores == {gid: reference.posteriors[gid] for gid in expected_ids}


@pytest.mark.parametrize("pruning", [False, True])
def test_query_batch_returns_input_order(pruning):
    search, engine, _default, _shards = _fitted(0, pruning)
    qrng = random.Random(7)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(3, 9), qrng.randint(2, 12), seed=qrng),
            qrng.randint(0, MAX_TAU),
            qrng.choice([0.25, 0.5, 0.9]),
        )
        for _ in range(17)
    ]
    answers = engine.query_batch(queries)
    assert len(answers) == len(queries)
    for query, answer in zip(queries, answers):
        assert answer.accepted_ids == search.query(query).answer.accepted_ids


def test_data_parallel_executor_matches_batch():
    from repro.serving import ServingExecutor

    search, engine, default_engine, _shards = _fitted(1, False)
    qrng = random.Random(3)
    queries = [
        SimilarityQuery(
            random_labeled_graph(qrng.randint(3, 9), qrng.randint(2, 12), seed=qrng),
            qrng.randint(0, MAX_TAU),
            0.5,
        )
        for _ in range(8)
    ]
    executor = ServingExecutor(default_engine, num_workers=2, mode="data-parallel")
    answers = executor.map(queries)
    expected = default_engine.query_batch(queries)
    for answer, reference in zip(answers, expected):
        assert answer.accepted_ids == reference.accepted_ids
        assert answer.scores == reference.scores
    assert executor.last_stats.num_queries == len(queries)
