"""Tests for the evaluation layer: metrics, ground-truth oracle, runner, reporting."""

import pytest

from repro.baselines.branch_filter import BranchFilterGED
from repro.baselines.lsap import LSAPGED
from repro.datasets import make_fingerprint_like
from repro.evaluation.ground_truth import GroundTruthOracle, true_answer_set
from repro.evaluation.metrics import (
    ConfusionCounts,
    aggregate_counts,
    evaluate_answer,
    precision_recall_f1,
)
from repro.evaluation.reporting import Table, format_series, format_table
from repro.evaluation.runner import ExperimentRunner


class TestMetrics:
    def test_perfect_answer(self):
        precision, recall, f1 = precision_recall_f1({1, 2, 3}, {1, 2, 3})
        assert precision == recall == f1 == 1.0

    def test_partial_overlap(self):
        counts = evaluate_answer({1, 2, 3, 4}, {3, 4, 5})
        assert counts.true_positives == 2
        assert counts.false_positives == 2
        assert counts.false_negatives == 1
        assert counts.precision == pytest.approx(0.5)
        assert counts.recall == pytest.approx(2 / 3)
        assert counts.f1 == pytest.approx(2 * 0.5 * (2 / 3) / (0.5 + 2 / 3))

    def test_empty_retrieved_and_empty_relevant(self):
        counts = evaluate_answer(set(), set())
        assert counts.precision == counts.recall == counts.f1 == 1.0

    def test_empty_retrieved_nonempty_relevant(self):
        counts = evaluate_answer(set(), {1})
        assert counts.precision == 1.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0

    def test_nonempty_retrieved_empty_relevant(self):
        counts = evaluate_answer({1}, set())
        assert counts.precision == 0.0
        assert counts.recall == 1.0

    def test_aggregation_pools_counts(self):
        pooled = aggregate_counts(
            [ConfusionCounts(1, 1, 0), ConfusionCounts(2, 0, 2)]
        )
        assert pooled.true_positives == 3
        assert pooled.false_positives == 1
        assert pooled.false_negatives == 2
        assert pooled.precision == pytest.approx(0.75)
        assert pooled.recall == pytest.approx(0.6)

    def test_f1_zero_when_both_zero(self):
        assert ConfusionCounts(0, 5, 5).f1 == 0.0


class TestGroundTruthOracle:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_fingerprint_like(num_templates=4, family_size=5, seed=2)

    def test_true_answer_set_helper(self, dataset):
        answers = true_answer_set(dataset, 0, tau_hat=10)
        assert len(answers) >= 1

    def test_oracle_matches_recorded_truth(self, dataset):
        oracle = GroundTruthOracle(dataset)
        key = dataset.query_key(0)
        for graph_id in range(len(dataset.database_graphs)):
            assert oracle.ged(0, graph_id) == dataset.ground_truth.ged(key, graph_id)

    def test_answer_sets_monotone_in_threshold(self, dataset):
        oracle = GroundTruthOracle(dataset)
        assert oracle.answer_set(0, 1) <= oracle.answer_set(0, 5) <= oracle.answer_set(0, 10)

    def test_build_database_covers_all_graphs(self, dataset):
        database = GroundTruthOracle(dataset).build_database()
        assert len(database) == dataset.num_database_graphs

    def test_query_graph_accessor(self, dataset):
        oracle = GroundTruthOracle(dataset)
        assert oracle.query_graph(0) is dataset.query_graphs[0]


class TestExperimentRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        dataset = make_fingerprint_like(num_templates=4, family_size=5, seed=3)
        return ExperimentRunner(dataset, max_queries=2)

    def test_gbda_run_produces_metrics(self, runner):
        search = runner.gbda(max_tau=4, num_prior_pairs=100, seed=0)
        result = runner.run_gbda(search, tau_hat=3, gamma=0.8)
        assert result.method == "GBDA"
        assert result.num_queries == 2
        assert 0.0 <= result.precision <= 1.0
        assert 0.0 <= result.recall <= 1.0
        assert result.average_query_seconds > 0.0
        assert result.offline_seconds > 0.0
        assert len(result.answers) == 2

    def test_gbda_cache_reuses_fitted_search(self, runner):
        first = runner.gbda(max_tau=4, num_prior_pairs=100, seed=0)
        second = runner.gbda(max_tau=4, num_prior_pairs=100, seed=0)
        assert first is second

    def test_baseline_run(self, runner):
        result = runner.run_baseline(BranchFilterGED(), tau_hat=3)
        assert result.method == "Branch-LB"
        assert result.gamma is None
        assert result.recall == 1.0, "a GED lower bound never misses a true answer"

    def test_lsap_recall_is_one(self, runner):
        result = runner.run_baseline(LSAPGED(), tau_hat=3)
        assert result.recall == 1.0

    def test_effectiveness_sweep_shapes(self, runner):
        results = runner.effectiveness_sweep(
            tau_values=[2, 4],
            gamma_values=[0.7, 0.9],
            baselines=[BranchFilterGED()],
            num_prior_pairs=100,
        )
        # 2 thresholds * (2 gamma settings + 1 baseline) = 6 results
        assert len(results) == 6
        labels = {result.method for result in results}
        assert "GBDA(γ=0.70)" in labels
        assert "Branch-LB" in labels

    def test_max_queries_cap(self, runner):
        assert len(runner.query_indices) == 2


class TestReporting:
    def test_format_table_alignment_and_values(self):
        text = format_table("Demo", ["name", "value"], [["alpha", 1.5], ["b", 20000.0]])
        assert "== Demo ==" in text
        assert "alpha" in text
        assert "2.000e+04" in text

    def test_table_object_add_row_validation(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)
        assert "T" in table.render()

    def test_table_add_mapping(self):
        table = Table("T", ["a", "b"])
        table.add_mapping({"a": 1, "b": 2, "ignored": 3})
        assert table.rows == [[1, 2]]

    def test_format_series_layout(self):
        text = format_series(
            "Figure X", "tau", [1, 2, 3], {"GBDA": [0.9, 0.8, 0.7], "LSAP": [0.5, 0.4, 0.3]}
        )
        lines = text.splitlines()
        assert lines[1].split()[:3] == ["tau", "GBDA", "LSAP"]
        assert len(lines) == 3 + 3

    def test_format_cell_conventions(self):
        text = format_table("T", ["x"], [[True], [0.000001], [0.0]])
        assert "yes" in text
        assert "1.000e-06" in text
