"""Unit tests for graph edit operations and edit paths (Definition 1)."""

import pytest

from repro.exceptions import EditOperationError
from repro.graphs.edit_ops import (
    AddEdge,
    AddVertex,
    DeleteEdge,
    DeleteVertex,
    EditPath,
    RelabelEdge,
    RelabelVertex,
    apply_edit_path,
)
from repro.graphs.graph import Graph, VIRTUAL_LABEL


class TestSingleOperations:
    def test_add_vertex(self, triangle):
        AddVertex(3, "D").apply(triangle)
        assert triangle.vertex_label(3) == "D"

    def test_add_vertex_virtual_label_rejected(self, triangle):
        with pytest.raises(EditOperationError):
            AddVertex(3, VIRTUAL_LABEL).apply(triangle)

    def test_delete_vertex_requires_isolation(self, triangle):
        with pytest.raises(EditOperationError):
            DeleteVertex(0).apply(triangle)

    def test_delete_isolated_vertex(self):
        graph = Graph()
        graph.add_vertex(0, "A")
        DeleteVertex(0).apply(graph)
        assert graph.num_vertices == 0

    def test_relabel_vertex(self, triangle):
        RelabelVertex(0, "Z").apply(triangle)
        assert triangle.vertex_label(0) == "Z"

    def test_relabel_vertex_to_same_label_rejected(self, triangle):
        with pytest.raises(EditOperationError):
            RelabelVertex(0, "A").apply(triangle)

    def test_add_edge(self, path_graph):
        AddEdge(0, 3, "z").apply(path_graph)
        assert path_graph.edge_label(0, 3) == "z"

    def test_add_edge_virtual_label_rejected(self, path_graph):
        with pytest.raises(EditOperationError):
            AddEdge(0, 3, VIRTUAL_LABEL).apply(path_graph)

    def test_delete_edge(self, triangle):
        DeleteEdge(0, 1).apply(triangle)
        assert not triangle.has_edge(0, 1)

    def test_relabel_edge(self, triangle):
        RelabelEdge(0, 1, "q").apply(triangle)
        assert triangle.edge_label(0, 1) == "q"

    def test_relabel_edge_to_same_label_rejected(self, triangle):
        with pytest.raises(EditOperationError):
            RelabelEdge(0, 1, "x").apply(triangle)

    def test_operation_codes(self):
        assert AddVertex(0, "A").code == "AV"
        assert DeleteVertex(0).code == "DV"
        assert RelabelVertex(0, "A").code == "RV"
        assert AddEdge(0, 1, "x").code == "AE"
        assert DeleteEdge(0, 1).code == "DE"
        assert RelabelEdge(0, 1, "x").code == "RE"

    def test_vertex_vs_edge_classification(self):
        assert AddVertex(0, "A").is_vertex_operation
        assert not AddVertex(0, "A").is_edge_operation
        assert DeleteEdge(0, 1).is_edge_operation
        assert not DeleteEdge(0, 1).is_vertex_operation


class TestInverses:
    def test_relabel_vertex_inverse(self, triangle):
        operation = RelabelVertex(0, "Z")
        inverse = operation.inverse(triangle)
        operation.apply(triangle)
        inverse.apply(triangle)
        assert triangle.vertex_label(0) == "A"

    def test_delete_edge_inverse(self, triangle):
        operation = DeleteEdge(0, 1)
        inverse = operation.inverse(triangle)
        operation.apply(triangle)
        inverse.apply(triangle)
        assert triangle.edge_label(0, 1) == "x"

    def test_add_vertex_inverse(self, triangle):
        operation = AddVertex(9, "Q")
        inverse = operation.inverse(triangle)
        operation.apply(triangle)
        inverse.apply(triangle)
        assert not triangle.has_vertex(9)

    def test_delete_vertex_inverse(self):
        graph = Graph()
        graph.add_vertex(0, "A")
        operation = DeleteVertex(0)
        inverse = operation.inverse(graph)
        operation.apply(graph)
        inverse.apply(graph)
        assert graph.vertex_label(0) == "A"

    def test_relabel_edge_inverse(self, triangle):
        operation = RelabelEdge(1, 2, "q")
        inverse = operation.inverse(triangle)
        operation.apply(triangle)
        inverse.apply(triangle)
        assert triangle.edge_label(1, 2) == "y"


class TestEditPath:
    def test_paper_example1_path_transforms_g1_into_g2_shape(self, paper_g1):
        """The three operations of Example 1 applied to G1 (modulo vertex ids)."""
        path = EditPath(
            [
                DeleteEdge("v1", "v3"),
                AddVertex("v4", "A"),
                AddEdge("v3", "v4", "x"),
            ]
        )
        result = path.apply_to(paper_g1)
        assert len(path) == 3
        assert result.num_vertices == 4
        assert result.num_edges == 3
        assert result.edge_label("v3", "v4") == "x"
        assert not result.has_edge("v1", "v3")
        # the original graph is untouched (apply_to copies by default)
        assert paper_g1.num_vertices == 3

    def test_apply_in_place(self, triangle):
        path = EditPath([RelabelVertex(0, "Z")])
        result = path.apply_to(triangle, in_place=True)
        assert result is triangle
        assert triangle.vertex_label(0) == "Z"

    def test_verify_accepts_correct_target(self, triangle):
        target = triangle.copy()
        target.relabel_vertex(0, "Z")
        path = EditPath([RelabelVertex(0, "Z")])
        assert path.verify(triangle, target)

    def test_verify_rejects_wrong_target(self, triangle):
        target = triangle.copy()
        target.relabel_vertex(0, "Q")
        path = EditPath([RelabelVertex(0, "Z")])
        assert not path.verify(triangle, target)

    def test_verify_rejects_inapplicable_path(self, triangle):
        path = EditPath([DeleteEdge(0, 99)])
        assert not path.verify(triangle, triangle)

    def test_count_and_iteration(self):
        path = EditPath([RelabelVertex(0, "Z"), RelabelEdge(0, 1, "w"), RelabelVertex(1, "Y")])
        assert path.count("RV") == 2
        assert path.count("RE") == 1
        assert [op.code for op in path] == ["RV", "RE", "RV"]
        assert path[0].code == "RV"
        assert "len=3" in repr(path)

    def test_append_and_extend(self):
        path = EditPath()
        path.append(RelabelVertex(0, "Z"))
        path.extend([RelabelVertex(1, "Y")])
        assert len(path) == 2

    def test_apply_edit_path_helper(self, triangle):
        result = apply_edit_path(triangle, [RelabelVertex(0, "Z")])
        assert result.vertex_label(0) == "Z"
        assert triangle.vertex_label(0) == "A"
