"""Tests for the batched serving engine (repro.serving.engine)."""

from __future__ import annotations

import random

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import ServingError
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine


@pytest.fixture(scope="module")
def random_database():
    rng = random.Random(7)
    graphs = [
        random_labeled_graph(rng.randint(5, 9), rng.randint(5, 12), seed=rng)
        for _ in range(50)
    ]
    return GraphDatabase(graphs, name="serving-random")


@pytest.fixture(scope="module")
def fitted(random_database):
    return GBDASearch(random_database, max_tau=4, num_prior_pairs=150, seed=3).fit()


@pytest.fixture(scope="module")
def engine(fitted):
    return BatchQueryEngine.from_search(fitted, keep_scores="all")


def _random_queries(num, seed, max_tau=4):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 10), rng.randint(4, 14), seed=rng),
            rng.randint(0, max_tau),
            rng.choice([0.25, 0.5, 0.75, 0.9]),
        )
        for _ in range(num)
    ]


class TestRegressionAgainstLoop:
    def test_identical_answers_on_random_queries(self, fitted, engine):
        """Engine answers must match per-query GBDASearch.query exactly."""
        for query in _random_queries(20, seed=11):
            loop = fitted.query(query)
            served = engine.query(query)
            assert served.accepted_ids == loop.answer.accepted_ids
            # keep_scores="all": posterior scores are bit-identical too
            assert served.scores == loop.posteriors

    def test_identical_answers_on_database_members(self, fitted, engine, random_database):
        for graph_id in (0, 7, 23):
            query = SimilarityQuery(random_database[graph_id].graph, 2, 0.5)
            assert engine.query(query).accepted_ids == fitted.query(query).answer.accepted_ids

    def test_query_batch_preserves_order(self, fitted, engine):
        queries = _random_queries(8, seed=5)
        answers = engine.query_batch(queries)
        assert len(answers) == len(queries)
        for query, answer in zip(queries, answers):
            assert answer.accepted_ids == fitted.query(query).answer.accepted_ids


class TestPosteriorTables:
    def test_posterior_vector_matches_estimator(self, fitted, engine):
        estimator = fitted.estimator
        vector = engine.posterior_vector(3, 8)
        assert len(vector) == 9
        for gbd in range(9):
            assert vector[gbd] == estimator.posterior(gbd, 3, 8)

    def test_posterior_table_refactor_matches_posterior(self, fitted):
        estimator = fitted.estimator
        table = estimator.posterior_table(2, [5, 7, 5])
        assert sorted(table) == [5, 7]
        for order, row in table.items():
            assert len(row) == order + 1
            for gbd, value in enumerate(row):
                assert value == estimator.posterior(gbd, 2, order)

    def test_tables_are_cached_and_warmable(self, engine):
        engine.warm([1, 2])
        before = engine.num_cached_tables
        engine.warm([1, 2])
        assert engine.num_cached_tables == before

    def test_warm_rejects_excessive_tau(self, engine):
        with pytest.raises(ServingError):
            engine.warm([99])


class TestValidationAndLifecycle:
    def test_tau_above_max_is_rejected(self, engine):
        query = SimilarityQuery(random_labeled_graph(5, 6, seed=0), 9, 0.5)
        with pytest.raises(ServingError):
            engine.query(query)

    def test_unfitted_search_is_rejected(self, random_database):
        unfitted = GBDASearch(random_database, max_tau=3)
        with pytest.raises(ServingError):
            BatchQueryEngine.from_search(unfitted)

    def test_empty_database_is_rejected(self, fitted):
        with pytest.raises(ServingError):
            BatchQueryEngine(GraphDatabase(), fitted.estimator, max_tau=3)

    def test_keep_scores_mode_is_validated(self, fitted):
        with pytest.raises(ServingError):
            BatchQueryEngine.from_search(fitted, keep_scores="sometimes")

    def test_keep_scores_accepted_limits_scores(self, fitted):
        engine = BatchQueryEngine.from_search(fitted, keep_scores="accepted", cache_size=None)
        answer = engine.query(_random_queries(1, seed=2)[0])
        assert set(answer.scores) == set(answer.accepted_ids)


class TestIndexPruningParity:
    def test_engine_mirrors_pruning_search(self):
        """from_search propagates use_index_pruning; answers stay identical."""
        rng = random.Random(29)
        graphs = [
            random_labeled_graph(rng.randint(4, 8), rng.randint(3, 10), seed=rng)
            for _ in range(30)
        ]
        database = GraphDatabase(graphs)
        pruning = GBDASearch(
            database, max_tau=3, num_prior_pairs=80, seed=4, use_index_pruning=True
        ).fit()
        engine = BatchQueryEngine.from_search(pruning, keep_scores="all", cache_size=None)
        assert engine.use_index_pruning is True
        # a tiny gamma accepts everything that gets scored, so any pruning
        # divergence between the two paths would show up immediately
        for tau_hat, gamma in [(1, 0.05), (2, 0.05), (3, 0.5)]:
            for query_graph in (graphs[0], random_labeled_graph(6, 8, seed=rng)):
                query = SimilarityQuery(query_graph, tau_hat, gamma)
                loop = pruning.query(query)
                served = engine.query(query)
                assert served.accepted_ids == loop.answer.accepted_ids
                assert served.scores == loop.posteriors

    def test_pruning_survives_snapshot(self, tmp_path):
        rng = random.Random(31)
        graphs = [random_labeled_graph(5, 6, seed=rng) for _ in range(10)]
        database = GraphDatabase(graphs)
        search = GBDASearch(
            database, max_tau=2, num_prior_pairs=40, seed=0, use_index_pruning=True
        ).fit()
        engine = BatchQueryEngine.from_search(search)
        path = tmp_path / "pruning.snapshot"
        engine.save(path)
        assert BatchQueryEngine.load(path).use_index_pruning is True


class TestCacheBehaviour:
    def test_cache_hit_gets_its_own_latency(self, fitted):
        """A cache hit must report the lookup time, not the cold scoring time."""
        engine = BatchQueryEngine.from_search(fitted)
        query = _random_queries(1, seed=77)[0]
        cold = engine.query(query)
        hot = engine.query(query)
        assert engine.cache.hits == 1
        assert hot is not cold  # a stamped copy, not the shared cached object
        assert hot.accepted_ids == cold.accepted_ids
        assert hot.elapsed_seconds > 0.0

    def test_caller_mutation_cannot_corrupt_cache(self, fitted):
        engine = BatchQueryEngine.from_search(fitted, keep_scores="accepted")
        query = _random_queries(1, seed=78)[0]
        first = engine.query(query)
        first.scores.clear()
        first.scores[-1] = 99.0  # vandalise the returned answer in place
        second = engine.query(query)
        assert -1 not in second.scores
        assert set(second.scores) == set(second.accepted_ids)

    def test_dropped_engine_does_not_leak_subscription(self):
        import gc

        rng = random.Random(3)
        graphs = [random_labeled_graph(5, 6, seed=rng) for _ in range(10)]
        database = GraphDatabase(graphs)
        search = GBDASearch(database, max_tau=2, num_prior_pairs=40, seed=0).fit()
        for _ in range(4):
            BatchQueryEngine.from_search(search)
        gc.collect()
        database.add(graphs[0].copy(name="post-drop"))  # prunes dead hooks
        assert len(database._subscribers) == 0


class TestIncrementalDatabase:
    def test_added_graph_is_served(self):
        rng = random.Random(19)
        graphs = [
            random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
            for _ in range(25)
        ]
        database = GraphDatabase(graphs, name="serving-incremental")
        search = GBDASearch(database, max_tau=4, num_prior_pairs=100, seed=1).fit()
        engine = BatchQueryEngine.from_search(search)
        base = database[0].graph
        query = SimilarityQuery(base, 2, 0.5)
        engine.query(query)  # populate the cache before mutating the database

        new_id = database.add(base.copy(name="late-duplicate"))
        served = engine.query(query)
        loop = search.query(query)
        assert new_id in served.accepted_ids
        assert served.accepted_ids == loop.answer.accepted_ids


class TestRevisionScopedCache:
    def test_lost_add_hook_cannot_serve_stale_answers(self):
        """Regression: cache keys are scoped to the database revision.

        An engine copy that lost its add-hook (the unpickled process-pool
        scenario — the hook is re-registered on unpickle, but a copy whose
        registration is gone must still be safe) used to keep serving
        pre-``add_many`` result sets from its cache.  With the revision in
        the key, the old entries simply stop matching.
        """
        rng = random.Random(29)
        graphs = [
            random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
            for _ in range(20)
        ]
        database = GraphDatabase(graphs, name="serving-stale")
        search = GBDASearch(database, max_tau=4, num_prior_pairs=100, seed=2).fit()
        engine = BatchQueryEngine.from_search(search)
        base = database[0].graph
        query = SimilarityQuery(base, 2, 0.5)
        engine.query(query)  # populate the cache

        # Simulate the lost hook: the cache is NOT cleared on addition.
        database.unsubscribe(engine._on_graphs_added)
        new_ids = database.add_many([base.copy(name="post-pickle-duplicate")])

        served = engine.query(query)
        assert new_ids[0] in served.accepted_ids
        assert served.accepted_ids == search.query(query).answer.accepted_ids

    def test_model_version_scopes_cache_entries(self):
        rng = random.Random(31)
        graphs = [
            random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
            for _ in range(15)
        ]
        search = GBDASearch(
            GraphDatabase(graphs, name="serving-modelv"), max_tau=3, num_prior_pairs=80, seed=3
        ).fit()
        engine = BatchQueryEngine.from_search(search)
        query = SimilarityQuery(graphs[0], 2, 0.5)
        engine.query(query)
        hits_before = engine.cache.hits
        engine.query(query)
        assert engine.cache.hits == hits_before + 1  # same state: served hot
        engine.model_version += 1  # refit published: old answers unusable
        engine.query(query)
        assert engine.cache.hits == hits_before + 1  # key no longer matches


class TestPrunedExecutionEngine:
    def test_prune_counters_accumulate_and_answers_match(self, fitted):
        pruned = BatchQueryEngine.from_search(fitted, cache_size=None)
        unpruned = BatchQueryEngine.from_search(
            fitted, cache_size=None, pruned_execution=False
        )
        assert pruned.pruned_execution and not unpruned.pruned_execution
        for query in _random_queries(10, seed=41):
            assert pruned.query(query).accepted_ids == unpruned.query(query).accepted_ids
        counters = pruned.prune_counters
        assert counters["candidates_generated"] == (
            counters["candidates_pruned"] + counters["candidates_verified"]
        )
        assert 0.0 <= counters["prune_rate"] <= 1.0

    def test_keep_scores_all_disables_filter_and_verify(self, fitted):
        engine = BatchQueryEngine.from_search(fitted, keep_scores="all", cache_size=None)
        assert not engine._pruned_path  # every candidate's posterior is needed

    def test_pruned_execution_survives_snapshot(self, fitted, tmp_path):
        engine = BatchQueryEngine.from_search(fitted, pruned_execution=False)
        path = tmp_path / "engine.snapshot"
        engine.save(path)
        assert not BatchQueryEngine.load(path).pruned_execution


class TestTopKServing:
    def test_topk_answer_shape_and_determinism(self, fitted, engine):
        query = SimilarityQuery(_random_queries(1, seed=51)[0].query_graph, 3, 0.5)
        answer = engine.query_topk(query, 5)
        assert len(answer.ranking) == 5
        assert answer.accepted_ids == frozenset(gid for gid, _ in answer.ranking)
        assert answer.scores == dict(answer.ranking)
        scores = [score for _gid, score in answer.ranking]
        assert scores == sorted(scores, reverse=True)
        assert answer.ranking == engine.query_topk(query, 5).ranking

    def test_topk_k_exceeding_database_returns_everything(self, fitted, engine):
        query = SimilarityQuery(_random_queries(1, seed=53)[0].query_graph, 2, 0.5)
        answer = engine.query_topk(query, 10_000)
        assert len(answer.ranking) == len(engine.database)

    def test_topk_requires_k(self, engine):
        query = SimilarityQuery(_random_queries(1, seed=55)[0].query_graph, 2, 0.5)
        with pytest.raises(ServingError):
            engine.query_topk(query)
        with pytest.raises(ServingError):
            engine.query_topk(query, 0)

    def test_topk_answers_are_cached_separately(self, fitted):
        engine = BatchQueryEngine.from_search(fitted)
        query = SimilarityQuery(_random_queries(1, seed=57)[0].query_graph, 2, 0.5)
        thresholded = engine.query(query)
        topk = engine.query_topk(query, 3)
        assert engine.cache.misses >= 2  # distinct entries, no cross-talk
        again = engine.query_topk(query, 3)
        assert again.ranking == topk.ranking
        assert engine.cache.hits >= 1
        assert thresholded.ranking is None
