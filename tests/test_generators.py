"""Tests for the random labeled graph generators and networkx interop."""

import random

import networkx as nx
import pytest

from repro.graphs.generators import (
    from_networkx,
    random_labeled_graph,
    scale_free_labeled_graph,
    to_networkx,
)
from repro.graphs.validation import validate_graph


class TestRandomLabeledGraph:
    def test_vertex_and_edge_counts(self):
        graph = random_labeled_graph(20, 30, seed=1)
        assert graph.num_vertices == 20
        assert graph.num_edges >= 19, "connected generator wires a spanning structure"

    def test_connectivity(self):
        graph = random_labeled_graph(30, 45, seed=2, connected=True)
        assert graph.is_connected()

    def test_disconnected_allowed(self):
        graph = random_labeled_graph(30, 0, seed=2, connected=False)
        assert graph.num_edges == 0

    def test_edge_count_clamped_to_simple_graph_maximum(self):
        graph = random_labeled_graph(5, 100, seed=3)
        assert graph.num_edges <= 10

    def test_reproducibility(self):
        a = random_labeled_graph(15, 20, seed=42)
        b = random_labeled_graph(15, 20, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_labeled_graph(15, 20, seed=1)
        b = random_labeled_graph(15, 20, seed=2)
        assert a != b

    def test_labels_come_from_alphabets(self):
        graph = random_labeled_graph(10, 12, vertex_labels=["Q"], edge_labels=["e"], seed=0)
        assert graph.vertex_label_set() == frozenset({"Q"})
        assert graph.edge_label_set() <= frozenset({"e"})

    def test_rng_instance_accepted(self):
        rng = random.Random(7)
        graph = random_labeled_graph(10, 12, seed=rng)
        assert graph.num_vertices == 10

    def test_empty_and_singleton(self):
        assert random_labeled_graph(0, 0, seed=0).num_vertices == 0
        assert random_labeled_graph(1, 5, seed=0).num_edges == 0

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            random_labeled_graph(-1, 0)

    def test_output_is_valid(self):
        graph = random_labeled_graph(25, 40, seed=5)
        validate_graph(graph, require_connected=True)


class TestScaleFreeLabeledGraph:
    def test_connectivity_and_size(self):
        graph = scale_free_labeled_graph(100, edges_per_vertex=2, seed=1)
        assert graph.num_vertices == 100
        assert graph.is_connected()

    def test_hub_emerges(self):
        graph = scale_free_labeled_graph(300, edges_per_vertex=3, seed=2)
        assert graph.max_degree() >= 3 * graph.average_degree(), "heavy-tailed degrees expected"

    def test_reproducibility(self):
        a = scale_free_labeled_graph(50, seed=9)
        b = scale_free_labeled_graph(50, seed=9)
        assert a == b

    def test_edges_per_vertex_validation(self):
        with pytest.raises(ValueError):
            scale_free_labeled_graph(10, edges_per_vertex=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            scale_free_labeled_graph(-5)

    def test_average_degree_bounded_by_parameter(self):
        graph = scale_free_labeled_graph(200, edges_per_vertex=3, seed=4)
        assert graph.average_degree() <= 2 * 3 + 1

    def test_output_is_valid(self):
        graph = scale_free_labeled_graph(60, seed=6)
        validate_graph(graph, require_connected=True)


class TestNetworkxInterop:
    def test_round_trip_preserves_structure(self, triangle):
        nx_graph = to_networkx(triangle)
        back = from_networkx(nx_graph)
        assert back == triangle

    def test_to_networkx_attributes(self, triangle):
        nx_graph = to_networkx(triangle)
        assert nx_graph.nodes[0]["label"] == "A"
        assert nx_graph.edges[0, 1]["label"] == "x"

    def test_from_networkx_defaults(self):
        nx_graph = nx.path_graph(4)
        graph = from_networkx(nx_graph, default_vertex_label="V", default_edge_label="E")
        assert graph.num_vertices == 4
        assert graph.vertex_label(0) == "V"
        assert graph.edge_label(0, 1) == "E"

    def test_from_networkx_drops_self_loops(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        nx_graph.add_edge(0, 1)
        graph = from_networkx(nx_graph)
        assert graph.num_edges == 1
