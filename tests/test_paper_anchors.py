"""Regression tests anchored to values stated explicitly in the paper.

Every test in this module checks a number or a claim that appears verbatim in
the paper text, so that any future refactoring that drifts away from the
published model is caught immediately.
"""

import pytest

from repro.baselines.ged_exact import exact_ged
from repro.core.branches import Branch, branch_of
from repro.core.gbd import graph_branch_distance
from repro.core.model import BranchEditModel
from repro.core.omegas import branch_type_count
from repro.graphs.extended import ExtendedGraphView, extend_pair
from repro.graphs.graph import Graph


class TestExample1And2:
    """Figure 1 / Examples 1–2: GED(G1, G2) = 3 and GBD(G1, G2) = 3."""

    def test_ged_is_three(self, paper_g1, paper_g2):
        assert exact_ged(paper_g1, paper_g2) == 3

    def test_gbd_is_three(self, paper_g1, paper_g2):
        assert graph_branch_distance(paper_g1, paper_g2) == 3

    def test_branch_listing_matches_example2(self, paper_g1, paper_g2):
        expected = {
            ("v1", Branch("A", ("y", "y"))),
            ("v2", Branch("C", ("y", "z"))),
            ("v3", Branch("B", ("y", "z"))),
        }
        assert {(v, branch_of(paper_g1, v)) for v in paper_g1.vertices()} == expected
        expected_g2 = {
            ("u1", Branch("B", ("x", "z"))),
            ("u2", Branch("A", ("y",))),
            ("u3", Branch("A", ("x",))),
            ("u4", Branch("C", ("y", "z"))),
        }
        assert {(u, branch_of(paper_g2, u)) for u in paper_g2.vertices()} == expected_g2

    def test_only_shared_branch_is_c_yz(self, paper_g1, paper_g2):
        shared = [
            (v, u)
            for v in paper_g1.vertices()
            for u in paper_g2.vertices()
            if branch_of(paper_g1, v).is_isomorphic_to(branch_of(paper_g2, u))
        ]
        assert shared == [("v2", "u4")]


class TestExample3:
    """Figure 2: the extended pair G1{1}, G2{0}."""

    def test_extension_factors(self, paper_g1, paper_g2):
        extended1, extended2 = extend_pair(paper_g1, paper_g2)
        assert extended1.extension_factor == 1
        assert extended2.extension_factor == 0

    def test_extended_graphs_are_complete(self, paper_g1, paper_g2):
        extended1, extended2 = extend_pair(paper_g1, paper_g2)
        for view in (extended1, extended2):
            n = view.num_vertices
            assert view.num_edges == n * (n - 1) // 2

    def test_zero_factor_inserts_no_virtual_vertex(self, paper_g2):
        view = ExtendedGraphView(paper_g2, 0)
        assert list(view.virtual_vertices()) == []


class TestExample4:
    """Figure 4: GED(G1', G2') = 2 with pure-relabelling optimal scripts."""

    def test_ged_is_two(self, example4_g1, example4_g2):
        assert exact_ged(example4_g1, example4_g2) == 2

    def test_gbd_is_two(self, example4_g1, example4_g2):
        assert graph_branch_distance(example4_g1, example4_g2) == 2


class TestExample7:
    """Example 7: the non-zero posterior summands Λ1(2,3) and Λ1(3,3)."""

    @pytest.fixture(scope="class")
    def model(self):
        return BranchEditModel(extended_order=4, num_vertex_labels=3, num_edge_labels=3)

    def test_lambda1_values(self, model):
        assert model.lambda1(2, 3) == pytest.approx(0.5113, abs=2e-3)
        assert model.lambda1(3, 3) == pytest.approx(0.5631, abs=2e-3)

    def test_zero_summands(self, model):
        assert model.lambda1(0, 3) == 0.0
        assert model.lambda1(1, 3) == 0.0

    def test_phi_worked_example(self, model):
        """With Λ3/Λ2 ≡ 0.8 as in Example 7, Φ = 0.8595 > γ = 0.8."""
        phi = sum(model.lambda1(tau, 3) for tau in range(0, 4)) * 0.8
        assert phi == pytest.approx(0.8595, abs=5e-3)
        assert phi > 0.8


class TestStatedBoundsAndCounts:
    def test_one_operation_changes_at_most_two_branches(self, paper_g1):
        """Section VI-C.2: 'one graph edit operation can at most change two branches'."""
        edited = paper_g1.copy()
        edited.relabel_edge("v1", "v2", "q")
        assert graph_branch_distance(paper_g1, edited) <= 2
        edited_vertex = paper_g1.copy()
        edited_vertex.relabel_vertex("v1", "Z")
        assert graph_branch_distance(paper_g1, edited_vertex) <= 2

    def test_gbd_equals_max_order_minus_intersection(self, paper_g1, paper_g2):
        """Equation (1): GBD = max(|V1|, |V2|) − |B_G1 ∩ B_G2| = 4 − 1."""
        assert graph_branch_distance(paper_g1, paper_g2) == 4 - 1

    def test_branch_type_count_equation33(self):
        """Equation (33): D = |LV| · C(|V'1| + |LE| − 1, |LE|)."""
        from math import comb

        assert branch_type_count(4, 3, 3) == 3 * comb(4 + 3 - 1, 3)

    def test_extended_editable_elements(self):
        """The extended graph on v vertices has v + C(v, 2) editable elements."""
        model = BranchEditModel(4, 3, 3)
        assert model.editable_elements() == 4 + 6

    def test_a_star_limit_claim(self):
        """The paper cites A* failing beyond ~12 vertices; our guard encodes that."""
        from repro.baselines.ged_exact import AStarGED

        assert AStarGED().max_vertices == 12

    def test_scale_free_average_degree_logarithmic(self):
        """Theorem 5: scale-free average degree grows like O(log n)."""
        from repro.graphs.generators import scale_free_labeled_graph

        small = scale_free_labeled_graph(100, edges_per_vertex=3, seed=1)
        large = scale_free_labeled_graph(1000, edges_per_vertex=3, seed=1)
        # a 10x increase in n must not produce anywhere near a 10x increase in d
        assert large.average_degree() <= small.average_degree() * 2.5


class TestDefinitionEdgeCases:
    def test_virtual_label_not_in_alphabets(self, paper_g1):
        from repro.graphs.graph import VIRTUAL_LABEL

        assert VIRTUAL_LABEL not in paper_g1.vertex_label_set()
        assert VIRTUAL_LABEL not in paper_g1.edge_label_set()

    def test_empty_intersection_gives_maximal_gbd(self):
        g1 = Graph.from_dicts({0: "A"}, {})
        g2 = Graph.from_dicts({0: "B", 1: "B"}, {})
        assert graph_branch_distance(g1, g2) == 2
