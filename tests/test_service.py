"""Concurrency suite for the network service layer (repro.service).

Covers the acceptance criteria of the service subsystem:

* N parallel clients receive answers bit-identical to direct
  :class:`BatchQueryEngine` calls (thresholded and top-k, incl. rankings);
* the overload path returns a typed ``OVERLOADED`` error instead of
  hanging;
* graceful shutdown drains every in-flight query (none dropped);
* a snapshot hot-swap under load never serves a torn answer;
* the micro-batcher really coalesces concurrent queries into batches;
* the admission controller enforces both budgets.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import (
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine, load_engine, save_engine
from repro.service import (
    AdmissionController,
    AsyncServiceClient,
    MicroBatcher,
    ServiceClient,
    start_service_thread,
)


# ---------------------------------------------------------------------- #
# fixtures
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def random_database():
    rng = random.Random(17)
    graphs = [
        random_labeled_graph(rng.randint(5, 9), rng.randint(5, 12), seed=rng)
        for _ in range(50)
    ]
    return GraphDatabase(graphs, name="service-random")


@pytest.fixture(scope="module")
def fitted(random_database):
    return GBDASearch(random_database, max_tau=4, num_prior_pairs=150, seed=5).fit()


@pytest.fixture(scope="module")
def engine(fitted):
    return BatchQueryEngine.from_search(fitted)


def _random_queries(num, seed, max_tau=4, with_topk=True):
    rng = random.Random(seed)
    queries = [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 10), rng.randint(4, 14), seed=rng),
            rng.randint(0, max_tau),
            rng.choice([0.25, 0.5, 0.75, 0.9]),
        )
        for _ in range(num)
    ]
    if with_topk:
        # Mix thresholded and top-k modes in one stream: rankings must
        # survive the wire too.
        for position in range(0, num, 4):
            base = queries[position]
            queries[position] = SimilarityQuery(
                base.query_graph, base.tau_hat, base.gamma, top_k=5
            )
    return queries


def _assert_identical(received: QueryAnswer, direct: QueryAnswer) -> None:
    assert received.accepted_ids == direct.accepted_ids
    assert received.scores == direct.scores
    assert received.ranking == direct.ranking
    assert received.method == direct.method


# ---------------------------------------------------------------------- #
# end-to-end parity under concurrency
# ---------------------------------------------------------------------- #
class TestConcurrentParity:
    NUM_CLIENTS = 8

    def test_parallel_clients_get_bit_identical_answers(self, engine):
        queries = _random_queries(16, seed=23)
        direct = [engine.query(query) for query in queries]

        handle = start_service_thread(engine, max_batch=16, max_delay_ms=3.0)
        failures = []

        def run_client(worker: int) -> None:
            try:
                with ServiceClient(*handle.address) as client:
                    answers = client.query_many(queries)
                    for received, expected in zip(answers, direct):
                        _assert_identical(received, expected)
            except Exception as exc:  # surfaced on the main thread below
                failures.append((worker, exc))

        try:
            threads = [
                threading.Thread(target=run_client, args=(worker,))
                for worker in range(self.NUM_CLIENTS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not failures, failures
            metrics = handle.service.metrics()
            served = metrics["serving"]["num_queries"]
            assert served == self.NUM_CLIENTS * len(queries)
            # The whole point: concurrent requests coalesced into batches.
            assert metrics["batcher"]["mean_batch_size"] > 1.0
        finally:
            handle.stop()

    def test_async_client_pipelines_one_connection(self, engine):
        queries = _random_queries(12, seed=29)
        direct = [engine.query(query) for query in queries]
        handle = start_service_thread(engine, max_batch=12, max_delay_ms=3.0)

        async def run() -> None:
            client = await AsyncServiceClient.connect(*handle.address)
            try:
                answers = await client.query_many(queries)
                for received, expected in zip(answers, direct):
                    _assert_identical(received, expected)
                pong = await client.ping()
                assert pong["pong"] is True
            finally:
                await client.close()

        try:
            asyncio.run(run())
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# admission / overload
# ---------------------------------------------------------------------- #
class TestOverload:
    def test_overload_returns_typed_error_instead_of_hanging(self, engine):
        # One in-flight query per connection; a long batching tick keeps the
        # first query in flight while the rest of the pipelined burst
        # arrives — they must be shed immediately, not queued.
        handle = start_service_thread(
            engine, max_batch=64, max_delay_ms=250.0, max_per_connection=1
        )
        queries = _random_queries(10, seed=31, with_topk=False)
        direct = [engine.query(query) for query in queries]
        try:
            with ServiceClient(*handle.address) as client:
                results = client.query_many(queries, return_errors=True)
            answers = [r for r in results if isinstance(r, QueryAnswer)]
            rejected = [r for r in results if isinstance(r, ServiceOverloadedError)]
            assert len(answers) + len(rejected) == len(queries)
            assert rejected, "the burst should have tripped the per-connection cap"
            assert answers, "the admitted query must still be answered"
            for position, result in enumerate(results):
                if isinstance(result, QueryAnswer):
                    _assert_identical(result, direct[position])
            assert handle.service.admission.as_dict()["rejected"] >= len(rejected)
        finally:
            handle.stop()

    def test_query_raises_typed_exception_without_return_errors(self, engine):
        handle = start_service_thread(
            engine, max_batch=64, max_delay_ms=250.0, max_per_connection=1
        )
        queries = _random_queries(6, seed=37, with_topk=False)
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceOverloadedError):
                    client.query_many(queries)
                # The connection survives the rejection: later traffic works.
                answer = client.query(queries[0])
                assert answer.accepted_ids == engine.query(queries[0]).accepted_ids
        finally:
            handle.stop()


class TestAdmissionController:
    def test_global_budget(self):
        admission = AdmissionController(max_pending=2)
        assert admission.try_admit(1)
        assert admission.try_admit(2)
        assert not admission.try_admit(3)
        admission.release(1)
        assert admission.try_admit(3)
        stats = admission.as_dict()
        assert stats["admitted"] == 3 and stats["rejected"] == 1
        assert stats["rejection_rate"] == 0.25

    def test_per_connection_budget(self):
        admission = AdmissionController(max_pending=10, max_per_connection=2)
        assert admission.try_admit(1)
        assert admission.try_admit(1)
        assert not admission.try_admit(1)  # connection 1 is at its cap
        assert admission.try_admit(2)  # other connections unaffected
        admission.release(1)
        assert admission.try_admit(1)
        admission.forget_connection(1)
        assert admission.pending == 3

    def test_invalid_budgets(self):
        with pytest.raises(ServiceError):
            AdmissionController(max_pending=0)
        with pytest.raises(ServiceError):
            AdmissionController(max_pending=1, max_per_connection=-1)


# ---------------------------------------------------------------------- #
# micro-batcher
# ---------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_concurrent_submissions_coalesce_into_one_batch(self):
        seen_batches = []

        async def runner(queries):
            seen_batches.append(len(queries))
            return [f"answer-{id(query)}" for query in queries]

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=16, max_delay_ms=20.0)
            batcher.start()
            futures = [batcher.submit(object()) for _ in range(5)]
            results = await asyncio.gather(*futures)
            await batcher.stop()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 5
        assert seen_batches == [5]

    def test_flush_on_full_does_not_wait_for_the_timer(self):
        seen_batches = []

        async def runner(queries):
            seen_batches.append(len(queries))
            return list(queries)

        async def scenario():
            loop = asyncio.get_running_loop()
            batcher = MicroBatcher(runner, max_batch=3, max_delay_ms=10_000.0)
            batcher.start()
            start = loop.time()
            await asyncio.gather(*[batcher.submit(i) for i in range(3)])
            elapsed = loop.time() - start
            await batcher.stop()
            return elapsed

        elapsed = asyncio.run(scenario())
        assert seen_batches == [3]
        assert elapsed < 5.0, "a full batch must flush immediately"

    def test_stop_drains_queued_queries(self):
        served = []

        async def runner(queries):
            served.extend(queries)
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=100, max_delay_ms=10_000.0)
            batcher.start()
            futures = [batcher.submit(i) for i in range(7)]
            await batcher.stop()  # must not wait 10 s, must answer all 7
            return await asyncio.gather(*futures)

        results = asyncio.run(scenario())
        assert results == list(range(7))
        assert served == list(range(7))

    def test_submit_after_stop_is_refused(self):
        async def runner(queries):
            return list(queries)

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=4, max_delay_ms=1.0)
            batcher.start()
            await batcher.stop()
            with pytest.raises(ServiceError):
                batcher.submit(object())

        asyncio.run(scenario())

    def test_runner_failure_propagates_to_every_future(self):
        async def runner(queries):
            raise RuntimeError("engine exploded")

        async def scenario():
            batcher = MicroBatcher(runner, max_batch=8, max_delay_ms=5.0)
            batcher.start()
            futures = [batcher.submit(i) for i in range(3)]
            results = await asyncio.gather(*futures, return_exceptions=True)
            await batcher.stop()
            return results

        results = asyncio.run(scenario())
        assert all(isinstance(result, RuntimeError) for result in results)

    def test_invalid_knobs(self):
        async def runner(queries):
            return list(queries)

        with pytest.raises(ServiceError):
            MicroBatcher(runner, max_batch=0)
        with pytest.raises(ServiceError):
            MicroBatcher(runner, max_delay_ms=-1.0)


# ---------------------------------------------------------------------- #
# graceful shutdown
# ---------------------------------------------------------------------- #
class TestGracefulDrain:
    def test_stop_answers_every_inflight_query(self, engine):
        # A huge tick: the pipelined burst is admitted and then *waits* in
        # the batcher.  stop() must drain it promptly (not after 30 s) and
        # every query must be answered before the connection closes.
        import time

        handle = start_service_thread(engine, max_batch=64, max_delay_ms=30_000.0)
        queries = _random_queries(10, seed=41)
        direct = [engine.query(query) for query in queries]
        outcome: dict = {}

        def run_client() -> None:
            try:
                with ServiceClient(*handle.address, timeout=60.0) as client:
                    outcome["answers"] = client.query_many(queries)  # blocks until drained
            except Exception as exc:
                outcome["error"] = exc

        client_thread = threading.Thread(target=run_client)
        try:
            client_thread.start()
            # Deterministic hand-off: stop only once every query has been
            # admitted and is waiting in the batcher — the drain guarantee
            # is about *admitted* queries, and this removes scheduler races.
            deadline = time.time() + 30.0
            while (
                handle.service.admission.pending < len(queries)
                and time.time() < deadline
            ):
                time.sleep(0.01)
            assert handle.service.admission.pending == len(queries)
            handle.stop()
            client_thread.join(timeout=60)
            assert not client_thread.is_alive()
            assert "error" not in outcome, outcome.get("error")
            answers = outcome["answers"]
            assert len(answers) == len(queries)
            for received, expected in zip(answers, direct):
                _assert_identical(received, expected)
        finally:
            handle.stop()
            client_thread.join(timeout=10)

    def test_queries_after_drain_get_typed_shutdown_error(self, engine):
        handle = start_service_thread(engine, max_batch=4, max_delay_ms=1.0)
        query = _random_queries(1, seed=43, with_topk=False)[0]
        try:
            client = ServiceClient(*handle.address)
            assert client.query(query).method == "GBDA"
            handle.stop()
            # The drained server hung up: the next request fails fast with a
            # typed error (or the OS-level connection error), never a hang.
            with pytest.raises((ServiceError, OSError)):
                client.query(query)
            client.close()
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# zero-downtime snapshot hot swap
# ---------------------------------------------------------------------- #
class TestHotSwap:
    @pytest.fixture()
    def snapshots(self, fitted, tmp_path):
        """Two snapshots whose answers verifiably differ on the query stream."""
        rng = random.Random(47)
        # Loose thresholds (τ̂=2, γ=0.2) so an *exact copy* of the query
        # graph (GBD 0 → maximal posterior) is certainly accepted — engine
        # B's answers then provably differ from engine A's.
        queries = [
            SimilarityQuery(
                random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng),
                2,
                0.2,
            )
            for _ in range(6)
        ]
        engine_a = BatchQueryEngine.from_search(fitted)
        path_a = tmp_path / "engine_a.snapshot"
        save_engine(engine_a, path_a)

        # Engine B serves a database grown by exact copies of the query
        # graphs: at τ̂ >= 0 those duplicates are accepted (GBD 0), so A and
        # B answers differ for every query — a torn mixture is detectable.
        engine_b = load_engine(path_a)
        engine_b.database.add_many([query.query_graph for query in queries])
        engine_b.model_version = engine_a.model_version + 1
        path_b = tmp_path / "engine_b.snapshot"
        save_engine(engine_b, path_b)
        return queries, path_a, path_b

    def test_hot_swap_under_load_never_serves_torn_answers(self, snapshots):
        queries, path_a, path_b = snapshots
        reference_a = load_engine(path_a)
        reference_b = load_engine(path_b)
        expected_a = [reference_a.query(query) for query in queries]
        expected_b = [reference_b.query(query) for query in queries]
        for a, b in zip(expected_a, expected_b):
            assert a.accepted_ids != b.accepted_ids, "fixtures must be distinguishable"

        handle = start_service_thread(
            None, snapshot_path=path_a, max_batch=8, max_delay_ms=1.0
        )
        stop_traffic = threading.Event()
        failures = []

        def traffic(worker: int) -> None:
            try:
                with ServiceClient(*handle.address) as client:
                    while not stop_traffic.is_set():
                        for position, answer in enumerate(client.query_many(queries)):
                            matches_a = (
                                answer.accepted_ids == expected_a[position].accepted_ids
                                and answer.scores == expected_a[position].scores
                            )
                            matches_b = (
                                answer.accepted_ids == expected_b[position].accepted_ids
                                and answer.scores == expected_b[position].scores
                            )
                            if not (matches_a or matches_b):
                                raise AssertionError(
                                    f"torn answer for query {position}: "
                                    f"{sorted(answer.accepted_ids)}"
                                )
            except Exception as exc:
                failures.append((worker, exc))

        threads = [threading.Thread(target=traffic, args=(worker,)) for worker in range(4)]
        try:
            for thread in threads:
                thread.start()
            with ServiceClient(*handle.address) as admin:
                before = admin.stats()
                assert before["engine"]["model_version"] == 0
                result = admin.reload(path_b)
                assert result["model_version"] == 1
                # After the reload returns, the swap has happened: every new
                # batch scores on engine B.
                for position, answer in enumerate(admin.query_many(queries)):
                    assert answer.accepted_ids == expected_b[position].accepted_ids
                    assert answer.scores == expected_b[position].scores
                after = admin.stats()
                assert after["engine"]["model_version"] == 1
                assert after["engine"]["database_size"] > before["engine"]["database_size"]
                assert after["server"]["reload_count"] == 1
        finally:
            stop_traffic.set()
            for thread in threads:
                thread.join(timeout=30)
            handle.stop()
        assert not failures, failures


# ---------------------------------------------------------------------- #
# deadlines end-to-end
# ---------------------------------------------------------------------- #
class TestDeadlines:
    def test_generous_deadline_answers_normally(self, engine):
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        query = _random_queries(1, seed=61, with_topk=False)[0]
        try:
            with ServiceClient(*handle.address) as client:
                answer = client.query(query, deadline_ms=60_000)
            _assert_identical(answer, engine.query(query))
        finally:
            handle.stop()

    def test_tight_deadline_is_refused_at_admission(self, engine):
        # A sub-millisecond budget expires in transit: admission must
        # refuse it with the typed error before it costs engine cycles.
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        query = _random_queries(1, seed=67, with_topk=False)[0]
        try:
            with ServiceClient(*handle.address) as client:
                results = [None] * 20
                for position in range(len(results)):
                    try:
                        results[position] = client.query(query, deadline_ms=0.001)
                    except DeadlineExceededError as exc:
                        results[position] = exc
            refused = [r for r in results if isinstance(r, DeadlineExceededError)]
            assert refused, "a 1µs deadline must expire before admission"
            stats = handle.service.metrics()
            assert stats["admission"]["deadline_expired"] >= len(refused)
            assert stats["resilience"]["deadline_dropped_admission"] >= len(refused)
        finally:
            handle.stop()

    def test_deadline_expiring_in_the_batch_queue_is_dropped_at_flush(self, engine):
        # A long batching tick: the query is admitted, then its budget
        # runs out while it waits.  The flush must shed it (typed error)
        # instead of scoring expired work.
        handle = start_service_thread(engine, max_batch=64, max_delay_ms=200.0)
        query = _random_queries(1, seed=71, with_topk=False)[0]
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(DeadlineExceededError):
                    client.query(query, deadline_ms=30)
            stats = handle.service.metrics()
            assert stats["batcher"]["deadline_dropped"] >= 1
            assert stats["resilience"]["deadline_dropped_batcher"] >= 1
            # The engine never scored the expired query.
            assert stats["serving"]["num_queries"] == 0
        finally:
            handle.stop()

    def test_invalid_deadline_is_a_bad_request(self, engine):
        from repro.exceptions import ProtocolError

        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        query = _random_queries(1, seed=73, with_topk=False)[0]
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ProtocolError):
                    client.query(query, deadline_ms=-5)
                # The connection survives: later traffic is answered.
                _assert_identical(client.query(query), engine.query(query))
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# stop() racing reload()
# ---------------------------------------------------------------------- #
class TestStopDuringReload:
    def test_stop_waits_for_an_inflight_swap(self, fitted, tmp_path):
        """stop() during a hot swap must serialize behind the reload lock:
        either the swap completes and then teardown runs, or the reload is
        refused — never an interleaving, never a hang."""
        engine = BatchQueryEngine.from_search(fitted)
        path = tmp_path / "engine.snapshot"
        save_engine(engine, path)
        handle = start_service_thread(
            engine, snapshot_path=path, max_batch=8, max_delay_ms=1.0
        )
        outcomes: dict = {}

        def do_reload() -> None:
            try:
                with ServiceClient(*handle.address, timeout=30.0) as client:
                    outcomes["reload"] = client.reload(path)
            except Exception as exc:
                outcomes["reload_error"] = exc

        reloader = threading.Thread(target=do_reload)
        reloader.start()
        handle.stop(timeout=60)
        reloader.join(timeout=60)
        assert not reloader.is_alive(), "stop() must not deadlock with reload()"
        # Whichever side won the race, it finished cleanly: a completed
        # swap or a typed refusal / connection teardown — never a hang.
        assert "reload" in outcomes or "reload_error" in outcomes

    def test_reload_after_close_is_refused(self, engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(engine, path)
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        service = handle.service
        handle.stop()
        with pytest.raises(ServiceError, match="shutting down"):
            asyncio.run(service.reload_engine(path))


# ---------------------------------------------------------------------- #
# metrics endpoint
# ---------------------------------------------------------------------- #
class TestMetricsEndpoint:
    def test_metrics_document_shape(self, fitted):
        # A dedicated engine so cache counters start from zero.
        engine = BatchQueryEngine.from_search(fitted)
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        queries = _random_queries(6, seed=53, with_topk=False)
        try:
            with ServiceClient(*handle.address) as client:
                client.query_many(queries)
                client.query_many(queries)  # repeats → cache hits
                metrics = client.stats()
            assert metrics["serving"]["num_queries"] == 2 * len(queries)
            assert metrics["serving"]["latency_samples"] == 2 * len(queries)
            assert 0.0 < metrics["serving"]["p99_latency"]
            # Satellite: the result-cache hit rate is surfaced here.
            assert metrics["engine"]["cache"]["hits"] >= len(queries)
            assert 0.0 < metrics["engine"]["cache"]["hit_rate"] <= 1.0
            assert metrics["engine"]["prune_counters"]["candidates_generated"] > 0
            # The resolved kernel backend is surfaced for fleet debugging.
            assert metrics["engine"]["kernel_backend"] in ("numpy", "native")
            assert metrics["batcher"]["batches_flushed"] >= 1
            assert metrics["batcher"]["queries_batched"] == 2 * len(queries)
            assert metrics["admission"]["admitted"] == 2 * len(queries)
            assert metrics["server"]["uptime_seconds"] > 0.0
        finally:
            handle.stop()

    def test_service_requires_engine_or_snapshot(self):
        from repro.service import SimilarityService

        with pytest.raises(ServiceError):
            SimilarityService()

    def test_corrupt_reload_answers_with_error_and_keeps_serving(self, engine, tmp_path):
        """A reload pointed at garbage must fail *loudly* (typed error frame,
        no hang) and leave the old engine serving."""
        bad = tmp_path / "corrupt.snapshot"
        bad.write_bytes(b"this is not a snapshot")
        handle = start_service_thread(engine, max_batch=4, max_delay_ms=1.0)
        query = _random_queries(1, seed=59, with_topk=False)[0]
        try:
            with ServiceClient(*handle.address, timeout=10.0) as client:
                with pytest.raises(ServiceError):
                    client.reload(bad)
                # Old engine still up and serving identical answers, and the
                # failure is visible in the metrics document.
                stats = client.stats()
                assert stats["server"]["reload_count"] == 0
                assert stats["server"]["reload_failures"] == 1
                _assert_identical(client.query(query), engine.query(query))
        finally:
            handle.stop()
