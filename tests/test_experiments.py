"""Tests for the experiment drivers (fast, tiny-scale runs)."""

import pytest

from repro.datasets import make_fingerprint_like
from repro.experiments import (
    ReproductionScale,
    run_design_ablations,
    run_effectiveness_real,
    run_figure5_gbd_prior_fit,
    run_figure6_ged_prior_matrix,
    run_figure7_time_real,
    run_table3,
    run_table4_gbd_prior_costs,
    run_table5_ged_prior_costs,
    run_variant_comparison,
    dataset_suite,
)
from repro.experiments.config import SMALL_SCALE, ExperimentOutput

TINY = ReproductionScale(
    real_templates=3,
    family_size=4,
    synthetic_sizes=(20,),
    max_queries=1,
    prior_pairs=40,
    real_tau_values=(1, 3),
    synthetic_tau_values=(5,),
    gamma_values=(0.8,),
    real_max_vertices=15,
    seed=7,
)


@pytest.fixture(scope="module")
def tiny_datasets():
    return dataset_suite(TINY, include_synthetic=False)


@pytest.fixture(scope="module")
def tiny_fingerprint():
    return make_fingerprint_like(num_templates=3, family_size=4, max_vertices=15, seed=1)


class TestConfig:
    def test_presets_are_consistent(self):
        assert SMALL_SCALE.real_templates <= 10
        assert SMALL_SCALE.prior_pairs >= 100
        assert len(SMALL_SCALE.gamma_values) == 3

    def test_dataset_suite_names(self, tiny_datasets):
        assert [d.name for d in tiny_datasets] == ["AIDS", "Fingerprint", "GREC", "AASD"]

    def test_vertex_cap_applied(self, tiny_datasets):
        for dataset in tiny_datasets:
            assert max(g.num_vertices for g in dataset.database_graphs) <= 15 + TINY.family_size

    def test_output_str(self):
        output = ExperimentOutput(name="x", rendered="hello")
        assert str(output) == "hello"


class TestTableDrivers:
    def test_table3(self, tiny_datasets):
        output = run_table3(TINY, datasets=tiny_datasets)
        assert "Table III" in output.rendered
        assert set(output.data["measured"]) == {"AIDS", "Fingerprint", "GREC", "AASD"}

    def test_table4(self, tiny_fingerprint):
        output = run_table4_gbd_prior_costs(TINY, datasets=[tiny_fingerprint])
        assert "Table IV" in output.rendered
        assert output.data["Fingerprint"]["pairs"] > 0

    def test_table5(self, tiny_fingerprint):
        output = run_table5_ged_prior_costs(TINY, datasets=[tiny_fingerprint], max_tau=4)
        assert "Table V" in output.rendered
        assert output.data["Fingerprint"]["orders"] >= 1


class TestFigureDrivers:
    def test_figure5(self, tiny_fingerprint):
        output = run_figure5_gbd_prior_fit(TINY, dataset=tiny_fingerprint, max_value=10)
        assert len(output.data["sampled"]) == len(output.data["inferred"]) == 10

    def test_figure6(self, tiny_fingerprint):
        output = run_figure6_ged_prior_matrix(TINY, dataset=tiny_fingerprint, max_tau=3)
        matrix = output.data["matrix"]
        for column_index in range(len(output.data["orders"])):
            column = [matrix[tau][column_index] for tau in matrix]
            assert abs(sum(column) - 1.0) < 1e-6

    def test_figure7(self, tiny_fingerprint):
        output = run_figure7_time_real(TINY, datasets=[tiny_fingerprint], gbda_tau_values=(1, 3))
        series = output.data["series"]
        assert "LSAP" in series and "GBDA(τ̂=1)" in series
        assert all(len(values) == 1 for values in series.values())

    def test_effectiveness_real(self, tiny_fingerprint):
        output = run_effectiveness_real(tiny_fingerprint, TINY, tau_values=(1, 3), gamma_values=(0.8,))
        series = output.data["series"]
        assert set(series) == {"precision", "recall", "f1"}
        assert all(value == 1.0 for value in series["recall"]["LSAP"])

    def test_variant_comparison(self, tiny_fingerprint):
        output = run_variant_comparison(
            tiny_fingerprint, TINY, tau_values=(1, 3), alpha_values=(5,), weight_values=(0.5,)
        )
        series = output.data["series"]
        assert "GBDA" in series and "V1(α=5)" in series and "V2(w=0.5)" in series

    def test_design_ablations(self, tiny_fingerprint):
        output = run_design_ablations(tiny_fingerprint, TINY, tau_hat=3, gamma=0.8)
        assert output.data["answers_identical"]
        assert output.data["plain_time"] > 0
