"""Tests for normal-distribution helpers, continuity correction, and pair sampling."""

import math
import random

import pytest

from repro.stats.distributions import (
    continuity_corrected_pmf,
    normal_cdf,
    normal_interval_probability,
    normal_pdf,
)
from repro.stats.sampling import sample_items, sample_pairs


class TestNormalHelpers:
    def test_pdf_peak_at_mean(self):
        assert normal_pdf(0.0, 0.0, 1.0) == pytest.approx(1.0 / math.sqrt(2 * math.pi))
        assert normal_pdf(0.0, 0.0, 1.0) > normal_pdf(1.0, 0.0, 1.0)

    def test_pdf_requires_positive_std(self):
        with pytest.raises(ValueError):
            normal_pdf(0.0, 0.0, 0.0)

    def test_cdf_known_values(self):
        assert normal_cdf(0.0, 0.0, 1.0) == pytest.approx(0.5)
        assert normal_cdf(1.96, 0.0, 1.0) == pytest.approx(0.975, abs=1e-3)

    def test_cdf_requires_positive_std(self):
        with pytest.raises(ValueError):
            normal_cdf(0.0, 0.0, -1.0)

    def test_interval_probability_symmetric(self):
        assert normal_interval_probability(-1.0, 1.0, 0.0, 1.0) == pytest.approx(0.6827, abs=1e-3)

    def test_interval_probability_handles_reversed_bounds(self):
        forward = normal_interval_probability(-1.0, 1.0, 0.0, 1.0)
        reverse = normal_interval_probability(1.0, -1.0, 0.0, 1.0)
        assert forward == pytest.approx(reverse)


class TestContinuityCorrection:
    def test_single_component_matches_interval(self):
        value = continuity_corrected_pmf(3, [1.0], [3.0], [1.0])
        assert value == pytest.approx(normal_interval_probability(2.5, 3.5, 3.0, 1.0))

    def test_mixture_weights_respected(self):
        value = continuity_corrected_pmf(0, [0.5, 0.5], [0.0, 10.0], [1.0, 1.0])
        assert value == pytest.approx(0.5 * normal_interval_probability(-0.5, 0.5, 0.0, 1.0), abs=1e-6)

    def test_mismatched_parameter_lengths_rejected(self):
        with pytest.raises(ValueError):
            continuity_corrected_pmf(0, [1.0], [0.0, 1.0], [1.0])

    def test_equation14_sums_to_one_over_integers(self):
        weights, means, stds = [0.4, 0.6], [2.0, 7.0], [1.0, 1.5]
        total = sum(continuity_corrected_pmf(v, weights, means, stds) for v in range(-10, 30))
        assert total == pytest.approx(1.0, abs=1e-6)


class TestSampling:
    def test_sample_items_without_replacement(self):
        items = list(range(100))
        sample = sample_items(items, 10, seed=1)
        assert len(sample) == len(set(sample)) == 10

    def test_sample_items_returns_all_when_count_exceeds(self):
        assert sorted(sample_items([1, 2, 3], 10)) == [1, 2, 3]

    def test_sample_pairs_distinct(self):
        pairs = sample_pairs(list(range(20)), 30, seed=2)
        assert len(pairs) == 30
        assert len(set(pairs)) == 30, "distinct pairs are never repeated"
        assert all(a != b for a, b in pairs)

    def test_sample_pairs_all_when_requesting_more_than_exist(self):
        pairs = sample_pairs([1, 2, 3], 100)
        assert len(pairs) == 3

    def test_sample_pairs_with_replacement_mode(self):
        pairs = sample_pairs(list(range(5)), 50, seed=3, distinct=False)
        assert len(pairs) == 50
        assert all(a != b for a, b in pairs)

    def test_sample_pairs_tiny_population(self):
        assert sample_pairs([1], 5) == []
        assert sample_pairs([], 5) == []

    def test_sample_pairs_reproducible(self):
        a = sample_pairs(list(range(50)), 20, seed=7)
        b = sample_pairs(list(range(50)), 20, seed=7)
        assert a == b

    def test_sample_pairs_accepts_rng_instance(self):
        rng = random.Random(11)
        pairs = sample_pairs(list(range(10)), 5, seed=rng)
        assert len(pairs) == 5
