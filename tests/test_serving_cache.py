"""Tests for the LRU query-result cache (repro.serving.cache)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ServingError
from repro.serving.cache import QueryResultCache, query_cache_key


class TestLRUSemantics:
    def test_hit_and_miss_counters(self):
        cache = QueryResultCache(capacity=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_least_recently_used_is_evicted(self):
        cache = QueryResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a" → "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = QueryResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # update must also refresh recency
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10

    def test_clear_keeps_counters(self):
        cache = QueryResultCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1
        cache.reset_counters()
        assert cache.stats()["hits"] == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ServingError):
            QueryResultCache(capacity=0)


class TestConcurrentConsistency:
    """The asyncio server scrapes stats() from the event loop while the
    thread-offloaded scoring path hits/evicts concurrently — counters and
    occupancy must stay mutually consistent (satellite bugfix)."""

    def test_counters_are_exact_under_concurrent_access(self):
        import threading

        cache = QueryResultCache(capacity=8)
        num_threads, ops_per_thread = 8, 2000
        barrier = threading.Barrier(num_threads)

        def hammer(worker: int) -> None:
            barrier.wait()
            for index in range(ops_per_thread):
                key = (worker + index) % 16  # half the keyspace fits → evictions
                if cache.get(key) is None:
                    cache.put(key, key)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(num_threads)]
        for thread in threads:
            thread.start()
        readers_saw_consistent = []
        for _ in range(50):
            stats = cache.stats()  # concurrent scrapes must never be torn
            readers_saw_consistent.append(
                stats["hits"] >= 0
                and stats["misses"] >= 0
                and 0.0 <= stats["hit_rate"] <= 1.0
                and stats["size"] <= stats["capacity"]
            )
        for thread in threads:
            thread.join()
        assert all(readers_saw_consistent)
        stats = cache.stats()
        # Every get() incremented exactly one counter: the totals must add
        # up exactly — a lost update would break this equality.
        assert stats["hits"] + stats["misses"] == num_threads * ops_per_thread
        assert len(cache) <= cache.capacity

    def test_stats_snapshot_is_internally_consistent(self):
        cache = QueryResultCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        total = stats["hits"] + stats["misses"]
        assert stats["hit_rate"] == stats["hits"] / total


class TestCacheKey:
    def test_key_is_order_free_over_branches(self):
        branches_a = Counter({("A", ("x",)): 2, ("B", ("y",)): 1})
        branches_b = Counter({("B", ("y",)): 1, ("A", ("x",)): 2})
        assert query_cache_key(branches_a, 2, 0.5) == query_cache_key(branches_b, 2, 0.5)

    def test_key_distinguishes_thresholds(self):
        branches = Counter({("A", ("x",)): 1})
        base = query_cache_key(branches, 2, 0.5)
        assert query_cache_key(branches, 3, 0.5) != base
        assert query_cache_key(branches, 2, 0.9) != base

    def test_key_distinguishes_counts(self):
        one = Counter({("A", ("x",)): 1})
        two = Counter({("A", ("x",)): 2})
        assert query_cache_key(one, 2, 0.5) != query_cache_key(two, 2, 0.5)

    def test_key_distinguishes_database_revision(self):
        """Same query, grown database: the key must not match (stale-answer bug)."""
        branches = Counter({("A", ("x",)): 1})
        base = query_cache_key(branches, 2, 0.5, revision=3)
        assert query_cache_key(branches, 2, 0.5, revision=4) != base
        assert query_cache_key(branches, 2, 0.5, revision=3) == base

    def test_key_distinguishes_model_version(self):
        branches = Counter({("A", ("x",)): 1})
        base = query_cache_key(branches, 2, 0.5, model_version=1)
        assert query_cache_key(branches, 2, 0.5, model_version=2) != base

    def test_key_distinguishes_topk_mode(self):
        """A thresholded answer and a top-k ranking must never share an entry."""
        branches = Counter({("A", ("x",)): 1})
        base = query_cache_key(branches, 2, 0.5)
        assert query_cache_key(branches, 2, 0.5, top_k=5) != base
        assert query_cache_key(branches, 2, 0.5, top_k=4) != query_cache_key(
            branches, 2, 0.5, top_k=5
        )
