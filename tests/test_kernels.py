"""Tests for the kernel backend registry (repro.db.kernels).

The columnar store, execution core, serving engine, and snapshots all hold a
*configured* backend name and resolve it through this registry — these tests
pin the resolution semantics (auto preference, environment override, hard
errors for an explicitly requested but unbuildable native backend).
"""

from __future__ import annotations

import random

import pytest

from repro.core.search import GBDASearch
from repro.db.columnar import ColumnarBranchStore
from repro.db.database import GraphDatabase
from repro.db.kernels import (
    KNOWN_BACKENDS,
    available_backends,
    backend_module,
    native_available,
    native_load_error,
    resolve_backend,
)
from repro.db.kernels import numpy_impl
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine
from repro.serving.snapshot import load_engine, save_engine

NATIVE = native_available()
needs_native = pytest.mark.skipif(not NATIVE, reason="native backend unavailable here")
needs_no_native = pytest.mark.skipif(NATIVE, reason="native backend builds here")


class TestResolveBackend:
    def test_known_names_and_registry_shape(self):
        assert KNOWN_BACKENDS == ("auto", "numpy", "native")
        assert available_backends()[0] == "numpy"
        assert resolve_backend("numpy") == "numpy"
        # name normalisation: case and surrounding whitespace are forgiven
        assert resolve_backend("  NumPy ") == "numpy"
        assert resolve_backend("") in available_backends()

    def test_auto_prefers_native_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
        expected = "native" if NATIVE else "numpy"
        assert resolve_backend("auto") == expected
        assert resolve_backend() == expected

    def test_environment_overrides_auto_but_not_explicit(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "numpy")
        assert resolve_backend("auto") == "numpy"
        # an explicitly configured name always wins over the environment
        if NATIVE:
            assert resolve_backend("native") == "native"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            resolve_backend("fortran")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            backend_module("fortran")

    @needs_no_native
    def test_explicit_native_raises_when_unbuildable(self, monkeypatch):
        with pytest.raises(RuntimeError, match="native.*unavailable"):
            resolve_backend("native")
        # the environment pin is equally hard — CI wants build breakage loud
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", "native")
        with pytest.raises(RuntimeError, match="native.*unavailable"):
            resolve_backend("auto")

    def test_load_error_explains_unavailability(self):
        if NATIVE:
            assert native_load_error() is None
        else:
            assert isinstance(native_load_error(), str) and native_load_error()

    def test_backend_module_lookup(self):
        assert backend_module("numpy") is numpy_impl
        if NATIVE:
            from repro.db.kernels import native

            assert backend_module("native") is native


class TestBackendPlumbing:
    """The configured name travels store → core → engine → snapshot."""

    @pytest.fixture(scope="class")
    def fitted(self):
        rng = random.Random(17)
        graphs = [
            random_labeled_graph(rng.randint(3, 8), rng.randint(2, 10), seed=rng)
            for _ in range(12)
        ]
        database = GraphDatabase(graphs, name="kernels-plumbing")
        return GBDASearch(database, max_tau=2, num_prior_pairs=40, seed=3).fit()

    def test_store_holds_resolved_name(self):
        store = ColumnarBranchStore(backend="numpy")
        assert store.backend == "numpy"
        assert ColumnarBranchStore(backend="auto").backend in available_backends()
        with pytest.raises(ValueError):
            ColumnarBranchStore(backend="fortran")

    def test_engine_reports_active_backend(self, fitted):
        engine = BatchQueryEngine.from_search(fitted, kernel_backend="numpy")
        assert engine.kernel_backend == "numpy"
        assert engine.active_kernel_backend == "numpy"
        auto_engine = BatchQueryEngine.from_search(fitted)
        assert auto_engine.kernel_backend == "auto"
        assert auto_engine.active_kernel_backend in available_backends()

    def test_snapshot_round_trips_configured_backend(self, fitted, tmp_path):
        engine = BatchQueryEngine.from_search(fitted, kernel_backend="numpy")
        path = save_engine(engine, tmp_path / "numpy.snap")
        assert load_engine(path).kernel_backend == "numpy"
        # "auto" is persisted un-resolved: a snapshot from a machine with a
        # C toolchain must not pin native on a machine without one.
        auto_engine = BatchQueryEngine.from_search(fitted)
        assert auto_engine.active_kernel_backend in available_backends()
        path = save_engine(auto_engine, tmp_path / "auto.snap")
        restored = load_engine(path)
        assert restored.kernel_backend == "auto"

    @needs_native
    def test_backends_answer_identically(self, fitted):
        from repro.db.query import SimilarityQuery

        numpy_engine = BatchQueryEngine.from_search(
            fitted, cache_size=None, kernel_backend="numpy"
        )
        native_engine = BatchQueryEngine.from_search(
            fitted, cache_size=None, kernel_backend="native"
        )
        qrng = random.Random(29)
        for _ in range(12):
            query = SimilarityQuery(
                random_labeled_graph(qrng.randint(3, 9), qrng.randint(2, 12), seed=qrng),
                qrng.randint(0, 2),
                qrng.choice([0.25, 0.5, 0.9]),
            )
            a = numpy_engine.query(query)
            b = native_engine.query(query)
            assert a.accepted_ids == b.accepted_ids
            assert a.scores == b.scores
