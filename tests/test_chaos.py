"""Chaos suite: the service's failure-model invariant under injected faults.

The invariant, per fault class and with everything combined:

    **Every query either returns the bit-identical correct answer or a
    typed error, and the service returns to healthy.**

Faults come from the seeded harness in :mod:`repro.testing.faults` — a
frame-aware proxy tearing up the wire (drops, corruption, truncation,
resets, delays), an engine wrapper raising/stalling mid-batch, and
kill-and-restart of the whole service thread.  The seed is pinned via the
``REPRO_CHAOS_SEED`` environment variable (CI runs one pinned and one
unpinned, allowed-to-fail, flake-detector pass); on an invariant failure
the injector's full fault schedule is dumped to ``results/`` so the run
can be replayed exactly.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import ReproError
from repro.graphs.generators import random_labeled_graph
from repro.obs.trace import Tracer
from repro.serving import BatchQueryEngine
from repro.service import RetryPolicy, ServiceClient, start_service_thread
from repro.testing import ChaosService, FaultInjector, FaultyEngine, start_fault_proxy

#: One seed pins every injector in the module; override to explore.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1729"))

#: Errors that count as *typed* under the invariant: every library error
#: plus the builtin transient classes the clients intentionally raise.
TYPED_ERRORS = (ReproError, TimeoutError, ConnectionError, OSError)

_SCHEDULE_DIR = Path(__file__).resolve().parent.parent / "results"


# ---------------------------------------------------------------------- #
# fixtures & helpers
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def fitted():
    rng = random.Random(CHAOS_SEED)
    graphs = [
        random_labeled_graph(rng.randint(5, 9), rng.randint(5, 12), seed=rng)
        for _ in range(40)
    ]
    database = GraphDatabase(graphs, name="chaos")
    return GBDASearch(database, max_tau=4, num_prior_pairs=120, seed=CHAOS_SEED).fit()


@pytest.fixture(scope="module")
def engine(fitted):
    return BatchQueryEngine.from_search(fitted)


@pytest.fixture(scope="module")
def workload(engine):
    rng = random.Random(CHAOS_SEED + 1)
    queries = [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 8), rng.randint(4, 10), seed=rng),
            rng.randint(0, 4),
            rng.choice([0.5, 0.75, 0.9]),
            top_k=5 if position % 4 == 0 else None,
        )
        for position in range(12)
    ]
    return queries, [engine.query(query) for query in queries]


def _retry_policy():
    return RetryPolicy(
        max_attempts=8, base_delay_ms=20, max_delay_ms=250, seed=CHAOS_SEED
    )


def _dump_schedule(name: str, injector: FaultInjector) -> Path:
    """Persist the injector's replayable schedule (the CI failure artifact)."""
    _SCHEDULE_DIR.mkdir(parents=True, exist_ok=True)
    artifact = _SCHEDULE_DIR / f"chaos_schedule_{name}.json"
    artifact.write_text(json.dumps(injector.as_dict(), indent=2, sort_keys=True))
    return artifact


def _run_workload(address, workload, *, read_timeout=2.0):
    """Drive every query through a retrying client; return per-slot outcomes."""
    queries, _ = workload
    outcomes = []
    client = ServiceClient(*address, retry=_retry_policy(), read_timeout=read_timeout)
    try:
        for query in queries:
            try:
                outcomes.append(client.query(query))
            except TYPED_ERRORS as exc:
                outcomes.append(exc)
                # The connection may be poisoned; start clean for the
                # next query so one failure cannot cascade.
                try:
                    client._reconnect()
                except TYPED_ERRORS:
                    pass
    finally:
        client.close()
    return outcomes


def _check_invariant(name, injector, outcomes, workload, healthy_address):
    """Answer-or-typed-error per slot, then the service is healthy again."""
    _, direct = workload
    try:
        for position, (outcome, expected) in enumerate(zip(outcomes, direct)):
            if isinstance(outcome, QueryAnswer):
                assert outcome.accepted_ids == expected.accepted_ids, position
                assert outcome.scores == expected.scores, position
                assert outcome.ranking == expected.ranking, position
            else:
                assert isinstance(outcome, TYPED_ERRORS), (
                    f"slot {position} surfaced an untyped failure: {outcome!r}"
                )
        # Recovery: a clean client, straight at the service, gets service.
        # A FaultyEngine keeps injecting probabilistically even now, so the
        # probe tolerates a few typed failures — but must land one clean,
        # bit-identical answer.
        with ServiceClient(*healthy_address, read_timeout=10.0) as probe:
            assert probe.ping()["pong"] is True
            answer = None
            for _ in range(20):
                try:
                    answer = probe.query(workload[0][0])
                    break
                except TYPED_ERRORS:
                    continue
            assert answer is not None, "service did not recover"
            assert answer.accepted_ids == direct[0].accepted_ids
            assert probe.stats()["server"]["uptime_seconds"] > 0
    except AssertionError:
        artifact = _dump_schedule(name, injector)
        raise AssertionError(
            f"chaos invariant violated (seed={injector.seed}); "
            f"fault schedule dumped to {artifact}"
        ) from None


def _wire_case(engine, workload, name, **fault_probs):
    """One wire-fault class: service ← fault proxy ← retrying client.

    The workload repeats (bounded) until the injector has fired at least
    once — the invariant must be judged on a run that actually saw the
    fault class, whatever the seed.
    """
    injector = FaultInjector(CHAOS_SEED, **fault_probs)
    handle = start_service_thread(engine, max_batch=8, max_delay_ms=2.0)
    proxy = start_fault_proxy(handle.address, injector)
    try:
        for _ in range(5):
            outcomes = _run_workload(proxy.address, workload)
            _check_invariant(name, injector, outcomes, workload, handle.address)
            if injector.injected > 0:
                break
        assert injector.injected > 0, "the fault class must actually fire"
    finally:
        proxy.stop()
        handle.stop()


# ---------------------------------------------------------------------- #
# one class at a time
# ---------------------------------------------------------------------- #
class TestWireFaults:
    def test_dropped_responses(self, engine, workload):
        _wire_case(engine, workload, "drop", drop=0.2)

    def test_corrupted_frames(self, engine, workload):
        _wire_case(engine, workload, "corrupt", corrupt=0.2)

    def test_truncated_frames(self, engine, workload):
        _wire_case(engine, workload, "truncate", truncate=0.15)

    def test_connection_resets(self, engine, workload):
        _wire_case(engine, workload, "reset", reset=0.15)

    def test_injected_delays(self, engine, workload):
        # Delays beyond the read timeout look like a stalled server.
        _wire_case(
            engine, workload, "delay", delay=0.3, delay_ms=(5.0, 100.0)
        )


class TestEngineFaults:
    def test_mid_batch_exceptions(self, engine, workload):
        injector = FaultInjector(CHAOS_SEED, engine_fault=0.3)
        handle = start_service_thread(
            FaultyEngine(engine, injector), max_batch=8, max_delay_ms=2.0
        )
        try:
            outcomes = _run_workload(handle.address, workload)
            _check_invariant("engine_raise", injector, outcomes, workload, handle.address)
            assert injector.injected > 0
        finally:
            handle.stop()

    def test_mid_batch_stalls(self, engine, workload):
        injector = FaultInjector(
            CHAOS_SEED, engine_stall=0.4, stall_ms=(20.0, 120.0)
        )
        handle = start_service_thread(
            FaultyEngine(engine, injector), max_batch=8, max_delay_ms=2.0
        )
        try:
            outcomes = _run_workload(handle.address, workload, read_timeout=1.0)
            _check_invariant("engine_stall", injector, outcomes, workload, handle.address)
        finally:
            handle.stop()


class TestProcessFaults:
    def test_kill_and_restart_mid_workload(self, engine, workload):
        queries, direct = workload
        chaos = ChaosService(engine, max_batch=8, max_delay_ms=2.0)
        chaos.start()
        injector = FaultInjector(CHAOS_SEED)  # only for schedule/dump symmetry
        outcomes = []
        client = ServiceClient(
            *chaos.address, retry=_retry_policy(), read_timeout=2.0
        )
        try:
            for position, query in enumerate(queries):
                if position == len(queries) // 2:
                    chaos.kill()  # crash mid-stream...
                    chaos.restart()  # ...and come back on the same port
                try:
                    outcomes.append(client.query(query))
                except TYPED_ERRORS as exc:
                    outcomes.append(exc)
                    try:
                        client._reconnect()
                    except TYPED_ERRORS:
                        pass
            _check_invariant(
                "kill_restart", injector, outcomes, workload, chaos.address
            )
            assert chaos.restarts == 1
            # The retrying client rode through the crash: at least the
            # queries after the restart all answered.
            tail = outcomes[len(queries) // 2 + 1 :]
            assert any(isinstance(outcome, QueryAnswer) for outcome in tail)
        finally:
            client.close()
            chaos.stop()


# ---------------------------------------------------------------------- #
# everything at once
# ---------------------------------------------------------------------- #
class TestCombinedChaos:
    def test_all_fault_classes_together(self, engine, workload):
        injector = FaultInjector(
            CHAOS_SEED,
            drop=0.08,
            corrupt=0.05,
            truncate=0.05,
            reset=0.05,
            delay=0.1,
            delay_ms=(5.0, 60.0),
            engine_fault=0.1,
            engine_stall=0.1,
            stall_ms=(10.0, 80.0),
        )
        handle = start_service_thread(
            FaultyEngine(engine, injector), max_batch=8, max_delay_ms=2.0
        )
        proxy = start_fault_proxy(handle.address, injector)
        try:
            outcomes = _run_workload(proxy.address, workload)
            _check_invariant("combined", injector, outcomes, workload, handle.address)
            assert injector.injected > 0
            # The schedule is the replay artifact: it must be serializable
            # and carry the seed that reproduces this exact run.
            replay = json.loads(json.dumps(injector.as_dict()))
            assert replay["seed"] == CHAOS_SEED
            assert replay["injected"] == len(replay["schedule"])
        finally:
            proxy.stop()
            handle.stop()

    def test_tracing_survives_wire_faults_without_orphans(self, engine, workload):
        """Dropped/retried frames still yield exactly one root trace each.

        Every logical query must map to a single client-rooted trace whose
        child spans record every attempt (tagged with its number and
        outcome), and every server-side hop must join one of those roots —
        no orphan traces, however the wire misbehaved.
        """
        queries, _ = workload
        injector = FaultInjector(CHAOS_SEED, drop=0.25)
        tracer = Tracer(sample_rate=1.0, keep=4 * len(queries), seed=CHAOS_SEED)
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=2.0)
        proxy = start_fault_proxy(handle.address, injector)
        try:
            client = ServiceClient(
                *proxy.address,
                retry=_retry_policy(),
                read_timeout=1.0,
                tracer=tracer,
            )
            try:
                for query in queries:
                    try:
                        client.query(query)
                    except TYPED_ERRORS:
                        try:
                            client._reconnect()
                        except TYPED_ERRORS:
                            pass
            finally:
                client.close()
            assert injector.injected > 0, "the fault class must actually fire"

            client_docs = tracer.recent_traces(limit=4 * len(queries))
            # Exactly one root per logical query, each finished with its
            # attempt count, no duplicated trace ids.
            assert len(client_docs) == len(queries)
            client_ids = {doc["trace_id"] for doc in client_docs}
            assert len(client_ids) == len(queries)
            retried = 0
            for doc in client_docs:
                assert doc["parent_span_id"] is None
                attempts = sorted(
                    (span for span in doc["spans"] if span["name"] == "attempt"),
                    key=lambda span: span["tags"]["attempt"],
                )
                assert attempts, f"trace {doc['trace_id']} recorded no attempts"
                numbers = [span["tags"]["attempt"] for span in attempts]
                assert numbers == list(range(1, len(attempts) + 1))
                assert all(span["depth"] == 1 for span in attempts)
                assert all(span["tags"]["outcome"] for span in attempts)
                assert doc["detail"]["attempts"] == numbers[-1]
                if len(attempts) > 1:
                    retried += 1
            assert retried > 0, "drops at 25% over 8 attempts must retry somewhere"

            # No orphans: every server hop belongs to a client root.
            server_docs = handle.service.tracer.recent_traces(limit=256)
            assert server_docs, "server joined none of the propagated contexts"
            for doc in server_docs:
                assert doc["trace_id"] in client_ids
                assert doc["parent_span_id"] is not None
        except AssertionError:
            artifact = _dump_schedule("tracing", injector)
            raise AssertionError(
                f"chaos tracing invariant violated (seed={injector.seed}); "
                f"fault schedule dumped to {artifact}"
            ) from None
        finally:
            proxy.stop()
            handle.stop()

    def test_injector_decision_stream_is_deterministic(self):
        kwargs = dict(
            drop=0.1, corrupt=0.1, truncate=0.1, reset=0.1, delay=0.1,
            engine_fault=0.2, engine_stall=0.2,
        )
        a, b = FaultInjector(42, **kwargs), FaultInjector(42, **kwargs)
        decisions_a = [a.wire_action("response") for _ in range(200)]
        decisions_a += [a.engine_action() for _ in range(100)]
        decisions_b = [b.wire_action("response") for _ in range(200)]
        decisions_b += [b.engine_action() for _ in range(100)]
        assert decisions_a == decisions_b
        assert a.schedule == b.schedule
