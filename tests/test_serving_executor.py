"""Tests for the concurrent serving executor (repro.serving.executor)."""

from __future__ import annotations

import random

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import ServingError
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine, ServingExecutor, ServingStats


@pytest.fixture(scope="module")
def engine():
    rng = random.Random(41)
    graphs = [
        random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
        for _ in range(30)
    ]
    database = GraphDatabase(graphs, name="executor-db")
    search = GBDASearch(database, max_tau=4, num_prior_pairs=100, seed=2).fit()
    return BatchQueryEngine.from_search(search)


@pytest.fixture(scope="module")
def queries():
    rng = random.Random(43)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 9), rng.randint(4, 12), seed=rng),
            rng.randint(1, 4),
            rng.choice([0.4, 0.7]),
        )
        for _ in range(12)
    ]


@pytest.fixture(scope="module")
def reference(engine, queries):
    return [engine.query(q).accepted_ids for q in queries]


class TestModes:
    def test_serial_matches_engine(self, engine, queries, reference):
        answers = ServingExecutor(engine, num_workers=1, mode="serial").map(queries)
        assert [a.accepted_ids for a in answers] == reference

    def test_thread_pool_matches_engine(self, engine, queries, reference):
        answers = ServingExecutor(engine, num_workers=4, mode="thread").map(queries)
        assert [a.accepted_ids for a in answers] == reference

    def test_process_pool_matches_engine(self, engine, queries, reference):
        answers = ServingExecutor(engine, num_workers=2, mode="process").map(queries[:6])
        assert [a.accepted_ids for a in answers] == reference[:6]

    def test_invalid_mode_and_workers(self, engine):
        with pytest.raises(ServingError):
            ServingExecutor(engine, mode="fiber")
        with pytest.raises(ServingError):
            ServingExecutor(engine, num_workers=0)

    def test_empty_stream(self, engine):
        executor = ServingExecutor(engine, num_workers=2)
        assert executor.map([]) == []
        assert executor.last_stats.num_queries == 0


class TestStats:
    def test_stats_are_populated(self, engine, queries):
        executor = ServingExecutor(engine, num_workers=3, mode="thread")
        executor.map(queries)
        stats = executor.last_stats
        assert stats.num_queries == len(queries)
        assert stats.num_batches == 3
        assert stats.elapsed_seconds > 0
        assert stats.queries_per_second > 0
        assert len(stats.latencies) == len(queries)
        assert stats.p95_latency >= stats.p50_latency >= 0

    def test_cache_counters_flow_into_stats(self, engine, queries):
        engine.cache.reset_counters()
        executor = ServingExecutor(engine, num_workers=2, mode="thread")
        executor.map(queries)
        executor.map(queries)  # second pass should be all cache hits
        assert executor.last_stats.cache_hits == len(queries)
        assert executor.total_stats.num_queries == 2 * len(queries)

    def test_stats_merge_and_percentiles(self):
        a = ServingStats(num_queries=2, num_batches=1, elapsed_seconds=1.0, latencies=[0.1, 0.2])
        b = ServingStats(num_queries=2, num_batches=1, elapsed_seconds=1.0, latencies=[0.3, 0.4])
        a.merge(b)
        assert a.num_queries == 4
        assert a.elapsed_seconds == 2.0
        assert a.queries_per_second == 2.0
        assert a.percentile(0) == 0.1
        assert a.percentile(100) == 0.4
        assert a.p50_latency == 0.2
        with pytest.raises(ValueError):
            a.percentile(101)

    def test_empty_stats_are_zero(self):
        stats = ServingStats()
        assert stats.queries_per_second == 0.0
        assert stats.mean_latency == 0.0
        assert stats.p95_latency == 0.0
        assert stats.cache_hit_rate == 0.0


class TestFilterEffectivenessStats:
    def test_prune_counters_flow_into_stats(self, queries):
        # fresh cacheless engine so every query really scores the database
        rng = random.Random(61)
        graphs = [
            random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
            for _ in range(30)
        ]
        search = GBDASearch(
            GraphDatabase(graphs, name="executor-prune"), max_tau=4, num_prior_pairs=100, seed=2
        ).fit()
        pruned_engine = BatchQueryEngine.from_search(search, cache_size=None)
        executor = ServingExecutor(pruned_engine, num_workers=2, mode="thread")
        executor.map(queries)
        stats = executor.last_stats
        assert stats.candidates_generated == len(queries) * len(graphs)
        assert stats.candidates_generated == (
            stats.candidates_pruned + stats.candidates_verified
        )
        assert 0.0 <= stats.prune_rate <= 1.0
        assert "prune_rate" in stats.as_dict()
        assert stats.as_dict()["candidates_generated"] == stats.candidates_generated

    def test_p99_latency_is_exposed(self):
        stats = ServingStats(
            num_queries=4, num_batches=1, elapsed_seconds=1.0, latencies=[0.1, 0.2, 0.3, 0.4]
        )
        assert stats.p99_latency == 0.4
        assert stats.p99_latency >= stats.p95_latency
        assert stats.as_dict()["p99_latency"] == stats.p99_latency
        assert ServingStats().p99_latency == 0.0

    def test_prune_counters_merge(self):
        a = ServingStats(candidates_generated=10, candidates_pruned=6, candidates_verified=4)
        b = ServingStats(candidates_generated=10, candidates_pruned=2, candidates_verified=8)
        a.merge(b)
        assert a.candidates_generated == 20
        assert a.candidates_pruned == 8
        assert a.candidates_verified == 12
        assert a.prune_rate == 0.4


class TestPoolWorkerCounters:
    """Regression: pool modes must fold per-worker counters into the merged stats.

    Process and data-parallel workers run in child processes, so their
    cache hit/miss and FilterCounters increments land on pickled engine
    copies; the executor must carry them back with the answers instead of
    silently dropping them (which left the merged stats reading zero).
    """

    def _fresh_engine(self, cache_size=None):
        rng = random.Random(71)
        graphs = [
            random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
            for _ in range(30)
        ]
        search = GBDASearch(
            GraphDatabase(graphs, name="executor-pool"), max_tau=4, num_prior_pairs=100, seed=3
        ).fit()
        return BatchQueryEngine.from_search(search, cache_size=cache_size), len(graphs)

    def test_process_mode_reports_prune_counters(self, queries):
        engine, num_graphs = self._fresh_engine()
        executor = ServingExecutor(engine, num_workers=2, mode="process")
        executor.map(queries[:6])
        stats = executor.last_stats
        assert stats.candidates_generated == 6 * num_graphs
        assert stats.candidates_generated == (
            stats.candidates_pruned + stats.candidates_verified
        )

    def test_process_mode_reports_cache_hits(self, queries):
        engine, _ = self._fresh_engine(cache_size=64)
        executor = ServingExecutor(engine, num_workers=2, mode="process")
        executor.map([queries[0]] * 6)  # every worker shard repeats the query
        stats = executor.last_stats
        assert stats.cache_hits + stats.cache_misses == 6
        assert stats.cache_hits >= 4

    def test_data_parallel_mode_reports_prune_counters(self, queries):
        engine, num_graphs = self._fresh_engine()
        executor = ServingExecutor(engine, num_workers=2, mode="data-parallel")
        executor.map(queries[:6])
        stats = executor.last_stats
        assert stats.candidates_generated == 6 * num_graphs
        assert stats.candidates_generated == (
            stats.candidates_pruned + stats.candidates_verified
        )

    def test_process_mode_folds_worker_metrics_into_registry(self, queries):
        from repro.obs.metrics import get_registry

        engine, _ = self._fresh_engine()
        family = get_registry().get("repro_kernel_calls_total")
        before = (
            sum(child.value for _lv, child in family.series()) if family is not None else 0.0
        )
        ServingExecutor(engine, num_workers=2, mode="process").map(queries[:6])
        family = get_registry().get("repro_kernel_calls_total")
        after = sum(child.value for _lv, child in family.series())
        assert after > before
