"""Tests for graph validation and collection statistics helpers."""

import math

import pytest

from repro.exceptions import GraphError
from repro.graphs.generators import random_labeled_graph, scale_free_labeled_graph
from repro.graphs.graph import Graph, VIRTUAL_LABEL
from repro.graphs.validation import (
    collection_statistics,
    degree_histogram,
    degree_sequence,
    looks_scale_free,
    powerlaw_exponent_estimate,
    validate_graph,
)


class TestValidateGraph:
    def test_valid_graph_passes(self, triangle):
        validate_graph(triangle, require_connected=True)

    def test_virtual_vertex_label_rejected(self):
        graph = Graph()
        graph.add_vertex(0, VIRTUAL_LABEL, allow_virtual=True)
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_virtual_edge_label_rejected(self):
        graph = Graph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        graph.add_edge(0, 1, VIRTUAL_LABEL, allow_virtual=True)
        with pytest.raises(GraphError):
            validate_graph(graph)

    def test_disconnected_graph_rejected_when_required(self):
        graph = Graph.from_dicts({0: "A", 1: "B"}, {})
        validate_graph(graph)  # fine without the connectivity requirement
        with pytest.raises(GraphError):
            validate_graph(graph, require_connected=True)


class TestDegreeHelpers:
    def test_degree_histogram(self, path_graph):
        histogram = degree_histogram(path_graph)
        assert histogram[1] == 2
        assert histogram[2] == 2

    def test_degree_sequence_sorted_descending(self, path_graph):
        assert degree_sequence(path_graph) == [2, 2, 1, 1]

    def test_powerlaw_estimate_needs_enough_data(self, triangle):
        assert math.isnan(powerlaw_exponent_estimate([triangle]))

    def test_powerlaw_estimate_on_scale_free_graphs(self):
        graphs = [scale_free_labeled_graph(300, edges_per_vertex=3, seed=s) for s in range(3)]
        exponent = powerlaw_exponent_estimate(graphs)
        assert 1.2 < exponent < 4.5

    def test_looks_scale_free_flags(self):
        scale_free = [scale_free_labeled_graph(400, edges_per_vertex=3, seed=s) for s in range(2)]
        assert looks_scale_free(scale_free)


class TestCollectionStatistics:
    def test_empty_collection(self):
        stats = collection_statistics([])
        assert stats.num_graphs == 0
        assert stats.average_degree == 0.0

    def test_basic_statistics(self, triangle, path_graph):
        stats = collection_statistics([triangle, path_graph])
        assert stats.num_graphs == 2
        assert stats.max_vertices == 4
        assert stats.max_edges == 3
        assert stats.average_vertices == pytest.approx(3.5)
        assert stats.num_vertex_labels == 3
        assert stats.num_edge_labels == 3

    def test_average_degree_matches_hand_computation(self, triangle, path_graph):
        stats = collection_statistics([triangle, path_graph])
        expected = 2.0 * (3 + 3) / (3 + 4)
        assert stats.average_degree == pytest.approx(expected)

    def test_as_row_is_serialisable(self, triangle):
        row = collection_statistics([triangle]).as_row()
        assert row["num_graphs"] == 1

    def test_generated_collections_match_requested_regime(self):
        graphs = [random_labeled_graph(20, 21, seed=s) for s in range(10)]
        stats = collection_statistics(graphs)
        assert 1.5 <= stats.average_degree <= 2.5
