"""Tests for the offline priors: Λ2 (GBD, GMM) and Λ3 (GED, Jeffreys)."""

import pytest

from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.exceptions import PriorNotFittedError
from repro.graphs.generators import random_labeled_graph


@pytest.fixture(scope="module")
def small_graph_population():
    return [random_labeled_graph(10, 12, seed=s, name=f"g{s}") for s in range(20)]


class TestGBDPrior:
    def test_fit_from_graphs(self, small_graph_population):
        prior = GBDPrior(num_components=2, num_pairs=50, seed=0).fit(small_graph_population)
        assert prior.is_fitted
        assert prior.report.num_pairs_sampled == 50
        assert prior.report.total_seconds >= 0.0

    def test_probabilities_are_positive_and_bounded(self, small_graph_population):
        prior = GBDPrior(num_components=2, num_pairs=50, seed=0).fit(small_graph_population)
        for phi in range(0, 12):
            assert 0.0 < prior.probability(phi) <= 1.0

    def test_table_covers_feasible_range(self, small_graph_population):
        prior = GBDPrior(num_components=2, num_pairs=50, seed=0).fit(small_graph_population)
        table = prior.table()
        assert set(table) == set(range(0, max(table) + 1))
        assert max(table) >= 10

    def test_out_of_range_value_still_returns_probability(self, small_graph_population):
        prior = GBDPrior(num_components=2, num_pairs=50, seed=0).fit(small_graph_population)
        assert prior.probability(500) > 0.0
        assert prior.probability(-3) > 0.0

    def test_fit_from_samples_directly(self):
        prior = GBDPrior(num_components=2, seed=0).fit_from_samples([1, 2, 2, 3, 3, 3, 4, 8])
        assert prior.probability(3) > prior.probability(8)

    def test_probability_mass_concentrates_where_samples_are(self):
        prior = GBDPrior(num_components=1, seed=0).fit_from_samples([5] * 50 + [6] * 50)
        assert prior.probability(5) + prior.probability(6) > prior.probability(0) + prior.probability(12)

    def test_unfitted_queries_raise(self):
        prior = GBDPrior()
        with pytest.raises(PriorNotFittedError):
            prior.probability(0)
        with pytest.raises(PriorNotFittedError):
            prior.table()

    def test_empty_samples_rejected(self):
        with pytest.raises(PriorNotFittedError):
            GBDPrior().fit_from_samples([])

    def test_density_matches_mixture(self, small_graph_population):
        prior = GBDPrior(num_components=2, num_pairs=50, seed=0).fit(small_graph_population)
        assert prior.density(3.0) == pytest.approx(prior.mixture.pdf(3.0))

    def test_repr_shows_state(self):
        assert "unfitted" in repr(GBDPrior())

    def test_state_round_trips_seed(self, small_graph_population):
        prior = GBDPrior(num_components=2, num_pairs=50, seed=13).fit(small_graph_population)
        restored = GBDPrior.from_state(prior.to_state())
        assert restored._seed == 13
        assert restored.table() == prior.table()

    def test_reload_then_refit_is_deterministic(self, small_graph_population):
        """Regression: from_state used to reconstruct with the default seed=0,

        so refitting a snapshot-loaded prior silently changed its sampling
        stream (different pairs, different GMM initialisation).
        """
        prior = GBDPrior(num_components=2, num_pairs=50, seed=13).fit(small_graph_population)
        restored = GBDPrior.from_state(prior.to_state())

        refit_original = GBDPrior(num_components=2, num_pairs=50, seed=13).fit(
            small_graph_population
        )
        restored.fit(small_graph_population)
        assert restored.table() == refit_original.table()
        assert restored.report.sampled_gbds == refit_original.report.sampled_gbds

    def test_parallel_sampling_matches_serial(self, small_graph_population):
        serial = GBDPrior(num_components=2, num_pairs=150, seed=3).fit(small_graph_population)
        parallel = GBDPrior(
            num_components=2, num_pairs=150, seed=3, num_workers=2
        ).fit(small_graph_population)
        assert parallel.report.sampled_gbds == serial.report.sampled_gbds
        assert parallel.table() == serial.table()


class TestGEDPrior:
    def test_fit_produces_normalised_distribution_per_order(self):
        prior = GEDPrior(max_tau=5, num_vertex_labels=4, num_edge_labels=3).fit([5, 8])
        for order in (5, 8):
            distribution = prior.distribution(order)
            assert len(distribution) == 6
            assert sum(distribution) == pytest.approx(1.0, abs=1e-9)
            assert all(p >= 0 for p in distribution)

    def test_matrix_has_one_entry_per_tau_and_order(self):
        prior = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=2).fit([4, 6, 9])
        assert len(prior.matrix()) == 5 * 3
        assert prior.orders == [4, 6, 9]

    def test_unknown_order_falls_back_to_nearest(self):
        prior = GEDPrior(max_tau=3, num_vertex_labels=3, num_edge_labels=2).fit([5, 20])
        assert prior.probability(2, 6) == prior.probability(2, 5)
        assert prior.probability(2, 18) == prior.probability(2, 20)

    def test_out_of_range_tau_has_floor_probability(self):
        prior = GEDPrior(max_tau=3, num_vertex_labels=3, num_edge_labels=2).fit([5])
        assert prior.probability(10, 5) <= 1e-9

    def test_prior_depends_only_on_tau_and_order(self):
        a = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=3).fit([6])
        b = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=3).fit([6])
        assert a.distribution(6) == pytest.approx(b.distribution(6))

    def test_unfitted_queries_raise(self):
        prior = GEDPrior(max_tau=3, num_vertex_labels=3, num_edge_labels=2)
        with pytest.raises(PriorNotFittedError):
            prior.probability(1, 5)

    def test_invalid_max_tau_rejected(self):
        with pytest.raises(ValueError):
            GEDPrior(max_tau=-1, num_vertex_labels=3, num_edge_labels=2)

    def test_report_records_costs(self):
        prior = GEDPrior(max_tau=3, num_vertex_labels=3, num_edge_labels=2).fit([4, 5])
        assert prior.report.compute_seconds >= 0.0
        assert prior.report.table_entries == 8
        assert prior.report.table_bytes == 64

    def test_positive_mass_on_every_nonzero_tau(self):
        prior = GEDPrior(max_tau=6, num_vertex_labels=4, num_edge_labels=3).fit([10])
        distribution = prior.distribution(10)
        assert all(p > 0 for p in distribution[1:])

    def test_parallel_grid_matches_serial(self):
        serial = GEDPrior(max_tau=5, num_vertex_labels=4, num_edge_labels=3).fit([5, 8, 11])
        parallel = GEDPrior(max_tau=5, num_vertex_labels=4, num_edge_labels=3).fit(
            [5, 8, 11], num_workers=2
        )
        assert parallel.matrix() == serial.matrix()
        assert parallel.orders == serial.orders

    def test_update_adds_only_missing_orders(self):
        prior = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=2).fit([4, 6])
        before = dict(prior.matrix())
        added = prior.update([6, 9])
        assert added == [9]
        assert prior.orders == [4, 6, 9]
        # existing columns are untouched, the new column matches a fresh fit
        for key, value in before.items():
            assert prior.matrix()[key] == value
        fresh = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=2).fit([9])
        assert prior.distribution(9) == fresh.distribution(9)

    def test_update_with_no_new_orders_is_noop(self):
        prior = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=2).fit([4, 6])
        before = dict(prior.matrix())
        assert prior.update([4, 6]) == []
        assert prior.matrix() == before

    def test_update_requires_fit(self):
        prior = GEDPrior(max_tau=4, num_vertex_labels=3, num_edge_labels=2)
        with pytest.raises(PriorNotFittedError):
            prior.update([5])
