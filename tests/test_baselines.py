"""Tests for the baseline GED estimators (LSAP, Greedy-Sort, Seriation, Branch-LB)."""

import pytest

from repro.baselines.base import EstimatorSearch
from repro.baselines.branch_filter import BranchFilterGED, branch_lower_bound
from repro.baselines.ged_exact import exact_ged
from repro.baselines.greedy_sort import GreedySortGED, greedy_sort_estimate
from repro.baselines.lsap import LSAPGED, build_cost_matrix, lsap_lower_bound, lsap_upper_bound
from repro.baselines.seriation import SeriationGED, seriation_estimate, seriation_sequence
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import SearchError
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph


def _small_pairs():
    """A handful of small random graph pairs with computable exact GED."""
    pairs = []
    for seed in range(4):
        g1 = random_labeled_graph(6, 7, seed=seed)
        g2 = random_labeled_graph(6, 7, seed=seed + 100)
        pairs.append((g1, g2))
    # also near-identical pairs
    base = random_labeled_graph(7, 9, seed=7)
    close = base.copy()
    close.relabel_vertex(0, "ZZ")
    pairs.append((base, close))
    return pairs


class TestLSAP:
    def test_cost_matrix_shape(self, paper_g1, paper_g2):
        matrix, vertices1, vertices2 = build_cost_matrix(paper_g1, paper_g2)
        assert len(matrix) == len(vertices1) + len(vertices2) == 7
        assert all(len(row) == 7 for row in matrix)

    def test_identical_graphs_have_zero_bound(self, triangle):
        assert lsap_lower_bound(triangle, triangle.copy()) == pytest.approx(0.0)
        assert lsap_upper_bound(triangle, triangle.copy()) == pytest.approx(0.0)

    def test_lower_bound_never_exceeds_exact_ged(self):
        for g1, g2 in _small_pairs():
            exact = exact_ged(g1, g2)
            assert lsap_lower_bound(g1, g2) <= exact + 1e-9

    def test_upper_bound_never_below_exact_ged(self):
        for g1, g2 in _small_pairs():
            exact = exact_ged(g1, g2)
            assert lsap_upper_bound(g1, g2) >= exact - 1e-9

    def test_lower_bound_at_most_upper_bound(self):
        for g1, g2 in _small_pairs():
            assert lsap_lower_bound(g1, g2) <= lsap_upper_bound(g1, g2) + 1e-9

    def test_estimator_bound_selection(self, paper_g1, paper_g2):
        lower = LSAPGED("lower").estimate(paper_g1, paper_g2)
        upper = LSAPGED("upper").estimate(paper_g1, paper_g2)
        assert lower <= upper

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            LSAPGED("middle")

    def test_empty_graphs(self):
        assert lsap_lower_bound(Graph(), Graph()) == 0.0

    def test_method_name(self):
        assert LSAPGED().method_name == "LSAP"


class TestGreedySort:
    def test_identical_graphs_estimate_zero(self, triangle):
        assert greedy_sort_estimate(triangle, triangle.copy()) == pytest.approx(0.0)

    def test_estimate_at_least_lsap_lower_bound(self):
        for g1, g2 in _small_pairs():
            assert greedy_sort_estimate(g1, g2) >= lsap_lower_bound(g1, g2) - 1e-9

    def test_symmetric_in_roles_for_equal_sizes(self, paper_g1):
        other = paper_g1.copy()
        other.relabel_edge("v1", "v2", "q")
        forward = greedy_sort_estimate(paper_g1, other)
        backward = greedy_sort_estimate(other, paper_g1)
        assert forward == pytest.approx(backward, abs=1e-9)

    def test_estimator_wrapper(self, paper_g1, paper_g2):
        assert GreedySortGED().estimate(paper_g1, paper_g2) > 0
        assert GreedySortGED().method_name == "Greedy-Sort"


class TestSeriation:
    def test_sequence_length_equals_vertex_count(self, paper_g2):
        sequence, eigenvalue = seriation_sequence(paper_g2)
        assert len(sequence) == 4
        assert eigenvalue > 0

    def test_empty_and_singleton_graphs(self):
        assert seriation_sequence(Graph()) == ([], 0.0)
        single = Graph.from_dicts({0: "A"}, {})
        assert seriation_sequence(single) == (["A"], 0.0)

    def test_identical_graphs_estimate_zero(self, triangle):
        assert seriation_estimate(triangle, triangle.copy()) == pytest.approx(0.0)

    def test_estimate_positive_for_different_graphs(self, paper_g1, paper_g2):
        assert seriation_estimate(paper_g1, paper_g2) > 0

    def test_estimate_symmetric(self, paper_g1, paper_g2):
        assert seriation_estimate(paper_g1, paper_g2) == pytest.approx(
            seriation_estimate(paper_g2, paper_g1)
        )

    def test_label_change_detected(self, triangle):
        other = triangle.copy()
        other.relabel_vertex(0, "Z")
        assert seriation_estimate(triangle, other) >= 1.0

    def test_estimator_wrapper(self):
        assert SeriationGED().method_name == "Seriation"


class TestBranchFilter:
    def test_lower_bound_property_on_small_pairs(self):
        for g1, g2 in _small_pairs():
            assert branch_lower_bound(g1, g2) <= exact_ged(g1, g2) + 1e-9

    def test_paper_example(self, paper_g1, paper_g2):
        assert branch_lower_bound(paper_g1, paper_g2) == 2  # ceil(3 / 2)

    def test_estimator_wrapper(self, paper_g1, paper_g2):
        assert BranchFilterGED().estimate(paper_g1, paper_g2) == 2


class TestEstimatorSearch:
    def test_threshold_search_accepts_close_graphs(self, triangle):
        near = triangle.copy()
        near.relabel_vertex(0, "Z")
        far = random_labeled_graph(8, 12, seed=5, vertex_labels=["Q"], edge_labels=["qq"])
        database = GraphDatabase([near, far])
        search = EstimatorSearch(database, LSAPGED())
        answer = search.query(SimilarityQuery(triangle, tau_hat=1))
        assert 0 in answer.accepted_ids
        assert 1 not in answer.accepted_ids
        assert answer.method == "LSAP"
        assert answer.elapsed_seconds >= 0.0

    def test_scores_recorded_for_every_graph(self, triangle):
        database = GraphDatabase([triangle.copy(), random_labeled_graph(5, 5, seed=1)])
        answer = EstimatorSearch(database, BranchFilterGED()).search(triangle, tau_hat=2)
        assert set(answer.scores) == {0, 1}

    def test_empty_database_rejected(self):
        with pytest.raises(SearchError):
            EstimatorSearch(GraphDatabase([]), LSAPGED())
