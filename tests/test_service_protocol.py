"""Tests for the service wire protocol (repro.service.protocol)."""

from __future__ import annotations

import struct

import pytest

from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import (
    ProtocolError,
    QueryError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graphs.graph import Graph
from repro.service import protocol


def _graph(name="wire-graph"):
    return Graph.from_dicts(
        {0: "A", 1: "B", 2: "C"},
        {(0, 1): "x", (1, 2): "y"},
        name=name,
    )


class TestFraming:
    def test_round_trip(self):
        message = {"id": 7, "kind": "query", "payload": [1, 2.5, "x", None, True]}
        frame = protocol.encode_frame(message)
        length = struct.unpack(">I", frame[:4])[0]
        assert length == len(frame) - 4
        assert protocol.decode_frame(frame[4:]) == message

    def test_rejects_non_object_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"[1, 2, 3]")

    def test_rejects_invalid_json(self):
        with pytest.raises(ProtocolError):
            protocol.decode_frame(b"{not json")

    def test_rejects_oversized_announced_frame(self):
        prefix = struct.pack(">I", protocol.MAX_FRAME_BYTES + 1)

        class FakeSocket:
            def __init__(self, data):
                self.data = data

            def recv(self, n):
                chunk, self.data = self.data[:n], self.data[n:]
                return chunk

        with pytest.raises(ProtocolError):
            protocol.recv_frame(FakeSocket(prefix + b"x"))

    def test_sync_recv_reports_clean_eof(self):
        class ClosedSocket:
            def recv(self, n):
                return b""

        assert protocol.recv_frame(ClosedSocket()) is None

    def test_sync_recv_reports_truncated_frame(self):
        frame = protocol.encode_frame({"id": 1})

        class TruncatedSocket:
            def __init__(self, data):
                self.data = data

            def recv(self, n):
                chunk, self.data = self.data[:n], self.data[n:]
                return chunk

        with pytest.raises(ProtocolError):
            protocol.recv_frame(TruncatedSocket(frame[:-2]))


class TestGraphCodec:
    def test_round_trip_preserves_structure_and_labels(self):
        graph = _graph()
        decoded = protocol.decode_graph(protocol.encode_graph(graph))
        assert decoded.name == graph.name
        assert dict(decoded.vertex_items()) == dict(graph.vertex_items())
        assert {frozenset((u, v)): label for u, v, label in decoded.edges()} == {
            frozenset((u, v)): label for u, v, label in graph.edges()
        }

    def test_tuple_labels_survive(self):
        graph = Graph.from_dicts(
            {0: ("A", 1), 1: ("B", 2)}, {(0, 1): ("x", "y")}, name="tuple-labels"
        )
        decoded = protocol.decode_graph(protocol.encode_graph(graph))
        assert dict(decoded.vertex_items()) == {0: ("A", 1), 1: ("B", 2)}
        assert next(iter(decoded.edges()))[2] == ("x", "y")

    def test_json_round_trip_is_exact(self):
        """The full frame pipeline (JSON included) must be lossless."""
        graph = _graph()
        frame = protocol.encode_frame({"graph": protocol.encode_graph(graph)})
        decoded = protocol.decode_graph(protocol.decode_frame(frame[4:])["graph"])
        assert dict(decoded.vertex_items()) == dict(graph.vertex_items())

    def test_unencodable_label_is_rejected(self):
        graph = Graph.from_dicts({0: object()}, {}, name="bad")
        with pytest.raises(ProtocolError):
            protocol.encode_graph(graph)

    def test_malformed_graph_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_graph({"vertices": "nope"})


class TestQueryCodec:
    def test_round_trip(self):
        query = SimilarityQuery(_graph(), 2, 0.75)
        decoded = protocol.decode_query(protocol.encode_query(query))
        assert decoded.tau_hat == 2
        assert decoded.gamma == 0.75
        assert decoded.top_k is None
        assert decoded.branches() == query.branches()

    def test_top_k_round_trip(self):
        query = SimilarityQuery(_graph(), 1, 0.9, top_k=5)
        decoded = protocol.decode_query(protocol.encode_query(query))
        assert decoded.top_k == 5

    def test_invalid_thresholds_surface_as_query_error(self):
        payload = protocol.encode_query(SimilarityQuery(_graph(), 1, 0.5))
        payload["gamma"] = 2.0
        with pytest.raises(QueryError):
            protocol.decode_query(payload)

    def test_malformed_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_query({"tau_hat": 1})


class TestAnswerCodec:
    def test_round_trip_bit_identical(self):
        answer = QueryAnswer(
            method="GBDA",
            accepted_ids=frozenset({3, 1, 41}),
            scores={1: 0.1234567890123456789, 3: 1.0 / 3.0, 41: 0.9999999999999999},
            elapsed_seconds=0.00123,
            ranking=[(41, 0.9999999999999999), (3, 1.0 / 3.0), (1, 0.1234567890123456789)],
        )
        decoded = QueryAnswer.from_wire(answer.to_wire())
        assert decoded.accepted_ids == answer.accepted_ids
        assert decoded.scores == answer.scores  # float bits preserved
        assert decoded.ranking == answer.ranking
        assert decoded.method == answer.method

    def test_numpy_scalars_are_coerced(self):
        np = pytest.importorskip("numpy")
        answer = QueryAnswer(
            method="GBDA",
            accepted_ids=frozenset({np.int64(5)}),
            scores={np.int64(5): np.float64(0.3333333333333333)},
        )
        wire = answer.to_wire()
        assert type(wire["accepted_ids"][0]) is int
        assert type(wire["scores"][0][1]) is float
        decoded = QueryAnswer.from_wire(wire)
        assert decoded.scores == {5: 0.3333333333333333}

    def test_thresholded_answer_has_no_ranking(self):
        answer = QueryAnswer(method="GBDA", accepted_ids=frozenset({1}), scores={1: 0.5})
        decoded = QueryAnswer.from_wire(answer.to_wire())
        assert decoded.ranking is None

    def test_full_json_frame_round_trip_is_exact(self):
        answer = QueryAnswer(
            method="GBDA",
            accepted_ids=frozenset({0, 2}),
            scores={0: 0.1 + 0.2, 2: 7.0 / 11.0},  # non-representable doubles
        )
        frame = protocol.encode_frame({"answer": protocol.encode_answer(answer)})
        decoded = protocol.decode_answer(protocol.decode_frame(frame[4:])["answer"])
        assert decoded.scores == answer.scores

    def test_malformed_answer_payload(self):
        with pytest.raises(ProtocolError):
            protocol.decode_answer({"method": "GBDA"})


class TestErrorMapping:
    def test_overloaded_maps_to_typed_exception(self):
        response = protocol.error_response(4, protocol.ERROR_OVERLOADED, "shed")
        exc = protocol.exception_for_error(response)
        assert isinstance(exc, ServiceOverloadedError)

    def test_bad_request_maps_to_protocol_error(self):
        response = protocol.error_response(4, protocol.ERROR_BAD_REQUEST, "nope")
        assert isinstance(protocol.exception_for_error(response), ProtocolError)

    def test_unknown_code_maps_to_service_error(self):
        exc = protocol.exception_for_error({"error": {"code": "???", "message": "m"}})
        assert isinstance(exc, ServiceError)
        assert not isinstance(exc, ServiceOverloadedError)
