"""Unit tests for structured event logging (repro.obs.logging)."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.logging import EventLog, StructuredLogger, get_event_log, get_logger


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestEventLog:
    def test_emit_stamps_timestamp_and_appends(self):
        clock = FakeClock(123.0)
        log = EventLog(capacity=8, clock=clock)
        record = log.emit({"level": "info", "logger": "t", "event": "hello"})
        assert record["ts"] == 123.0
        assert log.total_events == 1
        assert len(log) == 1

    def test_existing_timestamp_is_preserved(self):
        log = EventLog(clock=FakeClock())
        record = log.emit({"ts": 7.0, "event": "x"})
        assert record["ts"] == 7.0

    def test_ring_is_bounded_but_total_keeps_counting(self):
        log = EventLog(capacity=3, clock=FakeClock())
        for index in range(7):
            log.emit({"event": f"e{index}"})
        assert len(log) == 3
        assert log.total_events == 7
        assert [r["event"] for r in log.events()] == ["e6", "e5", "e4"]

    def test_stream_receives_json_lines(self):
        stream = io.StringIO()
        log = EventLog(stream=stream, clock=FakeClock(5.0))
        log.emit({"level": "info", "event": "a", "n": 1})
        line = stream.getvalue().strip()
        assert json.loads(line) == {"level": "info", "event": "a", "n": 1, "ts": 5.0}

    def test_broken_stream_never_breaks_emit(self):
        stream = io.StringIO()
        stream.close()
        log = EventLog(stream=stream, clock=FakeClock())
        log.emit({"event": "still-recorded"})
        assert log.total_events == 1

    def test_attach_stream_mirrors_later_events_only(self):
        log = EventLog(clock=FakeClock())
        log.emit({"event": "before"})
        stream = io.StringIO()
        log.attach_stream(stream)
        log.emit({"event": "after"})
        assert "before" not in stream.getvalue()
        assert "after" in stream.getvalue()

    def test_events_filters(self):
        log = EventLog(clock=FakeClock())
        log.emit({"logger": "a", "level": "info", "event": "one", "trace_id": "t1"})
        log.emit({"logger": "b", "level": "error", "event": "two", "trace_id": "t2"})
        log.emit({"logger": "a", "level": "error", "event": "three"})
        assert [r["event"] for r in log.events(logger="a")] == ["three", "one"]
        assert [r["event"] for r in log.events(level="error")] == ["three", "two"]
        assert [r["event"] for r in log.events(trace_id="t2")] == ["two"]
        assert [r["event"] for r in log.events(logger="a", level="error")] == ["three"]

    def test_as_dict_shape(self):
        log = EventLog(capacity=4, clock=FakeClock())
        log.emit({"event": "x"})
        log.count_dropped(3)
        doc = log.as_dict(limit=2)
        assert doc["capacity"] == 4
        assert doc["total_events"] == 1
        assert doc["total_dropped"] == 3
        assert len(doc["events"]) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)


class TestStructuredLogger:
    def test_event_record_shape(self):
        log = EventLog(clock=FakeClock())
        logger = StructuredLogger("svc", log, clock=FakeClock())
        record = logger.event(
            "engine_reloaded", trace_id="abc", request_key="k1", model_version=3
        )
        assert record["logger"] == "svc"
        assert record["level"] == "info"
        assert record["event"] == "engine_reloaded"
        assert record["trace_id"] == "abc"
        assert record["request_key"] == "k1"
        assert record["model_version"] == 3

    def test_level_helpers(self):
        log = EventLog(clock=FakeClock())
        logger = StructuredLogger("svc", log, clock=FakeClock())
        assert logger.debug("d")["level"] == "debug"
        assert logger.info("i")["level"] == "info"
        assert logger.warning("w")["level"] == "warning"
        assert logger.error("e")["level"] == "error"

    def test_unknown_level_rejected(self):
        logger = StructuredLogger("svc", EventLog(clock=FakeClock()), clock=FakeClock())
        with pytest.raises(ValueError):
            logger.event("x", level="fatal")

    def test_rate_limit_drops_are_counted_not_raised(self):
        clock = FakeClock()
        log = EventLog(clock=FakeClock())
        logger = StructuredLogger(
            "stormy", log, rate_limit_per_sec=10.0, burst=5, clock=clock
        )
        emitted = sum(1 for _ in range(20) if logger.event("boom") is not None)
        assert emitted == 5  # burst exhausted, clock never advanced
        assert logger.dropped == 15
        assert log.total_dropped == 15

    def test_tokens_refill_with_time(self):
        clock = FakeClock()
        log = EventLog(clock=FakeClock())
        logger = StructuredLogger(
            "stormy", log, rate_limit_per_sec=10.0, burst=2, clock=clock
        )
        assert logger.event("a") is not None
        assert logger.event("b") is not None
        assert logger.event("c") is None
        clock.advance(0.1)  # one token refilled
        assert logger.event("d") is not None
        assert logger.event("e") is None

    def test_zero_rate_disables_limiting(self):
        logger = StructuredLogger(
            "free", EventLog(clock=FakeClock()), rate_limit_per_sec=0.0, clock=FakeClock()
        )
        assert all(logger.event("x") is not None for _ in range(100))

    def test_validation(self):
        with pytest.raises(ValueError):
            StructuredLogger("bad", rate_limit_per_sec=-1.0)


class TestModuleGlobals:
    def test_get_logger_is_cached_per_name(self):
        logger = get_logger("test-obs-logging-cached")
        assert get_logger("test-obs-logging-cached") is logger
        assert logger.log is get_event_log()

    def test_default_log_round_trip(self):
        logger = get_logger("test-obs-logging-roundtrip")
        logger.info("round_trip_marker", n=1)
        events = get_event_log().events(logger="test-obs-logging-roundtrip")
        assert events and events[0]["event"] == "round_trip_marker"
