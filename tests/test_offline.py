"""Tests for repro.offline: parallel helpers and the incremental OfflineFitter."""

import random

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import SearchError
from repro.graphs.generators import random_labeled_graph
from repro.offline import OfflineFitter, compute_pair_gbds, parallel_map, resolve_num_workers
from repro.serving.snapshot import load_engine


@pytest.fixture()
def population():
    return [random_labeled_graph(10, 13, seed=s, name=f"g{s}") for s in range(30)]


@pytest.fixture()
def database(population):
    return GraphDatabase(population, name="offline-test")


class TestParallelHelpers:
    def test_resolve_num_workers(self):
        assert resolve_num_workers(None) == 1
        assert resolve_num_workers(0) == 1
        assert resolve_num_workers(1) == 1
        assert resolve_num_workers(4) == 4
        assert resolve_num_workers(-1) >= 1

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(str, items) == [str(i) for i in items]
        assert parallel_map(str, items, num_workers=2) == [str(i) for i in items]

    def test_pair_gbds_parallel_matches_serial(self, population):
        rng = random.Random(1)
        pairs = [(rng.randrange(30), rng.randrange(30)) for _ in range(300)]
        serial = compute_pair_gbds(population, pairs)
        for workers in (2, 3):
            assert compute_pair_gbds(
                population, pairs, num_workers=workers, chunk_size=64
            ) == serial

    def test_pair_gbds_small_input_stays_serial(self, population):
        pairs = [(0, 1), (1, 2), (2, 3)]
        assert compute_pair_gbds(population, pairs, num_workers=4) == compute_pair_gbds(
            population, pairs
        )

    def test_pair_gbds_match_database_path(self, population, database):
        pairs = [(0, 5), (3, 7), (2, 2)]
        gbds = compute_pair_gbds(population, pairs)
        for (i, j), gbd in zip(pairs, gbds):
            assert gbd == database.gbd_to(population[i], j)


class TestOfflineFitterFullFit:
    def test_fit_matches_gbdasearch(self, database):
        """The fitter's offline stage is the same computation GBDASearch runs."""
        fitter = OfflineFitter(database, max_tau=4, num_prior_pairs=120, seed=0).fit()
        search = GBDASearch(database, max_tau=4, num_prior_pairs=120, seed=0).fit()
        assert fitter.gbd_prior.table() == search.gbd_prior.table()
        assert fitter.ged_prior.matrix() == search.ged_prior.matrix()

        query = SimilarityQuery(database[0].graph, 2, 0.5)
        engine_answer = fitter.build_engine(cache_size=None).query(query)
        loop_answer = search.query(query).answer
        assert engine_answer.accepted_ids == loop_answer.accepted_ids

    def test_fit_sets_version_and_revision(self, database):
        fitter = OfflineFitter(database, max_tau=4, num_prior_pairs=60, seed=0)
        assert not fitter.is_fitted
        assert fitter.is_stale
        fitter.fit()
        assert fitter.is_fitted
        assert fitter.version == 1
        assert not fitter.is_stale
        assert fitter.fitted_revision == database.revision

    def test_empty_database_rejected(self):
        with pytest.raises(SearchError):
            OfflineFitter(GraphDatabase([]))

    def test_refit_before_fit_rejected(self, database):
        with pytest.raises(SearchError):
            OfflineFitter(database).refit()


class TestIncrementalRefit:
    def test_refit_without_additions_is_noop(self, database):
        fitter = OfflineFitter(database, max_tau=4, num_prior_pairs=60, seed=0).fit()
        table_before = fitter.gbd_prior.table()
        assert fitter.refit() is False
        assert fitter.version == 1
        assert fitter.gbd_prior.table() == table_before

    def test_refit_folds_in_new_graphs(self, database):
        fitter = OfflineFitter(
            database, max_tau=4, num_prior_pairs=60, seed=0, refit_pairs_per_graph=8
        ).fit()
        samples_before = fitter.last_report.num_total_samples

        database.add(random_labeled_graph(15, 20, seed=90, name="new0"))
        database.add(random_labeled_graph(15, 22, seed=91, name="new1"))
        assert fitter.num_pending == 2
        assert fitter.is_stale

        assert fitter.refit() is True
        assert fitter.version == 2
        assert fitter.num_pending == 0
        assert not fitter.is_stale
        assert fitter.last_report.num_new_graphs == 2
        assert fitter.last_report.num_new_pairs == 16
        assert fitter.last_report.num_total_samples == samples_before + 16
        # the new 15-vertex order is covered without refitting old columns
        assert 15 in fitter.ged_prior.orders

    def test_refit_is_deterministic(self, population):
        def run():
            db = GraphDatabase(list(population), name="det")
            fitter = OfflineFitter(
                db, max_tau=4, num_prior_pairs=60, seed=5, refit_pairs_per_graph=6
            ).fit()
            db.add(random_labeled_graph(13, 17, seed=77, name="extra"))
            fitter.refit()
            return fitter.gbd_prior.table(), fitter.ged_prior.matrix()

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_refit_rebuilds_grid_when_label_alphabet_grows(self, database):
        fitter = OfflineFitter(database, max_tau=3, num_prior_pairs=60, seed=0).fit()
        labels_before = fitter.ged_prior.num_vertex_labels
        database.add(
            random_labeled_graph(
                10, 13, seed=50, vertex_labels=["NEW1", "NEW2"], edge_labels=["nn"]
            )
        )
        fitter.refit()
        assert fitter.ged_prior.num_vertex_labels == database.num_vertex_labels
        assert fitter.ged_prior.num_vertex_labels > labels_before

    def test_refit_answers_cover_new_graph(self, database):
        fitter = OfflineFitter(database, max_tau=4, num_prior_pairs=60, seed=0).fit()
        new_graph = random_labeled_graph(11, 14, seed=60, name="fresh")
        new_id = database.add(new_graph)
        fitter.refit()
        answer = fitter.build_engine(cache_size=None).query(SimilarityQuery(new_graph, 2, 0.5))
        assert new_id in answer.accepted_ids


class TestSnapshotVersioning:
    def test_snapshot_round_trips_model_version(self, database, tmp_path):
        fitter = OfflineFitter(database, max_tau=4, num_prior_pairs=60, seed=0).fit()
        path = tmp_path / "engine.v1.snapshot"
        fitter.snapshot(path, cache_size=None)
        assert load_engine(path).model_version == 1

        database.add(random_labeled_graph(12, 15, seed=70))
        fitter.refit()
        path2 = tmp_path / "engine.v2.snapshot"
        fitter.snapshot(path2, cache_size=None)
        loaded = load_engine(path2)
        assert loaded.model_version == 2
        assert len(loaded.database) == len(database)

    def test_engine_from_search_has_version_zero(self, database, tmp_path):
        from repro.serving.engine import BatchQueryEngine

        search = GBDASearch(database, max_tau=3, num_prior_pairs=60, seed=0).fit()
        engine = BatchQueryEngine.from_search(search, cache_size=None)
        assert engine.model_version == 0
        path = tmp_path / "plain.snapshot"
        engine.save(path)
        assert load_engine(path).model_version == 0


class TestBackendEndToEnd:
    def test_numpy_and_python_backends_answer_identically(self, database):
        queries = [SimilarityQuery(database[i].graph, tau, 0.5) for i, tau in ((0, 1), (3, 2), (7, 4))]
        scalar = GBDASearch(
            database, max_tau=4, num_prior_pairs=120, seed=0, backend="python"
        ).fit()
        vector = GBDASearch(
            database, max_tau=4, num_prior_pairs=120, seed=0, backend="numpy"
        ).fit()
        for query in queries:
            a = scalar.query(query)
            b = vector.query(query)
            assert a.answer.accepted_ids == b.answer.accepted_ids
            assert a.gbd_values == b.gbd_values
            for graph_id, posterior in a.posteriors.items():
                assert b.posteriors[graph_id] == pytest.approx(posterior, abs=1e-9)

    def test_parallel_workers_do_not_change_fit(self, database):
        serial = GBDASearch(database, max_tau=4, num_prior_pairs=150, seed=2).fit()
        parallel = GBDASearch(
            database, max_tau=4, num_prior_pairs=150, seed=2, num_workers=2
        ).fit()
        assert parallel.gbd_prior.table() == serial.gbd_prior.table()
        assert parallel.ged_prior.matrix() == serial.ged_prior.matrix()
