"""Tests for the CSR columnar branch store (repro.db.columnar)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.branches import branch_multiset
from repro.core.gbd import branch_intersection_size, graph_branch_distance
from repro.db.columnar import ColumnarBranchStore
from repro.db.database import GraphDatabase
from repro.graphs.generators import random_labeled_graph


@pytest.fixture
def random_database():
    rng = random.Random(23)
    graphs = [
        random_labeled_graph(rng.randint(3, 9), rng.randint(2, 12), seed=rng)
        for _ in range(30)
    ]
    return GraphDatabase(graphs, name="columnar-random")


def _queries(num, seed):
    rng = random.Random(seed)
    return [
        random_labeled_graph(rng.randint(2, 10), rng.randint(1, 14), seed=rng)
        for _ in range(num)
    ]


class TestCsrLayout:
    def test_counts_shapes_and_vocabulary(self, random_database):
        store = ColumnarBranchStore(random_database)
        store.compact()
        assert store.num_graphs == len(random_database)
        distinct = {key for entry in random_database for key in entry.branches}
        assert store.num_keys == len(distinct)
        assert store.num_postings == sum(
            len(entry.branches) for entry in random_database
        )

    def test_postings_match_database_and_stay_sorted(self, random_database):
        store = ColumnarBranchStore(random_database)
        for entry in random_database:
            for key, count in entry.branches.items():
                postings = store.postings(key)
                assert (entry.graph_id, count) in postings
                ids = [graph_id for graph_id, _count in postings]
                assert ids == sorted(ids)

    def test_unknown_key_and_empty_store(self):
        store = ColumnarBranchStore()
        assert store.num_graphs == 0
        assert store.postings(("missing", ())) == []
        assert store.intersection_row(branch_multiset(random_labeled_graph(3, 2, seed=0))).shape == (0,)

    def test_orders_and_global_ids(self, random_database):
        store = ColumnarBranchStore(random_database)
        assert store.orders().tolist() == [e.num_vertices for e in random_database]
        assert store.global_ids().tolist() == [e.graph_id for e in random_database]


class TestAppendBufferCompaction:
    def test_appends_are_lazy_and_compaction_is_batched(self, random_database):
        store = ColumnarBranchStore(random_database)
        store.compact()
        before = store.num_compactions
        extras = _queries(5, seed=3)
        entries = GraphDatabase(extras)
        for entry in entries:
            store.append(
                type(entry)(
                    graph_id=store.num_graphs,
                    graph=entry.graph,
                    branches=entry.branches,
                    num_vertices=entry.num_vertices,
                    num_edges=entry.num_edges,
                )
            )
        # five appends buffered, still zero extra compactions
        assert store.num_compactions == before
        store.intersection_row(branch_multiset(extras[0]))  # any read compacts
        assert store.num_compactions == before + 1
        store.intersection_row(branch_multiset(extras[0]))
        assert store.num_compactions == before + 1  # reads stay no-ops

    def test_results_identical_after_incremental_appends(self):
        rng = random.Random(5)
        graphs = [random_labeled_graph(rng.randint(3, 7), rng.randint(2, 9), seed=rng) for _ in range(20)]
        incremental = GraphDatabase(graphs[:10], name="inc")
        store = ColumnarBranchStore(incremental)
        store.compact()
        for graph in graphs[10:]:
            incremental.add(graph)
            store.append(incremental[len(incremental) - 1])
        bulk_store = ColumnarBranchStore(GraphDatabase(graphs, name="bulk"))
        for query in _queries(5, seed=9):
            branches = branch_multiset(query)
            assert (
                store.intersection_row(branches).tolist()
                == bulk_store.intersection_row(branches).tolist()
            )


class TestVectorizedKernels:
    def test_intersection_row_matches_pairwise(self, random_database):
        store = ColumnarBranchStore(random_database)
        for query in _queries(8, seed=11):
            branches = branch_multiset(query)
            row = store.intersection_row(branches)
            for entry in random_database:
                expected = branch_intersection_size(branches, entry.branches)
                assert row[entry.graph_id] == expected

    def test_gbd_row_matches_direct_gbd(self, random_database):
        store = ColumnarBranchStore(random_database)
        for query in _queries(8, seed=13):
            row = store.gbd_row(query.num_vertices, branch_multiset(query))
            for entry in random_database:
                assert row[entry.graph_id] == graph_branch_distance(query, entry.graph)

    def test_matrix_kernels_match_row_kernels(self, random_database):
        store = ColumnarBranchStore(random_database)
        queries = _queries(7, seed=17)
        branch_sets = [branch_multiset(query) for query in queries]
        inter = store.intersection_matrix(branch_sets)
        gbd = store.gbd_matrix([q.num_vertices for q in queries], branch_sets)
        assert inter.shape == gbd.shape == (len(queries), len(random_database))
        assert inter.dtype == gbd.dtype == np.int64
        for i, query in enumerate(queries):
            assert inter[i].tolist() == store.intersection_row(branch_sets[i]).tolist()
            assert gbd[i].tolist() == store.gbd_row(query.num_vertices, branch_sets[i]).tolist()

    def test_empty_batch_and_disjoint_queries(self, random_database):
        store = ColumnarBranchStore(random_database)
        assert store.intersection_matrix([]).shape == (0, len(random_database))
        stranger = random_labeled_graph(
            4, 4, vertex_labels=["Z1"], edge_labels=["zz"], seed=0
        )
        matrix = store.intersection_matrix([branch_multiset(stranger)])
        assert not matrix.any()

    def test_shard_stores_keep_global_ids(self, random_database):
        full = ColumnarBranchStore(random_database)
        shards = random_database.shard(3)
        query = _queries(1, seed=19)[0]
        branches = branch_multiset(query)
        merged = {}
        for shard in shards:
            store = ColumnarBranchStore(shard)
            row = store.gbd_row(query.num_vertices, branches)
            for global_id, value in zip(store.global_ids().tolist(), row.tolist()):
                merged[global_id] = value
        assert merged == dict(enumerate(full.gbd_row(query.num_vertices, branches).tolist()))


class TestBoundKernels:
    """GBD lower bounds and the sparse (position-restricted) kernels."""

    def test_lower_bound_never_exceeds_true_gbd(self, random_database):
        store = ColumnarBranchStore(random_database)
        for query in _queries(25, seed=31):
            branches = branch_multiset(query)
            bounds = store.gbd_lower_bound_row(query.num_vertices, branches)
            gbds = store.gbd_row(query.num_vertices, branches)
            assert (bounds <= gbds).all()
            # the norm bound dominates the plain size-difference bound
            assert (bounds >= np.abs(query.num_vertices - store.orders())).all()

    def test_lower_bound_tight_for_database_members(self, random_database):
        """A graph queried against itself must keep lb <= GBD = 0."""
        store = ColumnarBranchStore(random_database)
        for entry in random_database:
            bounds = store.gbd_lower_bound_row(entry.num_vertices, entry.branches)
            assert bounds[entry.graph_id] == 0

    def test_lower_bound_matrix_matches_rows(self, random_database):
        store = ColumnarBranchStore(random_database)
        queries = _queries(6, seed=37)
        branch_sets = [branch_multiset(query) for query in queries]
        matrix = store.gbd_lower_bound_matrix(
            [query.num_vertices for query in queries], branch_sets
        )
        for i, query in enumerate(queries):
            expected = store.gbd_lower_bound_row(query.num_vertices, branch_sets[i])
            assert matrix[i].tolist() == expected.tolist()

    def test_bounds_stay_sound_after_incremental_appends(self, random_database):
        store = ColumnarBranchStore(random_database)
        rng = random.Random(41)
        for _ in range(3):
            graph = random_labeled_graph(rng.randint(2, 14), rng.randint(1, 20), seed=rng)
            entry = GraphDatabase([graph])[0]
            store.append(entry)
            for query in _queries(5, seed=rng.randint(0, 10_000)):
                branches = branch_multiset(query)
                bounds = store.gbd_lower_bound_row(query.num_vertices, branches)
                assert (bounds <= store.gbd_row(query.num_vertices, branches)).all()

    def test_key_caps_track_max_multiplicity(self, random_database):
        store = ColumnarBranchStore(random_database)
        caps = store.key_caps()
        expected = {}
        for entry in random_database:
            for key, count in entry.branches.items():
                expected[key] = max(expected.get(key, 0), count)
        assert {
            key: int(caps[key_id]) for key, key_id in store._key_ids.items()
        } == expected

    def test_matched_query_total_bounds_every_intersection(self, random_database):
        store = ColumnarBranchStore(random_database)
        for query in _queries(10, seed=43):
            branches = branch_multiset(query)
            total = store.matched_query_total(branches)
            assert total <= query.num_vertices  # |B_Q| branches overall
            assert total >= int(store.intersection_row(branches).max(initial=0))

    def test_subrow_and_submatrix_match_dense_selections(self, random_database):
        store = ColumnarBranchStore(random_database)
        queries = _queries(5, seed=47)
        branch_sets = [branch_multiset(query) for query in queries]
        dense = store.intersection_matrix(branch_sets)
        for positions in (
            np.arange(0, len(random_database), 3),
            np.asarray([0]),
            np.asarray([len(random_database) - 1]),
            np.arange(len(random_database)),
            np.empty(0, dtype=np.int64),
        ):
            sub = store.intersection_submatrix(branch_sets, positions)
            assert sub.tolist() == dense[:, positions].tolist()
            for i, branches in enumerate(branch_sets):
                row = store.intersection_subrow(branches, positions)
                assert row.tolist() == dense[i, positions].tolist()
