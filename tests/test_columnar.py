"""Tests for the CSR columnar branch store (repro.db.columnar).

Every test runs once per kernel backend (``numpy`` always; ``native`` when
the bundled C kernels build on this machine, skipped loudly otherwise) —
the two implementations are bit-identical by contract.
"""

from __future__ import annotations

import random
from collections import Counter

import numpy as np
import pytest

from repro.core.branches import branch_multiset
from repro.core.gbd import branch_intersection_size, graph_branch_distance
from repro.db import columnar
from repro.db.columnar import ColumnarBranchStore
from repro.db.database import GraphDatabase
from repro.db.kernels import available_backends
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph

BACKENDS = available_backends()


@pytest.fixture(
    params=[
        pytest.param(
            name,
            marks=()
            if name in BACKENDS
            else pytest.mark.skip(reason="native kernel backend unavailable here"),
        )
        for name in ("numpy", "native")
    ]
)
def backend(request):
    return request.param


@pytest.fixture
def make_store(backend):
    def make(entries=()):
        return ColumnarBranchStore(entries, backend=backend)

    return make


@pytest.fixture
def random_database():
    rng = random.Random(23)
    graphs = [
        random_labeled_graph(rng.randint(3, 9), rng.randint(2, 12), seed=rng)
        for _ in range(30)
    ]
    return GraphDatabase(graphs, name="columnar-random")


def _queries(num, seed):
    rng = random.Random(seed)
    return [
        random_labeled_graph(rng.randint(2, 10), rng.randint(1, 14), seed=rng)
        for _ in range(num)
    ]


def _appendable(store, entry):
    """Re-id a database entry so it can be appended to ``store``."""
    return type(entry)(
        graph_id=store.num_graphs,
        graph=entry.graph,
        branches=entry.branches,
        num_vertices=entry.num_vertices,
        num_edges=entry.num_edges,
    )


class TestCsrLayout:
    def test_counts_shapes_and_vocabulary(self, random_database, make_store):
        store = make_store(random_database)
        store.compact()
        assert store.num_graphs == len(random_database)
        distinct = {key for entry in random_database for key in entry.branches}
        assert store.num_keys == len(distinct)
        assert store.num_postings == sum(
            len(entry.branches) for entry in random_database
        )

    def test_postings_match_database_and_stay_sorted(self, random_database, make_store):
        store = make_store(random_database)
        for entry in random_database:
            for key, count in entry.branches.items():
                postings = store.postings(key)
                assert (entry.graph_id, count) in postings
                ids = [graph_id for graph_id, _count in postings]
                assert ids == sorted(ids)

    def test_unknown_key_and_empty_store(self, make_store):
        store = make_store()
        assert store.num_graphs == 0
        assert store.postings(("missing", ())) == []
        assert store.intersection_row(branch_multiset(random_labeled_graph(3, 2, seed=0))).shape == (0,)

    def test_orders_and_global_ids(self, random_database, make_store):
        store = make_store(random_database)
        assert store.orders().tolist() == [e.num_vertices for e in random_database]
        assert store.global_ids().tolist() == [e.graph_id for e in random_database]


class TestAppendBufferCompaction:
    def test_appends_are_lazy_and_compaction_is_batched(self, random_database, make_store):
        store = make_store(random_database)
        store.compact()
        before = store.num_compactions
        extras = _queries(5, seed=3)
        entries = GraphDatabase(extras)
        for entry in entries:
            store.append(_appendable(store, entry))
        # five appends buffered, still zero extra compactions
        assert store.num_compactions == before
        store.intersection_row(branch_multiset(extras[0]))  # any read compacts
        assert store.num_compactions == before + 1
        store.intersection_row(branch_multiset(extras[0]))
        assert store.num_compactions == before + 1  # reads stay no-ops

    def test_results_identical_after_incremental_appends(self, make_store):
        rng = random.Random(5)
        graphs = [random_labeled_graph(rng.randint(3, 7), rng.randint(2, 9), seed=rng) for _ in range(20)]
        incremental = GraphDatabase(graphs[:10], name="inc")
        store = make_store(incremental)
        store.compact()
        for graph in graphs[10:]:
            incremental.add(graph)
            store.append(incremental[len(incremental) - 1])
        bulk_store = make_store(GraphDatabase(graphs, name="bulk"))
        for query in _queries(5, seed=9):
            branches = branch_multiset(query)
            assert (
                store.intersection_row(branches).tolist()
                == bulk_store.intersection_row(branches).tolist()
            )


class TestCompactionRegressions:
    """Regressions around the lazy compaction fast path."""

    def test_zero_branch_append_still_compacts(self, random_database, make_store):
        """An appended entry with no branches must not leave the CSR stale.

        Such an entry grows the row count without touching the vocabulary or
        the append buffer, so a vocabulary-only "already compacted" check
        would return early forever — and :meth:`view`, which insists the CSR
        covers every row, would spin.
        """
        store = make_store(random_database)
        store.compact()
        entry = random_database[0]
        store.append(
            type(entry)(
                graph_id=store.num_graphs,
                graph=None,
                branches=Counter(),
                num_vertices=0,
                num_edges=0,
            )
        )
        assert store.compact() is True  # must do work, not early-return
        csr, orders, global_ids = store.view()  # and view() must terminate
        assert csr[3] == len(orders) == len(global_ids) == len(random_database) + 1
        row = store.intersection_row(branch_multiset(_queries(1, seed=7)[0]))
        assert len(row) == store.num_graphs
        assert row[-1] == 0  # the branchless row intersects nothing

    def test_caches_refresh_after_mid_query_compaction(self, random_database, make_store):
        """Per-snapshot derived caches must key on the CSR actually in use.

        The composite sort key, order blocks, and order partition are cached
        per snapshot; after an append + compaction they must be rebuilt for
        the new arrays, never served stale for the old (shorter) ones.
        """
        store = make_store(random_database)
        queries = _queries(6, seed=29)
        branch_sets = [branch_multiset(query) for query in queries]
        # Warm every derived cache on the first snapshot.
        store.intersection_for_orders(
            branch_sets[0], np.unique(store.orders()), np.arange(store.num_graphs)
        )
        store.intersection_subrow(branch_sets[0], np.arange(0, store.num_graphs, 2))
        extras = GraphDatabase(_queries(4, seed=31))
        for entry in extras:
            store.append(_appendable(store, entry))
        # The next read compacts mid-stream; answers must match a store built
        # directly over the grown database (fresh caches by construction).
        grown = GraphDatabase(
            [e.graph for e in random_database] + [e.graph for e in extras]
        )
        bulk = make_store(grown)
        positions = np.arange(0, store.num_graphs + len(extras), 3)
        for nq, branches in zip((q.num_vertices for q in queries), branch_sets):
            assert (
                store.intersection_subrow(branches, positions).tolist()
                == bulk.intersection_subrow(branches, positions).tolist()
            )
            assert (
                store.gbd_lower_bound_row(nq, branches).tolist()
                == bulk.gbd_lower_bound_row(nq, branches).tolist()
            )
            assert (
                store.intersection_row(branches).tolist()
                == bulk.intersection_row(branches).tolist()
            )


class TestDtypeLayout:
    """int32 postings layout with overflow-checked promotion to int64."""

    def test_compact_layout_is_int32_for_small_stores(self, random_database, make_store):
        store = make_store(random_database)
        store.compact()
        offsets, positions, counts, _rows = store._csr
        assert offsets.dtype == np.int64
        assert positions.dtype == np.int32
        assert counts.dtype == np.int32

    def test_position_overflow_promotes_to_int64(
        self, random_database, make_store, monkeypatch
    ):
        monkeypatch.setattr(columnar, "_POSITION_DTYPE_LIMIT", 4)
        store = make_store(random_database)  # 30 rows > the patched limit
        store.compact()
        assert store._csr[1].dtype == np.int64
        assert store._csr[2].dtype == np.int32  # counts unaffected
        reference = ColumnarBranchStore(random_database, backend="numpy")
        for query in _queries(6, seed=61):
            branches = branch_multiset(query)
            assert (
                store.intersection_row(branches).tolist()
                == reference.intersection_row(branches).tolist()
            )

    def test_count_overflow_promotes_to_int64(self, make_store, monkeypatch):
        monkeypatch.setattr(columnar, "_COUNT_DTYPE_LIMIT", 2)
        # Three isolated same-label vertices -> one branch key with count 3.
        heavy = Graph.from_dicts({0: "A", 1: "A", 2: "A"}, {}, name="heavy")
        database = GraphDatabase([heavy] + _queries(6, seed=67))
        store = make_store(database)
        store.compact()
        assert store._csr[2].dtype == np.int64
        reference = ColumnarBranchStore(database, backend="numpy")
        for query in [heavy] + _queries(4, seed=71):
            branches = branch_multiset(query)
            assert (
                store.gbd_row(query.num_vertices, branches).tolist()
                == reference.gbd_row(query.num_vertices, branches).tolist()
            )

    def test_promotion_boundary_is_exact(self, make_store, monkeypatch):
        """Row count exactly at the limit stays int32; one past promotes."""
        graphs = _queries(6, seed=73)
        monkeypatch.setattr(columnar, "_POSITION_DTYPE_LIMIT", len(graphs))
        at_limit = make_store(GraphDatabase(graphs))
        at_limit.compact()
        assert at_limit._csr[1].dtype == np.int32
        past_limit = make_store(GraphDatabase(graphs + _queries(1, seed=74)))
        past_limit.compact()
        assert past_limit._csr[1].dtype == np.int64


class TestVectorizedKernels:
    def test_intersection_row_matches_pairwise(self, random_database, make_store):
        store = make_store(random_database)
        for query in _queries(8, seed=11):
            branches = branch_multiset(query)
            row = store.intersection_row(branches)
            for entry in random_database:
                expected = branch_intersection_size(branches, entry.branches)
                assert row[entry.graph_id] == expected

    def test_gbd_row_matches_direct_gbd(self, random_database, make_store):
        store = make_store(random_database)
        for query in _queries(8, seed=13):
            row = store.gbd_row(query.num_vertices, branch_multiset(query))
            for entry in random_database:
                assert row[entry.graph_id] == graph_branch_distance(query, entry.graph)

    def test_matrix_kernels_match_row_kernels(self, random_database, make_store):
        store = make_store(random_database)
        queries = _queries(7, seed=17)
        branch_sets = [branch_multiset(query) for query in queries]
        inter = store.intersection_matrix(branch_sets)
        gbd = store.gbd_matrix([q.num_vertices for q in queries], branch_sets)
        assert inter.shape == gbd.shape == (len(queries), len(random_database))
        assert inter.dtype == gbd.dtype == np.int64
        for i, query in enumerate(queries):
            assert inter[i].tolist() == store.intersection_row(branch_sets[i]).tolist()
            assert gbd[i].tolist() == store.gbd_row(query.num_vertices, branch_sets[i]).tolist()

    def test_empty_batch_and_disjoint_queries(self, random_database, make_store):
        store = make_store(random_database)
        assert store.intersection_matrix([]).shape == (0, len(random_database))
        stranger = random_labeled_graph(
            4, 4, vertex_labels=["Z1"], edge_labels=["zz"], seed=0
        )
        matrix = store.intersection_matrix([branch_multiset(stranger)])
        assert not matrix.any()

    def test_shard_stores_keep_global_ids(self, random_database, make_store):
        full = make_store(random_database)
        shards = random_database.shard(3)
        query = _queries(1, seed=19)[0]
        branches = branch_multiset(query)
        merged = {}
        for shard in shards:
            store = make_store(shard)
            row = store.gbd_row(query.num_vertices, branches)
            for global_id, value in zip(store.global_ids().tolist(), row.tolist()):
                merged[global_id] = value
        assert merged == dict(enumerate(full.gbd_row(query.num_vertices, branches).tolist()))


class TestBoundKernels:
    """GBD lower bounds and the sparse (position-restricted) kernels."""

    def test_lower_bound_never_exceeds_true_gbd(self, random_database, make_store):
        store = make_store(random_database)
        for query in _queries(25, seed=31):
            branches = branch_multiset(query)
            bounds = store.gbd_lower_bound_row(query.num_vertices, branches)
            gbds = store.gbd_row(query.num_vertices, branches)
            assert (bounds <= gbds).all()
            # the norm bound dominates the plain size-difference bound
            assert (bounds >= np.abs(query.num_vertices - store.orders())).all()

    def test_lower_bound_tight_for_database_members(self, random_database, make_store):
        """A graph queried against itself must keep lb <= GBD = 0."""
        store = make_store(random_database)
        for entry in random_database:
            bounds = store.gbd_lower_bound_row(entry.num_vertices, entry.branches)
            assert bounds[entry.graph_id] == 0

    def test_lower_bound_matrix_matches_rows(self, random_database, make_store):
        store = make_store(random_database)
        queries = _queries(6, seed=37)
        branch_sets = [branch_multiset(query) for query in queries]
        matrix = store.gbd_lower_bound_matrix(
            [query.num_vertices for query in queries], branch_sets
        )
        for i, query in enumerate(queries):
            expected = store.gbd_lower_bound_row(query.num_vertices, branch_sets[i])
            assert matrix[i].tolist() == expected.tolist()

    def test_bounds_stay_sound_after_incremental_appends(self, random_database, make_store):
        store = make_store(random_database)
        rng = random.Random(41)
        for _ in range(3):
            graph = random_labeled_graph(rng.randint(2, 14), rng.randint(1, 20), seed=rng)
            entry = GraphDatabase([graph])[0]
            store.append(entry)
            for query in _queries(5, seed=rng.randint(0, 10_000)):
                branches = branch_multiset(query)
                bounds = store.gbd_lower_bound_row(query.num_vertices, branches)
                assert (bounds <= store.gbd_row(query.num_vertices, branches)).all()

    def test_key_caps_track_max_multiplicity(self, random_database, make_store):
        store = make_store(random_database)
        caps = store.key_caps()
        expected = {}
        for entry in random_database:
            for key, count in entry.branches.items():
                expected[key] = max(expected.get(key, 0), count)
        assert {
            key: int(caps[key_id]) for key, key_id in store._key_ids.items()
        } == expected

    def test_matched_query_total_bounds_every_intersection(self, random_database, make_store):
        store = make_store(random_database)
        for query in _queries(10, seed=43):
            branches = branch_multiset(query)
            total = store.matched_query_total(branches)
            assert total <= query.num_vertices  # |B_Q| branches overall
            assert total >= int(store.intersection_row(branches).max(initial=0))

    def test_subrow_and_submatrix_match_dense_selections(self, random_database, make_store):
        store = make_store(random_database)
        queries = _queries(5, seed=47)
        branch_sets = [branch_multiset(query) for query in queries]
        dense = store.intersection_matrix(branch_sets)
        for positions in (
            np.arange(0, len(random_database), 3),
            np.asarray([0]),
            np.asarray([len(random_database) - 1]),
            np.arange(len(random_database)),
            np.empty(0, dtype=np.int64),
        ):
            sub = store.intersection_submatrix(branch_sets, positions)
            assert sub.tolist() == dense[:, positions].tolist()
            for i, branches in enumerate(branch_sets):
                row = store.intersection_subrow(branches, positions)
                assert row.tolist() == dense[i, positions].tolist()


class TestFusedFilterVerify:
    """Contract of the single-pass bound-filter + verify kernels."""

    @staticmethod
    def _bars(store, num_query_vertices, tau):
        """Per-distinct-order GBD bars: min(max(|V_Q|, o), τ) — arbitrary
        but order-dependent, like the γ-threshold inversion produces."""
        distinct = np.unique(store.orders())
        return distinct, np.minimum(np.maximum(num_query_vertices, distinct), tau)

    def test_row_matches_unfused_kernels(self, random_database, make_store):
        store = make_store(random_database)
        orders = store.orders()
        for query in _queries(10, seed=53):
            branches = branch_multiset(query)
            nq = query.num_vertices
            bounds = store.gbd_lower_bound_row(nq, branches)
            dense = store.intersection_row(branches)
            for tau in (0, 1, 2, 4, 50):
                distinct, thresholds = self._bars(store, nq, tau)
                positions, inters, eligible, num_eligible = store.filter_verify_row(
                    nq, branches, thresholds, max_candidates=store.num_graphs
                )
                per_row_bar = thresholds[np.searchsorted(distinct, orders)]
                expected_rows = np.flatnonzero(bounds <= per_row_bar)
                assert eligible.dtype == np.bool_ and len(eligible) == len(distinct)
                assert num_eligible == len(expected_rows)
                assert positions.tolist() == expected_rows.tolist()
                assert inters.tolist() == dense[expected_rows].tolist()

    def test_row_dense_bail_and_empty_cases(self, random_database, make_store):
        store = make_store(random_database)
        query = _queries(1, seed=59)[0]
        branches = branch_multiset(query)
        nq = query.num_vertices
        distinct, thresholds = self._bars(store, nq, 50)  # everything survives
        positions, inters, eligible, num_eligible = store.filter_verify_row(
            nq, branches, thresholds, max_candidates=0
        )
        assert positions is None and inters is None  # over the caller's bar
        assert eligible.all() and num_eligible == store.num_graphs
        hopeless = np.full(len(distinct), -1, dtype=np.int64)  # GBD >= 0 always
        positions, inters, eligible, num_eligible = store.filter_verify_row(
            nq, branches, hopeless, max_candidates=store.num_graphs
        )
        assert num_eligible == 0 and not eligible.any()
        assert positions.shape == (0,) and inters.shape == (0,)

    def test_matrix_matches_row_calls(self, random_database, make_store):
        store = make_store(random_database)
        queries = _queries(6, seed=63)
        branch_sets = [branch_multiset(query) for query in queries]
        vertices = [query.num_vertices for query in queries]
        distinct = np.unique(store.orders())
        rng = np.random.default_rng(3)
        thresholds = rng.integers(0, 6, size=(len(queries), len(distinct)))
        positions, inters, eligible, num_union = store.filter_verify_matrix(
            vertices, branch_sets, thresholds, max_union_rows=store.num_graphs
        )
        assert eligible.shape == (len(queries), len(distinct))
        union = set()
        for i, (nq, branches) in enumerate(zip(vertices, branch_sets)):
            row_positions, row_inters, row_eligible, _n = store.filter_verify_row(
                nq, branches, np.ascontiguousarray(thresholds[i]), store.num_graphs
            )
            assert eligible[i].tolist() == row_eligible.tolist()
            union.update(row_positions.tolist())
            dense = store.intersection_row(branches)
            assert inters[i].tolist() == dense[positions].tolist()
        assert set(positions.tolist()) >= union
        assert num_union == len(positions)

    def test_matrix_dense_bail_and_empty_union(self, random_database, make_store):
        store = make_store(random_database)
        queries = _queries(3, seed=69)
        branch_sets = [branch_multiset(query) for query in queries]
        vertices = [query.num_vertices for query in queries]
        distinct = np.unique(store.orders())
        generous = np.full((len(queries), len(distinct)), 100, dtype=np.int64)
        positions, inters, eligible, num_union = store.filter_verify_matrix(
            vertices, branch_sets, generous, max_union_rows=1
        )
        assert positions is None and inters is None
        assert num_union == store.num_graphs and eligible.all()
        hopeless = np.full((len(queries), len(distinct)), -1, dtype=np.int64)
        positions, inters, eligible, num_union = store.filter_verify_matrix(
            vertices, branch_sets, hopeless, max_union_rows=store.num_graphs
        )
        assert num_union == 0 and not eligible.any()
        assert positions.shape == (0,)
        assert inters.shape == (len(queries), 0)
