"""Tests for the closed forms Ω1–Ω4 (Lemmas 1–4) and their derivatives."""

from fractions import Fraction

import pytest

from repro.core.combinatorics import binomial
from repro.core.omegas import (
    branch_type_count,
    omega1,
    omega1_dtau,
    omega2,
    omega2_dtau,
    omega3,
    omega4,
    omega_support,
)


class TestBranchTypeCount:
    def test_equation33(self):
        # D = |LV| * C(v + |LE| - 1, |LE|)
        assert branch_type_count(4, 3, 3) == 3 * binomial(4 + 3 - 1, 3)

    def test_degenerate_alphabets_still_give_at_least_two_types(self):
        assert branch_type_count(2, 0, 0) >= 2

    def test_monotone_in_order(self):
        assert branch_type_count(10, 3, 3) > branch_type_count(5, 3, 3)


class TestOmega1:
    def test_is_hypergeometric_over_editable_elements(self):
        v, tau = 4, 3
        total = sum(omega1(x, tau, v) for x in range(tau + 1))
        assert total == Fraction(1)

    def test_impossible_x_is_zero(self):
        assert omega1(5, 3, 4) == 0
        assert omega1(-1, 3, 4) == 0

    def test_all_vertex_edits_when_graph_has_no_edges(self):
        # v = 1: the extended graph has one vertex and no edges, so every
        # operation must be a vertex relabel.
        assert omega1(1, 1, 1) == 1
        assert omega1(0, 1, 1) == 0

    def test_explicit_value(self):
        # v = 3: 3 vertices + 3 edges = 6 editable elements.
        # Ω1(1, 2) = C(3,1)*C(3,1)/C(6,2) = 9/15.
        assert omega1(1, 2, 3) == Fraction(9, 15)


class TestOmega2:
    def test_distribution_sums_to_one(self):
        v, tau, x = 5, 3, 1
        total = sum(omega2(m, x, tau, v) for m in range(v + 1))
        assert total == Fraction(1)

    def test_zero_edges_cover_zero_vertices(self):
        assert omega2(0, 2, 2, 5) == 1
        assert omega2(1, 2, 2, 5) == 0

    def test_single_edge_covers_exactly_two_vertices(self):
        v = 6
        assert omega2(2, 0, 1, v) == 1
        assert omega2(1, 0, 1, v) == 0
        assert omega2(3, 0, 1, v) == 0

    def test_two_edges_cover_three_or_four_vertices(self):
        v = 6
        p3 = omega2(3, 0, 2, v)
        p4 = omega2(4, 0, 2, v)
        assert p3 > 0 and p4 > 0
        assert p3 + p4 == Fraction(1)
        # two random edges share an endpoint with probability 2(v-2)/[C(v,2)-1]... just
        # check the exact count: pairs sharing an endpoint = v*C(v-1,2)... use formula
        total_pairs = binomial(binomial(v, 2), 2)
        sharing = v * binomial(v - 1, 2)
        assert p3 == Fraction(sharing, total_pairs)

    def test_out_of_range_m_is_zero(self):
        assert omega2(10, 0, 2, 5) == 0
        assert omega2(-1, 0, 2, 5) == 0


class TestOmega3:
    def test_distribution_sums_to_one(self):
        r, d = 5, 7
        total = sum(omega3(r, phi, d) for phi in range(r + 1))
        assert total == Fraction(1)

    def test_zero_relabelled_branches_give_zero_gbd(self):
        assert omega3(0, 0, 5) == 1
        assert omega3(0, 1, 5) == 0

    def test_phi_cannot_exceed_r(self):
        assert omega3(3, 4, 5) == 0

    def test_large_alphabet_concentrates_on_phi_equal_r(self):
        small_d = omega3(4, 4, 3)
        large_d = omega3(4, 4, 10**6)
        assert large_d > small_d
        assert float(large_d) == pytest.approx(1.0, abs=1e-4)

    def test_explicit_formula(self):
        r, phi, d = 3, 2, 4
        expected = Fraction(binomial(r, r - phi) * (d - 1) ** phi, d**r)
        assert omega3(r, phi, d) == expected


class TestOmega4:
    def test_distribution_sums_to_one_over_r(self):
        v, x, m = 6, 2, 3
        total = sum(omega4(x, r, m, v) for r in range(v + 1))
        assert total == Fraction(1)

    def test_disjoint_and_full_overlap_extremes(self):
        v, x, m = 10, 2, 3
        # r = x + m means no overlap; r = max(x, m) means full overlap.
        assert omega4(x, x + m, m, v) > 0
        assert omega4(x, max(x, m), m, v) > 0
        assert omega4(x, x + m + 1, m, v) == 0

    def test_no_vertex_edits_means_r_equals_m(self):
        v, m = 8, 3
        assert omega4(0, m, m, v) == 1
        assert omega4(0, m - 1, m, v) == 0


class TestDerivatives:
    def test_omega1_derivative_sign_matches_finite_difference(self):
        v = 6
        for x in range(3):
            analytic = float(omega1_dtau(x, 3, v))
            finite = float(omega1(x, 4, v) - omega1(x, 2, v)) / 2.0
            if abs(finite) > 1e-9:
                assert analytic * finite > 0, f"sign mismatch at x={x}"

    def test_omega2_derivative_zero_outside_support(self):
        assert omega2_dtau(3, 5, 3, 6) == 0  # y = τ - x < 0
        assert omega2_dtau(-1, 0, 3, 6) == 0

    def test_omega1_derivative_zero_when_probability_zero(self):
        assert omega1_dtau(10, 3, 4) == 0


class TestSupport:
    def test_ranges_follow_section6b(self):
        xs, ms, rs = omega_support(4, 100)
        assert list(xs) == list(range(0, 5))
        assert list(ms) == list(range(0, 9))
        assert list(rs) == list(range(0, 13))

    def test_ranges_clamped_by_order(self):
        xs, ms, rs = omega_support(4, 3)
        assert max(ms) == 3
        assert max(rs) == 3
