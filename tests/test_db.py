"""Tests for the graph database layer: storage, branch index, catalog, queries."""

import pytest

from repro.core.gbd import graph_branch_distance
from repro.db.catalog import DatabaseCatalog
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import DatasetError, SearchError
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph


@pytest.fixture
def small_database(triangle, path_graph, paper_g1, paper_g2):
    return GraphDatabase([triangle, path_graph, paper_g1, paper_g2], name="unit-test")


class TestGraphDatabase:
    def test_ids_are_assigned_in_order(self, small_database, triangle):
        assert len(small_database) == 4
        assert small_database[0].graph is triangle
        assert small_database[0].graph_id == 0

    def test_add_returns_id_and_extend_appends(self):
        database = GraphDatabase()
        first = database.add(random_labeled_graph(4, 4, seed=0))
        ids = database.extend([random_labeled_graph(4, 4, seed=1)])
        assert first == 0
        assert ids == [1]

    def test_branches_precomputed(self, small_database, paper_g1):
        from repro.core.branches import branch_multiset

        assert small_database[2].branches == branch_multiset(paper_g1)

    def test_label_alphabet_sizes(self, small_database):
        assert small_database.num_vertex_labels == 3  # A, B, C across all graphs
        assert small_database.num_edge_labels == 3

    def test_max_vertices_and_average_degree(self, small_database):
        assert small_database.max_vertices == 4
        assert small_database.average_degree > 0

    def test_gbd_to_matches_direct_computation(self, small_database, paper_g1, paper_g2):
        assert small_database.gbd_to(paper_g1, 3) == graph_branch_distance(paper_g1, paper_g2)

    def test_vgbd_to(self, small_database, paper_g1):
        assert small_database.vgbd_to(paper_g1, 3, weight=0.5) == pytest.approx(3.5)

    def test_out_of_range_id_rejected(self, small_database, paper_g1):
        with pytest.raises(DatasetError):
            small_database[99]

    def test_distinct_extended_orders_grouping(self, small_database, paper_g1):
        groups = small_database.distinct_extended_orders(paper_g1)
        assert set(groups) == {3, 4}
        assert sorted(sum(groups.values(), [])) == [0, 1, 2, 3]

    def test_stored_graph_name_fallback(self):
        database = GraphDatabase([Graph()])
        assert database[0].name == "g0"

    def test_iteration_and_graphs_accessor(self, small_database):
        assert len(list(small_database)) == 4
        assert len(small_database.graphs()) == 4
        assert len(small_database.entries()) == 4


class TestBranchInvertedIndex:
    def test_intersection_sizes_match_pairwise_computation(self, small_database, paper_g1):
        index = BranchInvertedIndex(small_database)
        sizes = index.intersection_sizes(paper_g1)
        from repro.core.branches import branch_multiset
        from repro.core.gbd import branch_intersection_size

        query_branches = branch_multiset(paper_g1)
        for entry in small_database:
            expected = branch_intersection_size(query_branches, entry.branches)
            assert sizes.get(entry.graph_id, 0) == expected

    def test_gbd_all_matches_direct_gbd(self, small_database, paper_g1):
        index = BranchInvertedIndex(small_database)
        gbds = index.gbd_all(paper_g1)
        for entry in small_database:
            assert gbds[entry.graph_id] == graph_branch_distance(paper_g1, entry.graph)

    def test_candidate_pruning_keeps_all_true_answers(self, small_database, paper_g1):
        index = BranchInvertedIndex(small_database)
        tau_hat = 2
        survivors = set(index.candidates_by_gbd_bound(paper_g1, tau_hat))
        # Any graph with GED <= tau_hat satisfies GBD <= 2*tau_hat and must survive.
        gbds = index.gbd_all(paper_g1)
        for graph_id, gbd in gbds.items():
            if gbd <= 2 * tau_hat:
                assert graph_id in survivors

    def test_postings_and_statistics(self, small_database, paper_g1):
        index = BranchInvertedIndex(small_database)
        assert index.num_distinct_branches > 0
        some_key = next(iter(small_database[2].branches))
        postings = index.postings(some_key)
        assert any(graph_id == 2 for graph_id, _count in postings)
        assert index.postings(("missing", ())) == []


class TestBatchNotifications:
    def test_extend_notifies_batched_subscribers_once(self, triangle, path_graph, paper_g1):
        database = GraphDatabase([triangle])
        single_calls = []
        batch_calls = []
        database.subscribe(single_calls.append)
        database.subscribe(lambda entries: batch_calls.append(list(entries)), batched=True)

        database.extend([path_graph, paper_g1, triangle.copy(name="t2")])
        # per-entry subscribers see every graph; batched ones exactly one call
        assert len(single_calls) == 3
        assert len(batch_calls) == 1
        assert len(batch_calls[0]) == 3

        database.add(triangle.copy(name="t3"))
        assert len(single_calls) == 4
        assert len(batch_calls) == 2
        assert len(batch_calls[1]) == 1

    def test_add_many_returns_contiguous_ids_and_bumps_revision(self, triangle, path_graph):
        database = GraphDatabase([triangle])
        before = database.revision
        ids = database.add_many([path_graph, triangle.copy(name="b")])
        assert ids == [1, 2]
        assert database.revision == before + 2

    def test_bulk_load_compacts_the_index_once(self, triangle, path_graph):
        database = GraphDatabase([triangle, path_graph])
        index = BranchInvertedIndex(database)
        index.gbd_all(triangle)  # force the initial compaction
        before = index.store.num_compactions

        database.extend([triangle.copy(name=f"bulk{i}") for i in range(10)])
        assert index.num_indexed_graphs == 12  # appends buffered immediately
        assert index.store.num_compactions == before  # ...but not compacted yet
        gbds = index.gbd_all(triangle)
        assert index.store.num_compactions == before + 1  # one merge for 10 adds
        assert sum(1 for value in gbds.values() if value == 0) == 11

    def test_unsubscribe_detaches_batched_callback(self, triangle):
        database = GraphDatabase([triangle])
        calls = []

        def hook(entries):
            calls.append(entries)

        database.subscribe(hook, batched=True)
        database.unsubscribe(hook)
        database.add(triangle.copy(name="late"))
        assert calls == []


class TestShardViews:
    def test_shards_partition_and_preserve_global_ids(self):
        graphs = [random_labeled_graph(4, 4, seed=i) for i in range(10)]
        database = GraphDatabase(graphs, name="shardable")
        shards = database.shard(3)
        assert [len(shard) for shard in shards] == [3, 3, 4]
        seen = [graph_id for shard in shards for graph_id in shard.graph_ids()]
        assert seen == list(range(10))
        # entries are shared, not copied, and reachable by their global id
        assert shards[2][9] is database[9]

    def test_shard_views_are_read_only(self):
        database = GraphDatabase([random_labeled_graph(4, 4, seed=0)])
        shard = database.shard(1)[0]
        with pytest.raises(DatasetError):
            shard.add(random_labeled_graph(4, 4, seed=1))
        with pytest.raises(DatasetError):
            shard.extend([random_labeled_graph(4, 4, seed=2)])

    def test_shard_rejects_foreign_ids_and_bad_counts(self):
        graphs = [random_labeled_graph(4, 4, seed=i) for i in range(4)]
        database = GraphDatabase(graphs)
        first, second = database.shard(2)
        with pytest.raises(DatasetError):
            first[3]  # id 3 lives in the second shard
        assert second[3].graph_id == 3
        with pytest.raises(DatasetError):
            database.shard(0)
        with pytest.raises(DatasetError):
            GraphDatabase().shard(2)

    def test_more_shards_than_graphs_clamps(self):
        database = GraphDatabase([random_labeled_graph(4, 4, seed=i) for i in range(2)])
        shards = database.shard(5)
        assert len(shards) == 2
        assert all(len(shard) == 1 for shard in shards)

    def test_shards_share_parent_label_alphabets(self):
        g1 = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "x"})
        g2 = Graph.from_dicts({0: "C", 1: "D"}, {(0, 1): "y"})
        database = GraphDatabase([g1, g2])
        for shard in database.shard(2):
            assert shard.num_vertex_labels == database.num_vertex_labels
            assert shard.num_edge_labels == database.num_edge_labels


class TestDatabaseCatalog:
    def test_catalog_row_structure(self, small_database, paper_g1):
        catalog = DatabaseCatalog.from_database(small_database, queries=[paper_g1], scale_free=True)
        row = catalog.as_row()
        assert row["Data Set"] == "unit-test"
        assert row["|D|"] == 4
        assert row["|Q|"] == 1
        assert row["Vm"] == 4
        assert row["Scale-free"] == "Yes"

    def test_scale_free_flag_estimated_when_not_forced(self, small_database):
        catalog = DatabaseCatalog.from_database(small_database)
        assert catalog.scale_free in (True, False)


class TestQueryObjects:
    def test_similarity_query_validation(self, triangle):
        with pytest.raises(SearchError):
            SimilarityQuery(triangle, tau_hat=-1)
        with pytest.raises(SearchError):
            SimilarityQuery(triangle, tau_hat=1, gamma=1.5)

    def test_similarity_query_raises_query_error(self, triangle):
        """Invalid thresholds raise the dedicated QueryError (a SearchError)."""
        from repro.exceptions import QueryError

        with pytest.raises(QueryError):
            SimilarityQuery(triangle, tau_hat=-3)
        with pytest.raises(QueryError):
            SimilarityQuery(triangle, tau_hat=1, gamma=-0.1)
        with pytest.raises(QueryError):
            SimilarityQuery(triangle, tau_hat=1, gamma=1.0001)
        with pytest.raises(QueryError):
            SimilarityQuery(triangle, tau_hat=1.5)
        with pytest.raises(QueryError):
            SimilarityQuery(triangle, tau_hat="two")
        with pytest.raises(QueryError):
            SimilarityQuery(triangle, tau_hat=1, gamma="high")

    def test_similarity_query_accepts_boundary_values(self, triangle):
        assert SimilarityQuery(triangle, tau_hat=0, gamma=0.0).gamma == 0.0
        assert SimilarityQuery(triangle, tau_hat=3, gamma=1.0).gamma == 1.0

    def test_similarity_query_normalises_numeric_types(self, triangle):
        """Integral floats / numeric strings are coerced to native numbers."""
        query = SimilarityQuery(triangle, tau_hat=2.0, gamma="0.5")
        assert query.tau_hat == 2 and type(query.tau_hat) is int
        assert query.gamma == 0.5 and type(query.gamma) is float

    def test_query_answer_helpers(self):
        answer = QueryAnswer(method="x", accepted_ids=frozenset({1, 2}), scores={1: 0.9})
        assert answer.size == 2
        assert answer.contains(1)
        assert not answer.contains(3)
        assert answer.score_of(1) == 0.9
        assert answer.score_of(3) is None
