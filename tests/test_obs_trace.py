"""Unit tests for tracing and the slow-query log (repro.obs.trace)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.trace import (
    QueryTrace,
    SlowQueryLog,
    Span,
    Tracer,
    activate,
    activated,
    active_trace,
    deactivate,
)


class TestQueryTrace:
    def test_add_records_spans(self):
        trace = QueryTrace({"tau_hat": 2})
        trace.add("decode", 0.001, depth=0, offset=0.0)
        trace.add("score", 0.004, depth=0, offset=0.001)
        trace.finish(0.005)
        assert [span.name for span in trace.spans] == ["decode", "score"]
        assert trace.total_seconds == pytest.approx(0.005)
        assert trace.stage_seconds() == {
            "decode": pytest.approx(0.001),
            "score": pytest.approx(0.004),
        }

    def test_span_context_manager_times_the_block(self):
        trace = QueryTrace()
        with trace.span("work"):
            time.sleep(0.01)
        trace.finish()
        assert trace.spans[0].seconds >= 0.008
        assert trace.spans[0].offset >= 0.0

    def test_stage_seconds_filters_by_depth(self):
        trace = QueryTrace()
        trace.add("outer", 0.01, depth=0, offset=0.0)
        trace.add("inner", 0.004, depth=1, offset=0.0)
        assert set(trace.stage_seconds(0)) == {"outer"}
        assert set(trace.stage_seconds(None)) == {"outer", "inner"}

    def test_waterfall_coverage(self):
        trace = QueryTrace()
        trace.add("a", 0.006, depth=0, offset=0.0)
        trace.add("b", 0.003, depth=0, offset=0.006)
        trace.add("nested", 0.002, depth=1, offset=0.0)  # must not count
        trace.finish(0.01)
        assert trace.waterfall_coverage() == pytest.approx(0.9)

    def test_graft_shifts_depth(self):
        batch = QueryTrace()
        batch.add("bound_filter", 0.002, depth=0, offset=0.0)
        batch.add("verify", 0.003, depth=1, offset=0.002)
        batch.total_seconds = 0.005
        query = QueryTrace()
        query.graft(batch, depth_shift=2)
        assert [(span.name, span.depth) for span in query.spans] == [
            ("bound_filter", 2),
            ("verify", 3),
        ]

    def test_to_dict_and_render(self):
        trace = QueryTrace({"top_k": 5})
        trace.add("score", 0.002, depth=0, offset=0.0)
        trace.finish(0.002)
        doc = trace.to_dict()
        assert doc["total_ms"] == pytest.approx(2.0)
        assert doc["detail"] == {"top_k": 5}
        assert doc["spans"][0]["name"] == "score"
        rendered = trace.render()
        assert "score" in rendered and "ms" in rendered

    def test_span_repr_and_dict(self):
        span = Span("verify", 0.001, 0.002, depth=2)
        assert span.to_dict()["depth"] == 2
        assert "verify" in repr(span)


class TestTracer:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        assert all(tracer.sample() is not None for _ in range(50))
        assert tracer.seen == 50 and tracer.sampled == 50

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(sample_rate=0.0, seed=0)
        assert all(tracer.sample() is None for _ in range(50))
        assert tracer.sampled == 0

    def test_sampling_fraction_is_near_the_rate(self):
        tracer = Tracer(sample_rate=0.1, seed=123)
        for _ in range(5000):
            tracer.sample()
        # Binomial(5000, 0.1): mean 500, sd ~21 — 6 sigma bounds.
        assert 370 <= tracer.sampled <= 630

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_finished_traces_land_in_the_bounded_ring(self):
        tracer = Tracer(sample_rate=1.0, keep=4, seed=0)
        for index in range(10):
            tracer.sample({"index": index}).finish(0.001)
        assert len(tracer.recent) == 4
        newest = tracer.recent_traces(limit=2)
        assert [doc["detail"]["index"] for doc in newest] == [9, 8]
        assert tracer.as_dict()["retained"] == 4


class TestThreadActiveTrace:
    def test_activate_and_deactivate(self):
        trace = QueryTrace()
        activate(trace)
        try:
            assert active_trace() is trace
        finally:
            deactivate()
        assert active_trace() is None

    def test_activated_restores_previous(self):
        outer, inner = QueryTrace(), QueryTrace()
        activate(outer)
        try:
            with activated(inner):
                assert active_trace() is inner
            assert active_trace() is outer
        finally:
            deactivate()

    def test_active_trace_is_thread_local(self):
        trace = QueryTrace()
        seen_in_thread = []

        def worker():
            seen_in_thread.append(active_trace())

        with activated(trace):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen_in_thread == [None]


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=10.0, capacity=8)
        assert not log.record(0.005)
        assert log.record(0.02, {"tau_hat": 1})
        assert log.total_slow == 1
        assert len(log) == 1

    def test_ring_is_bounded_but_total_keeps_counting(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for index in range(7):
            log.record(0.001 * (index + 1), {"index": index})
        assert len(log) == 3
        assert log.total_slow == 7
        entries = log.entries()
        assert [entry["detail"]["index"] for entry in entries] == [6, 5, 4]

    def test_entry_carries_the_trace_waterfall(self):
        log = SlowQueryLog(threshold_ms=0.0)
        trace = QueryTrace()
        trace.add("score", 0.5, depth=0, offset=0.0)
        trace.finish(0.5)
        log.record(0.5, {"gamma": 0.9}, trace)
        entry = log.entries(limit=1)[0]
        assert entry["trace"]["spans"][0]["name"] == "score"
        assert entry["latency_ms"] == pytest.approx(500.0)
        assert log.as_dict()["total_slow"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
