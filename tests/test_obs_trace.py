"""Unit tests for tracing and the slow-query log (repro.obs.trace)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.trace import (
    QueryTrace,
    SlowQueryLog,
    Span,
    TraceContext,
    Tracer,
    activate,
    activated,
    active_trace,
    deactivate,
    new_span_id,
    new_trace_id,
)


class TestQueryTrace:
    def test_add_records_spans(self):
        trace = QueryTrace({"tau_hat": 2})
        trace.add("decode", 0.001, depth=0, offset=0.0)
        trace.add("score", 0.004, depth=0, offset=0.001)
        trace.finish(0.005)
        assert [span.name for span in trace.spans] == ["decode", "score"]
        assert trace.total_seconds == pytest.approx(0.005)
        assert trace.stage_seconds() == {
            "decode": pytest.approx(0.001),
            "score": pytest.approx(0.004),
        }

    def test_span_context_manager_times_the_block(self):
        trace = QueryTrace()
        with trace.span("work"):
            time.sleep(0.01)
        trace.finish()
        assert trace.spans[0].seconds >= 0.008
        assert trace.spans[0].offset >= 0.0

    def test_stage_seconds_filters_by_depth(self):
        trace = QueryTrace()
        trace.add("outer", 0.01, depth=0, offset=0.0)
        trace.add("inner", 0.004, depth=1, offset=0.0)
        assert set(trace.stage_seconds(0)) == {"outer"}
        assert set(trace.stage_seconds(None)) == {"outer", "inner"}

    def test_waterfall_coverage(self):
        trace = QueryTrace()
        trace.add("a", 0.006, depth=0, offset=0.0)
        trace.add("b", 0.003, depth=0, offset=0.006)
        trace.add("nested", 0.002, depth=1, offset=0.0)  # must not count
        trace.finish(0.01)
        assert trace.waterfall_coverage() == pytest.approx(0.9)

    def test_graft_shifts_depth(self):
        batch = QueryTrace()
        batch.add("bound_filter", 0.002, depth=0, offset=0.0)
        batch.add("verify", 0.003, depth=1, offset=0.002)
        batch.total_seconds = 0.005
        query = QueryTrace()
        query.graft(batch, depth_shift=2)
        assert [(span.name, span.depth) for span in query.spans] == [
            ("bound_filter", 2),
            ("verify", 3),
        ]

    def test_to_dict_and_render(self):
        trace = QueryTrace({"top_k": 5})
        trace.add("score", 0.002, depth=0, offset=0.0)
        trace.finish(0.002)
        doc = trace.to_dict()
        assert doc["total_ms"] == pytest.approx(2.0)
        assert doc["detail"] == {"top_k": 5}
        assert doc["spans"][0]["name"] == "score"
        rendered = trace.render()
        assert "score" in rendered and "ms" in rendered

    def test_span_repr_and_dict(self):
        span = Span("verify", 0.001, 0.002, depth=2)
        assert span.to_dict()["depth"] == 2
        assert "verify" in repr(span)


class TestTraceContext:
    def test_id_generators_shape(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        assert len(trace_id) == 32 and int(trace_id, 16) >= 0
        assert len(span_id) == 16 and int(span_id, 16) >= 0
        assert new_trace_id() != trace_id  # 128-bit collisions don't happen

    def test_traceparent_round_trip(self):
        context = TraceContext(new_trace_id(), new_span_id(), sampled=True)
        parsed = TraceContext.parse(context.to_traceparent())
        assert parsed is not None
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        assert parsed.sampled is True

    def test_unsampled_flag_round_trips(self):
        context = TraceContext(new_trace_id(), new_span_id(), sampled=False)
        assert context.to_traceparent().endswith("-00")
        assert TraceContext.parse(context.to_traceparent()).sampled is False

    @pytest.mark.parametrize(
        "value",
        [
            None,
            42,
            "",
            "not-a-traceparent",
            "00-abc-def-01",  # wrong lengths
            "00" + "-" + "g" * 32 + "-" + "0" * 15 + "1" + "-01",  # non-hex
            "ff-" + "a" * 32 + "-" + "b" * 16 + "-01",  # reserved version
            "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
            "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
            "00-" + "a" * 32 + "-" + "b" * 16 + "-01-extra",
        ],
    )
    def test_malformed_values_parse_to_none(self, value):
        assert TraceContext.parse(value) is None

    def test_unknown_future_version_is_accepted(self):
        parsed = TraceContext.parse("42-" + "a" * 32 + "-" + "b" * 16 + "-01")
        assert parsed is not None and parsed.sampled is True

    def test_root_trace_generates_ids(self):
        trace = QueryTrace()
        assert len(trace.trace_id) == 32
        assert len(trace.span_id) == 16
        assert trace.parent_span_id is None

    def test_joined_trace_inherits_trace_id_and_parent(self):
        root = QueryTrace()
        joined = QueryTrace(context=root.context())
        assert joined.trace_id == root.trace_id
        assert joined.parent_span_id == root.span_id
        assert joined.span_id != root.span_id
        doc = joined.to_dict()
        assert doc["trace_id"] == root.trace_id
        assert doc["parent_span_id"] == root.span_id

    def test_span_tags_survive_to_dict_and_graft(self):
        trace = QueryTrace()
        trace.add("attempt", 0.001, depth=1, offset=0.0, tags={"attempt": 2, "outcome": "won"})
        trace.add("plain", 0.001, depth=0, offset=0.0)
        docs = {span["name"]: span for span in trace.to_dict()["spans"]}
        assert docs["attempt"]["tags"] == {"attempt": 2, "outcome": "won"}
        assert "tags" not in docs["plain"]
        target = QueryTrace()
        target.graft(trace, depth_shift=1)
        tagged = [span for span in target.spans if span.name == "attempt"][0]
        assert tagged.tags == {"attempt": 2, "outcome": "won"}
        assert tagged.tags is not trace.spans[0].tags  # copied, not shared


class TestContextSampling:
    def test_sampled_context_always_joins(self):
        tracer = Tracer(sample_rate=0.0, seed=0)  # local rate would never sample
        context = TraceContext(new_trace_id(), new_span_id(), sampled=True)
        trace = tracer.sample(context=context)
        assert trace is not None
        assert trace.trace_id == context.trace_id
        assert tracer.joined == 1 and tracer.sampled == 1

    def test_unsampled_context_never_joins(self):
        tracer = Tracer(sample_rate=1.0, seed=0)  # local rate would always sample
        context = TraceContext(new_trace_id(), new_span_id(), sampled=False)
        assert tracer.sample(context=context) is None
        assert tracer.joined == 0 and tracer.sampled == 0

    def test_find_returns_matching_retained_traces(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        root = tracer.sample({"hop": "client"})
        root.finish(0.001)
        joined = tracer.sample({"hop": "server"}, context=root.context())
        joined.finish(0.001)
        other = tracer.sample({"hop": "unrelated"})
        other.finish(0.001)
        matches = tracer.find(root.trace_id)
        assert [doc["detail"]["hop"] for doc in matches] == ["client", "server"]
        assert tracer.find("f" * 32) == []

    def test_as_dict_reports_joined(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        tracer.sample()
        assert tracer.as_dict()["joined"] == 0


class TestTracer:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(sample_rate=1.0, seed=0)
        assert all(tracer.sample() is not None for _ in range(50))
        assert tracer.seen == 50 and tracer.sampled == 50

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(sample_rate=0.0, seed=0)
        assert all(tracer.sample() is None for _ in range(50))
        assert tracer.sampled == 0

    def test_sampling_fraction_is_near_the_rate(self):
        tracer = Tracer(sample_rate=0.1, seed=123)
        for _ in range(5000):
            tracer.sample()
        # Binomial(5000, 0.1): mean 500, sd ~21 — 6 sigma bounds.
        assert 370 <= tracer.sampled <= 630

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)

    def test_finished_traces_land_in_the_bounded_ring(self):
        tracer = Tracer(sample_rate=1.0, keep=4, seed=0)
        for index in range(10):
            tracer.sample({"index": index}).finish(0.001)
        assert len(tracer.recent) == 4
        newest = tracer.recent_traces(limit=2)
        assert [doc["detail"]["index"] for doc in newest] == [9, 8]
        assert tracer.as_dict()["retained"] == 4


class TestThreadActiveTrace:
    def test_activate_and_deactivate(self):
        trace = QueryTrace()
        activate(trace)
        try:
            assert active_trace() is trace
        finally:
            deactivate()
        assert active_trace() is None

    def test_activated_restores_previous(self):
        outer, inner = QueryTrace(), QueryTrace()
        activate(outer)
        try:
            with activated(inner):
                assert active_trace() is inner
            assert active_trace() is outer
        finally:
            deactivate()

    def test_active_trace_is_thread_local(self):
        trace = QueryTrace()
        seen_in_thread = []

        def worker():
            seen_in_thread.append(active_trace())

        with activated(trace):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen_in_thread == [None]


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_ms=10.0, capacity=8)
        assert not log.record(0.005)
        assert log.record(0.02, {"tau_hat": 1})
        assert log.total_slow == 1
        assert len(log) == 1

    def test_ring_is_bounded_but_total_keeps_counting(self):
        log = SlowQueryLog(threshold_ms=0.0, capacity=3)
        for index in range(7):
            log.record(0.001 * (index + 1), {"index": index})
        assert len(log) == 3
        assert log.total_slow == 7
        entries = log.entries()
        assert [entry["detail"]["index"] for entry in entries] == [6, 5, 4]

    def test_entry_carries_the_trace_waterfall(self):
        log = SlowQueryLog(threshold_ms=0.0)
        trace = QueryTrace()
        trace.add("score", 0.5, depth=0, offset=0.0)
        trace.finish(0.5)
        log.record(0.5, {"gamma": 0.9}, trace)
        entry = log.entries(limit=1)[0]
        assert entry["trace"]["spans"][0]["name"] == "score"
        assert entry["latency_ms"] == pytest.approx(500.0)
        assert log.as_dict()["total_slow"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_ms=-1)
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
