"""Tests for the exact A* GED computation."""

import pytest

from repro.baselines.ged_exact import AStarGED, exact_ged
from repro.exceptions import SearchError
from repro.graphs.edit_ops import EditPath, RelabelEdge, RelabelVertex
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph


class TestExactGED:
    def test_identical_graphs(self, triangle):
        assert exact_ged(triangle, triangle.copy()) == 0

    def test_paper_example1(self, paper_g1, paper_g2):
        """Example 1: GED(G1, G2) = 3 (delete edge, add vertex, add edge)."""
        assert exact_ged(paper_g1, paper_g2) == 3

    def test_paper_example4(self, example4_g1, example4_g2):
        """Example 4: GED = 2 (two edge relabels or two vertex relabels)."""
        assert exact_ged(example4_g1, example4_g2) == 2

    def test_single_vertex_relabel(self, triangle):
        other = triangle.copy()
        other.relabel_vertex(0, "Z")
        assert exact_ged(triangle, other) == 1

    def test_single_edge_relabel(self, triangle):
        other = triangle.copy()
        other.relabel_edge(0, 1, "q")
        assert exact_ged(triangle, other) == 1

    def test_single_edge_deletion(self, triangle):
        other = triangle.copy()
        other.remove_edge(0, 1)
        assert exact_ged(triangle, other) == 1

    def test_vertex_insertion_with_edge(self, triangle):
        other = triangle.copy()
        other.add_vertex(3, "D")
        other.add_edge(3, 0, "w")
        assert exact_ged(triangle, other) == 2

    def test_symmetry(self, paper_g1, paper_g2):
        assert exact_ged(paper_g1, paper_g2) == exact_ged(paper_g2, paper_g1)

    def test_empty_graphs(self):
        assert exact_ged(Graph(), Graph()) == 0

    def test_empty_versus_triangle(self, triangle):
        # three vertex insertions + three edge insertions
        assert exact_ged(Graph(), triangle) == 6

    def test_ged_upper_bounded_by_applied_edit_path_length(self, triangle):
        path = EditPath([RelabelVertex(0, "Z"), RelabelEdge(1, 2, "q")])
        target = path.apply_to(triangle)
        assert exact_ged(triangle, target) <= len(path)

    def test_ged_between_random_small_graphs_is_symmetric(self):
        g1 = random_labeled_graph(5, 6, seed=1)
        g2 = random_labeled_graph(5, 6, seed=2)
        assert exact_ged(g1, g2) == exact_ged(g2, g1)

    def test_max_vertices_guard(self):
        big = random_labeled_graph(20, 30, seed=0)
        with pytest.raises(SearchError):
            exact_ged(big, big.copy())

    def test_expansion_budget_guard(self):
        g1 = random_labeled_graph(9, 16, seed=3)
        g2 = random_labeled_graph(9, 16, seed=4)
        with pytest.raises(SearchError):
            exact_ged(g1, g2, max_expansions=5)

    def test_upper_bound_prunes_but_preserves_answer(self, paper_g1, paper_g2):
        assert exact_ged(paper_g1, paper_g2, upper_bound=10) == 3


class TestAStarEstimator:
    def test_wraps_exact_value(self, paper_g1, paper_g2):
        estimator = AStarGED()
        assert estimator.estimate(paper_g1, paper_g2) == 3.0
        assert estimator(paper_g1, paper_g2) == 3.0

    def test_respects_vertex_limit(self):
        estimator = AStarGED(max_vertices=4)
        big = random_labeled_graph(6, 8, seed=0)
        with pytest.raises(SearchError):
            estimator.estimate(big, big.copy())

    def test_method_name(self):
        assert AStarGED().method_name == "A*-exact"
