"""Tests for graph serialisation (JSON documents, JSON-lines, edge lists)."""

import json

import pytest

from repro.exceptions import DatasetError
from repro.graphs import io as graph_io
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph


class TestJsonDocuments:
    def test_round_trip_single_graph(self, triangle):
        text = graph_io.dumps(triangle)
        restored = graph_io.loads(text)
        assert restored == triangle
        assert restored.name == "triangle"

    def test_integer_vertex_ids_survive(self):
        graph = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "x"})
        restored = graph_io.loads(graph_io.dumps(graph))
        assert restored.has_vertex(0)
        assert restored.has_edge(0, 1)

    def test_string_vertex_ids_survive(self, paper_g1):
        restored = graph_io.loads(graph_io.dumps(paper_g1))
        assert restored == paper_g1

    def test_dumps_is_valid_json(self, triangle):
        document = json.loads(graph_io.dumps(triangle))
        assert set(document) == {"name", "vertices", "edges"}

    def test_missing_keys_raise(self):
        with pytest.raises(DatasetError):
            graph_io.graph_from_dict({"vertices": {}})

    def test_malformed_edge_entry_raises(self):
        with pytest.raises(DatasetError):
            graph_io.graph_from_dict({"vertices": {"0": "A"}, "edges": [["0", "1"]]})

    def test_save_and_load_file(self, tmp_path, triangle):
        path = tmp_path / "graph.json"
        graph_io.save_graph(triangle, path)
        assert graph_io.load_graph(path) == triangle


class TestCollections:
    def test_round_trip_collection(self, tmp_path):
        graphs = [random_labeled_graph(8, 10, seed=i, name=f"g{i}") for i in range(5)]
        path = tmp_path / "graphs.jsonl"
        graph_io.save_collection(graphs, path)
        restored = graph_io.load_collection(path)
        assert restored == graphs

    def test_blank_lines_are_skipped(self, tmp_path, triangle):
        path = tmp_path / "graphs.jsonl"
        path.write_text(graph_io.dumps(triangle) + "\n\n\n", encoding="utf-8")
        assert len(graph_io.load_collection(path)) == 1

    def test_corrupt_line_reports_line_number(self, tmp_path):
        path = tmp_path / "graphs.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        with pytest.raises(DatasetError, match="1"):
            graph_io.load_collection(path)


class TestEdgeListFormat:
    def test_round_trip(self, triangle):
        text = graph_io.to_edge_list(triangle)
        restored = graph_io.from_edge_list(text, name="triangle")
        assert restored == triangle

    def test_comments_and_blank_lines_ignored(self):
        text = "# comment\n\nv 0 A\nv 1 B\ne 0 1 x\n"
        graph = graph_io.from_edge_list(text)
        assert graph.num_vertices == 2
        assert graph.edge_label(0, 1) == "x"

    def test_malformed_line_raises(self):
        with pytest.raises(DatasetError):
            graph_io.from_edge_list("q 1 2\n")

    def test_labels_with_spaces(self):
        text = "v 0 ring carbon\nv 1 ring carbon\ne 0 1 double bond\n"
        graph = graph_io.from_edge_list(text)
        assert graph.vertex_label(0) == "ring carbon"
        assert graph.edge_label(0, 1) == "double bond"
