"""Regression tests for the bounded latency ring in ServingStats.

A long-running server records millions of query latencies; before the ring
the per-query list grew without bound — a slow memory leak whose percentile
calls also got slower forever.  These tests pin the fix: memory stays fixed
after 100k records, percentiles track *recent* traffic, and the executor
and merge paths keep working on the ring.
"""

from __future__ import annotations

import sys

import pytest

from repro.serving import ServingStats


class TestBoundedLatencyRing:
    def test_memory_stays_bounded_after_100k_records(self):
        stats = ServingStats(latency_window=1024)
        for index in range(100_000):
            stats.record_latency(index * 1e-6)
        assert stats.num_queries == 100_000
        assert len(stats.latencies) == 1024
        # The ring itself is the only latency storage: its footprint is the
        # window, not the traffic volume.
        assert sys.getsizeof(stats.latencies) < 1024 * 64

    def test_percentiles_reflect_recent_traffic(self):
        stats = ServingStats(latency_window=1000)
        # An old regime of 1-second latencies...
        for _ in range(50_000):
            stats.record_latency(1.0)
        # ...followed by a full window of 1 ms traffic: every old sample has
        # been evicted, so the percentiles must describe the new regime.
        for _ in range(1000):
            stats.record_latency(0.001)
        assert stats.p50_latency == 0.001
        assert stats.p99_latency == 0.001
        assert stats.mean_latency == pytest.approx(0.001)

    def test_default_window_applies(self):
        stats = ServingStats()
        for _ in range(ServingStats.DEFAULT_LATENCY_WINDOW + 500):
            stats.record_latency(0.01)
        assert len(stats.latencies) == ServingStats.DEFAULT_LATENCY_WINDOW

    def test_list_input_still_accepted(self):
        stats = ServingStats(num_queries=2, latencies=[0.1, 0.2])
        assert stats.p50_latency == 0.1
        assert list(stats.latencies) == [0.1, 0.2]

    def test_merge_respects_the_ring(self):
        a = ServingStats(latency_window=4, latencies=[0.1, 0.2, 0.3, 0.4])
        b = ServingStats(latencies=[0.5, 0.6])
        a.merge(b)
        assert list(a.latencies) == [0.3, 0.4, 0.5, 0.6]
        assert a.percentile(100) == 0.6

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            ServingStats(latency_window=0)

    def test_as_dict_reports_window_and_samples(self):
        stats = ServingStats(latency_window=8)
        for _ in range(20):
            stats.record_latency(0.002)
        summary = stats.as_dict()
        assert summary["latency_window"] == 8
        assert summary["latency_samples"] == 8
        assert summary["num_queries"] == 20
