"""Unit tests for the sampling profiler (repro.obs.profile)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, _frame_name


def _busy_thread(stop_event, name="sentinel_workload"):
    def sentinel_workload():
        while not stop_event.is_set():
            sum(range(200))

    thread = threading.Thread(target=sentinel_workload, name=name)
    thread.start()
    return thread


class TestLifecycle:
    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval_ms=5.0)
        assert profiler.start() is True
        assert profiler.start() is False  # already running
        assert profiler.running
        assert profiler.stop() is True
        assert profiler.stop() is False  # already stopped
        assert not profiler.running

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_ms=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_depth=0)
        with pytest.raises(ValueError):
            SamplingProfiler(max_stacks=0)

    def test_as_dict_shape(self):
        profiler = SamplingProfiler(interval_ms=7.0, max_depth=8, max_stacks=100)
        doc = profiler.as_dict()
        assert doc["running"] is False
        assert doc["interval_ms"] == pytest.approx(7.0)
        assert doc["samples"] == 0
        assert doc["max_depth"] == 8
        assert doc["max_stacks"] == 100


class TestSampling:
    def test_sample_once_captures_live_threads(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = SamplingProfiler()
        try:
            sampled = profiler._sample_once()
            assert sampled >= 1
            assert profiler.samples == sampled
        finally:
            stop.set()
            thread.join()

    def test_collapsed_output_is_root_first_with_counts(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = SamplingProfiler()
        try:
            for _ in range(3):
                profiler._sample_once()
        finally:
            stop.set()
            thread.join()
        text = profiler.collapsed()
        assert text
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert ";" in stack or ":" in stack
        # The busy thread's leaf must appear in some stack, root-first means
        # the thread bootstrap frame comes before the workload frame.
        workload_lines = [ln for ln in text.splitlines() if "sentinel_workload" in ln]
        assert workload_lines

    def test_running_profiler_accumulates(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = SamplingProfiler(interval_ms=1.0)
        try:
            profiler.start()
            deadline = time.time() + 2.0
            while profiler.samples == 0 and time.time() < deadline:
                time.sleep(0.01)
        finally:
            profiler.stop()
            stop.set()
            thread.join()
        assert profiler.samples > 0
        assert profiler.collapsed()

    def test_reset_clears_aggregates(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = SamplingProfiler()
        try:
            profiler._sample_once()
        finally:
            stop.set()
            thread.join()
        assert profiler.samples > 0
        profiler.reset()
        assert profiler.samples == 0
        assert profiler.collapsed() == ""

    def test_max_depth_truncates_root_frames(self):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = SamplingProfiler(max_depth=2)
        try:
            profiler._sample_once()
        finally:
            stop.set()
            thread.join()
        truncated = [
            stack for stack in profiler._stacks if stack and stack[0] == "<truncated>"
        ]
        assert truncated  # every Python thread is deeper than 2 frames
        assert all(len(stack) <= 3 for stack in profiler._stacks)

    def test_max_stacks_overflows_into_sentinel(self):
        profiler = SamplingProfiler(max_stacks=1)
        with profiler._lock:
            pass  # touch the lock so the direct mutation below mirrors _sample_once
        profiler._stacks[("a.py:f",)] = 1
        # Simulate what _sample_once does when the table is full.
        stop = threading.Event()
        thread = _busy_thread(stop)
        try:
            profiler._sample_once()
        finally:
            stop.set()
            thread.join()
        assert ("<overflow>",) in profiler._stacks
        assert profiler.overflowed >= 1

    def test_dump_writes_collapsed_file(self, tmp_path):
        stop = threading.Event()
        thread = _busy_thread(stop)
        profiler = SamplingProfiler()
        try:
            profiler._sample_once()
        finally:
            stop.set()
            thread.join()
        path = tmp_path / "profile.collapsed"
        lines = profiler.dump(path)
        content = path.read_text()
        assert lines == len(content.splitlines())
        assert lines >= 1

    def test_frame_name_format(self):
        frame = next(iter(__import__("sys")._current_frames().values()))
        name = _frame_name(frame)
        assert ":" in name and "/" not in name
