"""Shared fixtures: the paper's running-example graphs and small datasets."""

from __future__ import annotations

import pytest

from repro.graphs.graph import Graph


@pytest.fixture
def paper_g1() -> Graph:
    """Graph G1 of Figure 1 (Example 1/2 of the paper)."""
    return Graph.from_dicts(
        {"v1": "A", "v2": "C", "v3": "B"},
        {("v1", "v2"): "y", ("v1", "v3"): "y", ("v2", "v3"): "z"},
        name="G1",
    )


@pytest.fixture
def paper_g2() -> Graph:
    """Graph G2 of Figure 1 (Example 1/2 of the paper)."""
    return Graph.from_dicts(
        {"u1": "B", "u2": "A", "u3": "A", "u4": "C"},
        {("u1", "u3"): "x", ("u1", "u4"): "z", ("u2", "u4"): "y"},
        name="G2",
    )


@pytest.fixture
def example4_g1() -> Graph:
    """Graph G1' of Figure 4 (Example 4), without the virtual edges."""
    return Graph.from_dicts(
        {"v1": "A", "v2": "B", "v3": "C"},
        {("v1", "v2"): "x", ("v1", "v3"): "y"},
        name="Example4-G1",
    )


@pytest.fixture
def example4_g2() -> Graph:
    """Graph G2' of Figure 4 (Example 4), without the virtual edges."""
    return Graph.from_dicts(
        {"u1": "A", "u2": "B", "u3": "C"},
        {("u1", "u2"): "y", ("u1", "u3"): "x"},
        name="Example4-G2",
    )


@pytest.fixture
def triangle() -> Graph:
    """A small labelled triangle used by many structural tests."""
    return Graph.from_dicts(
        {0: "A", 1: "B", 2: "C"},
        {(0, 1): "x", (1, 2): "y", (0, 2): "z"},
        name="triangle",
    )


@pytest.fixture
def path_graph() -> Graph:
    """A labelled path on four vertices."""
    return Graph.from_dicts(
        {0: "A", 1: "B", 2: "A", 3: "C"},
        {(0, 1): "x", (1, 2): "x", (2, 3): "y"},
        name="path4",
    )


@pytest.fixture(scope="session")
def small_fingerprint_dataset():
    """A tiny Fingerprint-like dataset shared by the integration tests."""
    from repro.datasets import make_fingerprint_like

    return make_fingerprint_like(num_templates=6, family_size=6, queries_per_family=1, seed=3)


@pytest.fixture(scope="session")
def fitted_search(small_fingerprint_dataset):
    """A fitted GBDA search over the tiny Fingerprint-like dataset."""
    from repro.core.search import GBDASearch
    from repro.db.database import GraphDatabase

    database = GraphDatabase(small_fingerprint_dataset.database_graphs, name="Fingerprint")
    return GBDASearch(database, max_tau=6, num_prior_pairs=200, seed=1).fit()
