"""Tests for the IAM GXL/CXL parser."""

import pytest

from repro.datasets.iam import load_iam_directory, parse_cxl_index, parse_gxl, parse_gxl_file
from repro.exceptions import DatasetError

SAMPLE_GXL = """<?xml version="1.0" encoding="UTF-8"?>
<gxl>
  <graph id="molecule_1" edgeids="false" edgemode="undirected">
    <node id="_0"><attr name="chem"><string>C</string></attr></node>
    <node id="_1"><attr name="chem"><string>N</string></attr></node>
    <node id="_2"><attr name="chem"><string>O</string></attr></node>
    <edge from="_0" to="_1"><attr name="valence"><int>1</int></attr></edge>
    <edge from="_1" to="_2"><attr name="valence"><int>2</int></attr></edge>
  </graph>
</gxl>
"""

SAMPLE_GXL_NO_PREFERRED = """<gxl>
  <graph id="g">
    <node id="a"><attr name="x"><float>1.5</float></attr><attr name="y"><float>2.5</float></attr></node>
    <node id="b"><attr name="x"><float>3.0</float></attr><attr name="y"><float>2.5</float></attr></node>
    <edge from="a" to="b"/>
    <edge from="b" to="b"/>
  </graph>
</gxl>
"""

SAMPLE_CXL = """<?xml version="1.0"?>
<GraphCollection>
  <fingerprints base="/" classmodel="henry">
    <print file="molecule_1.gxl" class="active"/>
    <print file="molecule_2.gxl" class="inactive"/>
  </fingerprints>
</GraphCollection>
"""


class TestGxlParsing:
    def test_nodes_edges_and_labels(self):
        graph = parse_gxl(SAMPLE_GXL)
        assert graph.name == "molecule_1"
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
        assert graph.vertex_label("_0") == "C"
        assert graph.edge_label("_0", "_1") == "1"

    def test_composite_labels_when_no_preferred_attribute(self):
        graph = parse_gxl(SAMPLE_GXL_NO_PREFERRED)
        assert graph.vertex_label("a") == "x=1.5|y=2.5"
        assert graph.num_edges == 1, "self-loops are dropped"
        assert graph.edge_label("a", "b") == "node" or graph.edge_label("a", "b") != ""

    def test_invalid_xml_rejected(self):
        with pytest.raises(DatasetError):
            parse_gxl("<gxl><graph>")

    def test_document_without_graph_rejected(self):
        with pytest.raises(DatasetError):
            parse_gxl("<gxl></gxl>")

    def test_node_without_id_rejected(self):
        with pytest.raises(DatasetError):
            parse_gxl("<gxl><graph><node/></graph></gxl>")

    def test_edge_without_endpoints_rejected(self):
        with pytest.raises(DatasetError):
            parse_gxl('<gxl><graph><node id="a"/><edge to="a"/></graph></gxl>')

    def test_parse_file_uses_stem_as_name(self, tmp_path):
        path = tmp_path / "compound42.gxl"
        path.write_text(SAMPLE_GXL, encoding="utf-8")
        graph = parse_gxl_file(path)
        assert graph.name == "compound42"


class TestCxlAndDirectories:
    def test_cxl_index_lists_files(self, tmp_path):
        path = tmp_path / "train.cxl"
        path.write_text(SAMPLE_CXL, encoding="utf-8")
        assert parse_cxl_index(path) == ["molecule_1.gxl", "molecule_2.gxl"]

    def test_invalid_cxl_rejected(self, tmp_path):
        path = tmp_path / "broken.cxl"
        path.write_text("<GraphCollection>", encoding="utf-8")
        with pytest.raises(DatasetError):
            parse_cxl_index(path)

    def test_load_directory_without_index(self, tmp_path):
        for name in ("a.gxl", "b.gxl"):
            (tmp_path / name).write_text(SAMPLE_GXL, encoding="utf-8")
        graphs = load_iam_directory(tmp_path)
        assert len(graphs) == 2

    def test_load_directory_with_index_and_limit(self, tmp_path):
        (tmp_path / "molecule_1.gxl").write_text(SAMPLE_GXL, encoding="utf-8")
        (tmp_path / "molecule_2.gxl").write_text(SAMPLE_GXL, encoding="utf-8")
        index = tmp_path / "train.cxl"
        index.write_text(SAMPLE_CXL, encoding="utf-8")
        graphs = load_iam_directory(tmp_path, index_file=index, limit=1)
        assert len(graphs) == 1

    def test_missing_indexed_file_rejected(self, tmp_path):
        index = tmp_path / "train.cxl"
        index.write_text(SAMPLE_CXL, encoding="utf-8")
        with pytest.raises(DatasetError):
            load_iam_directory(tmp_path, index_file=index)

    def test_non_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_iam_directory(tmp_path / "missing")
