"""Unit tests for the labeled simple undirected graph data structure."""

import pytest

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateVertexError,
    InvalidLabelError,
    MissingEdgeError,
    MissingVertexError,
    SelfLoopError,
)
from repro.graphs.graph import Graph, VIRTUAL_LABEL, edge_key, union_label_alphabets


class TestVertexOperations:
    def test_add_and_query_vertex(self):
        graph = Graph()
        graph.add_vertex("v1", "A")
        assert graph.has_vertex("v1")
        assert graph.vertex_label("v1") == "A"
        assert graph.num_vertices == 1

    def test_add_duplicate_vertex_raises(self):
        graph = Graph()
        graph.add_vertex("v1", "A")
        with pytest.raises(DuplicateVertexError):
            graph.add_vertex("v1", "B")

    def test_virtual_label_rejected_on_ordinary_vertices(self):
        graph = Graph()
        with pytest.raises(InvalidLabelError):
            graph.add_vertex("v1", VIRTUAL_LABEL)

    def test_virtual_label_allowed_when_requested(self):
        graph = Graph()
        graph.add_vertex("v1", VIRTUAL_LABEL, allow_virtual=True)
        assert graph.vertex_label("v1") == VIRTUAL_LABEL

    def test_missing_vertex_label_raises(self):
        graph = Graph()
        with pytest.raises(MissingVertexError):
            graph.vertex_label("nope")

    def test_relabel_vertex(self):
        graph = Graph()
        graph.add_vertex("v1", "A")
        graph.relabel_vertex("v1", "B")
        assert graph.vertex_label("v1") == "B"

    def test_relabel_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(MissingVertexError):
            graph.relabel_vertex("v1", "B")

    def test_remove_isolated_vertex(self):
        graph = Graph()
        graph.add_vertex("v1", "A")
        graph.remove_vertex("v1")
        assert not graph.has_vertex("v1")

    def test_remove_non_isolated_vertex_rejected(self, triangle):
        with pytest.raises(SelfLoopError):
            triangle.remove_vertex(0)

    def test_remove_missing_vertex_raises(self):
        graph = Graph()
        with pytest.raises(MissingVertexError):
            graph.remove_vertex("v1")

    def test_vertex_iteration(self, triangle):
        assert sorted(triangle.vertices()) == [0, 1, 2]
        assert dict(triangle.vertex_items()) == {0: "A", 1: "B", 2: "C"}


class TestEdgeOperations:
    def test_add_and_query_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 0), "edges are undirected"
        assert triangle.edge_label(0, 1) == "x"
        assert triangle.edge_label(1, 0) == "x"
        assert triangle.num_edges == 3

    def test_add_edge_missing_endpoint_raises(self):
        graph = Graph()
        graph.add_vertex(0, "A")
        with pytest.raises(MissingVertexError):
            graph.add_edge(0, 1, "x")

    def test_self_loop_rejected(self):
        graph = Graph()
        graph.add_vertex(0, "A")
        with pytest.raises(SelfLoopError):
            graph.add_edge(0, 0, "x")

    def test_duplicate_edge_rejected(self, triangle):
        with pytest.raises(DuplicateEdgeError):
            triangle.add_edge(1, 0, "w")

    def test_virtual_edge_label_rejected(self):
        graph = Graph()
        graph.add_vertex(0, "A")
        graph.add_vertex(1, "B")
        with pytest.raises(InvalidLabelError):
            graph.add_edge(0, 1, VIRTUAL_LABEL)

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.num_edges == 2

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(MissingEdgeError):
            triangle.remove_edge(0, 99)

    def test_relabel_edge_updates_adjacency(self, triangle):
        triangle.relabel_edge(0, 1, "w")
        assert triangle.edge_label(0, 1) == "w"
        assert list(triangle.incident_edge_labels(0)).count("w") == 1

    def test_relabel_missing_edge_raises(self, triangle):
        with pytest.raises(MissingEdgeError):
            triangle.relabel_edge(0, 99, "w")

    def test_edge_key_is_order_independent(self):
        assert edge_key(1, 2) == edge_key(2, 1)


class TestStructureQueries:
    def test_degree_and_average_degree(self, triangle, path_graph):
        assert triangle.degree(0) == 2
        assert triangle.average_degree() == pytest.approx(2.0)
        assert path_graph.degree(0) == 1
        assert path_graph.degree(1) == 2
        assert path_graph.average_degree() == pytest.approx(1.5)

    def test_max_degree(self, path_graph):
        assert path_graph.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_incident_edge_labels(self, triangle):
        assert sorted(triangle.incident_edge_labels(0)) == ["x", "z"]

    def test_neighbors(self, path_graph):
        assert sorted(path_graph.neighbors(1)) == [0, 2]

    def test_connected_components(self):
        graph = Graph()
        for v in range(4):
            graph.add_vertex(v, "A")
        graph.add_edge(0, 1, "x")
        components = graph.connected_components()
        assert len(components) == 3
        assert not graph.is_connected()

    def test_empty_graph_is_connected(self):
        assert Graph().is_connected()

    def test_label_sets(self, triangle):
        assert triangle.vertex_label_set() == frozenset({"A", "B", "C"})
        assert triangle.edge_label_set() == frozenset({"x", "y", "z"})

    def test_union_label_alphabets(self, triangle, path_graph):
        vertex_labels, edge_labels = union_label_alphabets([triangle, path_graph])
        assert vertex_labels == frozenset({"A", "B", "C"})
        assert edge_labels == frozenset({"x", "y", "z"})


class TestCopyAndEquality:
    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.relabel_vertex(0, "Z")
        assert triangle.vertex_label(0) == "A"
        assert clone.vertex_label(0) == "Z"

    def test_identical_graphs_compare_equal(self, triangle):
        assert triangle == triangle.copy()

    def test_different_labels_compare_unequal(self, triangle):
        other = triangle.copy()
        other.relabel_edge(0, 1, "w")
        assert triangle != other

    def test_equality_with_non_graph(self, triangle):
        assert triangle != 42

    def test_dunder_protocols(self, triangle):
        assert len(triangle) == 3
        assert 0 in triangle
        assert sorted(iter(triangle)) == [0, 1, 2]
        assert "Graph" in repr(triangle)

    def test_from_dicts_round_trip(self):
        graph = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "x"}, name="g")
        assert graph.num_vertices == 2
        assert graph.edge_label(0, 1) == "x"
        assert graph.name == "g"
