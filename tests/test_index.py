"""Edge-case tests for the branch inverted index (repro.db.index)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.gbd import graph_branch_distance
from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph


@pytest.fixture
def small_database(triangle, path_graph):
    return GraphDatabase([triangle, path_graph], name="index-small")


class TestEdgeCases:
    def test_empty_query_graph(self, small_database):
        """An empty query shares nothing; every GBD equals |V_G|."""
        index = BranchInvertedIndex(small_database)
        empty = Graph(name="empty")
        assert index.intersection_sizes(empty) == {}
        gbds = index.gbd_all(empty)
        for entry in small_database:
            assert gbds[entry.graph_id] == entry.num_vertices
            assert gbds[entry.graph_id] == graph_branch_distance(empty, entry.graph)

    def test_query_sharing_zero_branches(self, small_database):
        """Disjoint label alphabets → zero intersections, GBD = max(|V_Q|, |V_G|)."""
        index = BranchInvertedIndex(small_database)
        stranger = Graph.from_dicts(
            {0: "Q1", 1: "Q2", 2: "Q3", 3: "Q1"},
            {(0, 1): "qq", (1, 2): "qq", (2, 3): "qq"},
            name="stranger",
        )
        assert index.intersection_sizes(stranger) == {}
        gbds = index.gbd_all(stranger)
        for entry in small_database:
            assert gbds[entry.graph_id] == max(stranger.num_vertices, entry.num_vertices)
        assert index.candidates_by_gbd_bound(stranger, 1) == []

    def test_gbd_all_agrees_with_pairwise_on_random_graphs(self):
        rng = random.Random(61)
        graphs = [
            random_labeled_graph(rng.randint(3, 9), rng.randint(2, 12), seed=rng)
            for _ in range(25)
        ]
        database = GraphDatabase(graphs)
        index = BranchInvertedIndex(database)
        for _ in range(10):
            query = random_labeled_graph(rng.randint(2, 10), rng.randint(1, 14), seed=rng)
            gbds = index.gbd_all(query)
            dense = index.gbd_array(query)
            for entry in database:
                expected = graph_branch_distance(query, entry.graph)
                assert gbds[entry.graph_id] == expected
                assert dense[entry.graph_id] == expected

    def test_gbd_array_is_dense_and_integer(self, small_database, triangle):
        index = BranchInvertedIndex(small_database)
        dense = index.gbd_array(triangle)
        assert isinstance(dense, np.ndarray)
        assert dense.shape == (len(small_database),)
        assert dense.dtype == np.int64
        assert dense[0] == 0  # the triangle itself is stored at id 0


class TestIncrementalConsistency:
    def test_postings_follow_database_additions(self, small_database, triangle):
        """Graphs added after construction must be indexed (staleness fix)."""
        index = BranchInvertedIndex(small_database)
        assert index.num_indexed_graphs == 2

        new_id = small_database.add(triangle.copy(name="late-triangle"))
        assert index.num_indexed_graphs == 3
        gbds = index.gbd_all(triangle)
        assert gbds[new_id] == 0
        assert new_id in index.candidates_by_gbd_bound(triangle, 0)

    def test_gbd_array_tracks_additions(self, small_database, triangle):
        index = BranchInvertedIndex(small_database)
        before = index.gbd_array(triangle)
        new_id = small_database.add(triangle.copy(name="late"))
        after = index.gbd_array(triangle)
        assert len(after) == len(before) + 1
        assert after[new_id] == 0

    def test_pruning_search_sees_added_graphs(self):
        rng = random.Random(67)
        graphs = [
            random_labeled_graph(rng.randint(4, 7), rng.randint(3, 9), seed=rng)
            for _ in range(15)
        ]
        database = GraphDatabase(graphs)
        search = GBDASearch(
            database, max_tau=3, num_prior_pairs=60, seed=5, use_index_pruning=True
        ).fit()
        base = graphs[0]
        new_id = database.add(base.copy(name="late-duplicate"))
        result = search.query(SimilarityQuery(base, 2, 0.5))
        assert new_id in result.gbd_values
        assert result.gbd_values[new_id] == 0

    def test_unsubscribe_detaches_hook(self, small_database, triangle):
        index = BranchInvertedIndex(small_database)
        small_database.unsubscribe(index._on_graph_added)
        small_database.add(triangle.copy(name="late"))
        assert index.num_indexed_graphs == 2
        # unsubscribing twice is a harmless no-op
        small_database.unsubscribe(index._on_graph_added)

    def test_dropped_index_does_not_leak_subscription(self, small_database, triangle):
        """Discarded indexes must be collectable and pruned from the hook list."""
        import gc

        for _ in range(5):
            BranchInvertedIndex(small_database)
        gc.collect()
        small_database.add(triangle.copy(name="post-drop"))  # prunes dead hooks
        assert len(small_database._subscribers) == 0

    def test_index_survives_pickling(self, small_database, triangle):
        import pickle

        index = BranchInvertedIndex(small_database)
        clone = pickle.loads(pickle.dumps(index))
        new_id = clone.database.add(triangle.copy(name="late"))
        assert clone.num_indexed_graphs == 3
        assert clone.gbd_all(triangle)[new_id] == 0


def test_gbd_lower_bound_array_bounds_gbd_array():
    rng = random.Random(67)
    graphs = [
        random_labeled_graph(rng.randint(3, 12), rng.randint(2, 16), seed=rng)
        for _ in range(30)
    ]
    index = BranchInvertedIndex(GraphDatabase(graphs, name="index-bounds"))
    for _ in range(10):
        query = random_labeled_graph(rng.randint(2, 12), rng.randint(1, 16), seed=rng)
        bounds = index.gbd_lower_bound_array(query)
        gbds = index.gbd_array(query)
        assert bounds.shape == gbds.shape
        assert (bounds <= gbds).all()
