"""Integration tests: the full GBDA pipeline against baselines and ground truth."""


from repro.baselines.branch_filter import BranchFilterGED
from repro.baselines.greedy_sort import GreedySortGED
from repro.baselines.lsap import LSAPGED
from repro.baselines.seriation import SeriationGED
from repro.core.search import GBDASearch
from repro.core.variants import GBDAV1Search, GBDAV2Search
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.evaluation.runner import ExperimentRunner


class TestEndToEndOnFingerprintLike(object):
    def test_offline_then_online_pipeline(self, small_fingerprint_dataset, fitted_search):
        dataset = small_fingerprint_dataset
        query = dataset.query_graphs[0]
        result = fitted_search.query(SimilarityQuery(query, tau_hat=4, gamma=0.8))
        assert result.answer.method == "GBDA"
        assert len(result.gbd_values) == dataset.num_database_graphs

    def test_recall_of_gbda_is_high_on_generated_families(self, small_fingerprint_dataset):
        runner = ExperimentRunner(small_fingerprint_dataset, max_queries=3)
        search = runner.gbda(max_tau=6, num_prior_pairs=150, seed=1)
        result = runner.run_gbda(search, tau_hat=4, gamma=0.7)
        assert result.recall >= 0.8
        assert result.f1 > 0.2

    def test_lsap_recall_is_always_one(self, small_fingerprint_dataset):
        """The LSAP estimate is a GED lower bound, so it never misses answers."""
        runner = ExperimentRunner(small_fingerprint_dataset, max_queries=2)
        result = runner.run_baseline(LSAPGED(), tau_hat=4)
        assert result.recall == 1.0

    def test_gbda_is_faster_than_lsap_per_query(self, small_fingerprint_dataset):
        runner = ExperimentRunner(small_fingerprint_dataset, max_queries=2)
        search = runner.gbda(max_tau=4, num_prior_pairs=150, seed=1)
        gbda = runner.run_gbda(search, tau_hat=4, gamma=0.9)
        lsap = runner.run_baseline(LSAPGED(), tau_hat=4)
        assert gbda.average_query_seconds < lsap.average_query_seconds

    def test_all_methods_agree_on_trivial_far_queries(self, small_fingerprint_dataset):
        """A query with completely disjoint labels should match nothing anywhere."""
        from repro.graphs.generators import random_labeled_graph

        runner = ExperimentRunner(small_fingerprint_dataset, max_queries=1)
        stranger = random_labeled_graph(
            15, 20, vertex_labels=["ALIEN"], edge_labels=["alien-edge"], seed=9
        )
        gbda = runner.gbda(max_tau=3, num_prior_pairs=150, seed=1)
        gbda_answer = gbda.search(stranger, tau_hat=2, gamma=0.7)
        assert gbda_answer.size == 0
        for estimator in (LSAPGED(), GreedySortGED(), SeriationGED(), BranchFilterGED()):
            answer = runner.baseline(estimator).search(stranger, tau_hat=2)
            assert answer.size == 0, estimator.method_name

    def test_variants_run_end_to_end(self, small_fingerprint_dataset):
        database = GraphDatabase(small_fingerprint_dataset.database_graphs, name="fp")
        query = small_fingerprint_dataset.query_graphs[0]
        v1 = GBDAV1Search(database, alpha=10, max_tau=4, num_prior_pairs=100, seed=0).fit()
        v2 = GBDAV2Search(database, weight=0.5, max_tau=4, num_prior_pairs=100, seed=0).fit()
        answer_v1 = v1.search(query, tau_hat=3, gamma=0.7)
        answer_v2 = v2.search(query, tau_hat=3, gamma=0.7)
        assert answer_v1.method == "GBDA-V1"
        assert answer_v2.method == "GBDA-V2"

    def test_posteriors_are_probabilities_for_all_database_graphs(self, small_fingerprint_dataset, fitted_search):
        query = small_fingerprint_dataset.query_graphs[0]
        result = fitted_search.query(SimilarityQuery(query, tau_hat=5, gamma=0.5))
        assert all(0.0 <= p <= 1.0 for p in result.posteriors.values())


class TestScalingBehaviour:
    def test_online_time_grows_mildly_with_graph_size(self):
        """GBDA's online cost is O(nd + τ̂³): doubling n must not explode the time."""
        import time

        from repro.graphs.generators import scale_free_labeled_graph

        times = {}
        for n in (100, 400):
            graphs = [scale_free_labeled_graph(n, seed=s, name=f"g{s}") for s in range(6)]
            database = GraphDatabase(graphs)
            search = GBDASearch(database, max_tau=5, num_prior_pairs=15, seed=0).fit()
            query = graphs[0]
            start = time.perf_counter()
            search.search(query, tau_hat=5, gamma=0.8)
            times[n] = time.perf_counter() - start
        # allow generous slack: the ratio should stay far below the O(n³) regime (64x)
        assert times[400] <= times[100] * 40 + 0.05
