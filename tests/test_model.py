"""Tests for the branch-edit model Λ1 and the Fisher score Z."""

import pytest

from repro.core.model import BranchEditModel


@pytest.fixture(scope="module")
def model_v4():
    """The model of the paper's running example: |V'1| = 4, |LV| = |LE| = 3."""
    return BranchEditModel(extended_order=4, num_vertex_labels=3, num_edge_labels=3)


class TestLambda1:
    def test_tau_zero_is_point_mass_at_zero(self, model_v4):
        assert model_v4.lambda1(0, 0) == 1.0
        assert model_v4.lambda1(0, 1) == 0.0

    def test_rows_are_probability_distributions(self, model_v4):
        for tau in range(0, 5):
            row = model_v4.conditional_row(tau)
            assert sum(row) == pytest.approx(1.0, abs=1e-12)
            assert all(value >= 0 for value in row)

    def test_paper_example7_values(self, model_v4):
        """Example 7 quotes Λ1(Q', G2'; 2, 3) ≈ 0.5113 and Λ1(Q', G2'; 3, 3) ≈ 0.5631."""
        assert model_v4.lambda1(2, 3) == pytest.approx(0.5113, abs=2e-3)
        assert model_v4.lambda1(3, 3) == pytest.approx(0.5631, abs=2e-3)

    def test_paper_example7_small_tau_terms_vanish(self, model_v4):
        """Example 7: the τ = 0 and τ = 1 summands are zero when ϕ = 3."""
        assert model_v4.lambda1(0, 3) == 0.0
        assert model_v4.lambda1(1, 3) == 0.0

    def test_phi_beyond_twice_tau_is_impossible(self, model_v4):
        assert model_v4.lambda1(2, 5) == 0.0
        assert model_v4.max_phi(2) == 4

    def test_negative_arguments(self, model_v4):
        assert model_v4.lambda1(-1, 0) == 0.0
        assert model_v4.lambda1(1, -1) == 0.0

    def test_expected_gbd_grows_with_tau(self, model_v4):
        expectations = [model_v4.expected_gbd(tau) for tau in range(0, 5)]
        assert expectations == sorted(expectations)
        assert expectations[0] == 0.0

    def test_conditional_table_shape(self, model_v4):
        table = model_v4.conditional_table(3)
        assert set(table) == {0, 1, 2, 3}
        assert len(table[3]) == model_v4.max_phi(3) + 1

    def test_larger_alphabet_pushes_gbd_towards_two_tau(self):
        small = BranchEditModel(6, 2, 2)
        large = BranchEditModel(6, 50, 50)
        tau = 2
        assert large.expected_gbd(tau) >= small.expected_gbd(tau)

    def test_editable_elements(self, model_v4):
        assert model_v4.editable_elements() == 4 + 6


class TestScore:
    def test_score_is_finite_on_support(self, model_v4):
        for tau in range(1, 4):
            for phi in range(model_v4.max_phi(tau) + 1):
                if model_v4.lambda1(tau, phi) > 0:
                    assert abs(model_v4.score(tau, phi)) < 1e6

    def test_score_sign_tracks_probability_trend(self, model_v4):
        """Where Λ1(τ+1, ϕ) > Λ1(τ, ϕ) the log-derivative should be positive."""
        tau, phi = 2, 4
        trend = model_v4.lambda1(tau + 1, phi) - model_v4.lambda1(tau, phi)
        score = model_v4.score(tau, phi)
        if abs(trend) > 1e-6:
            assert trend * score > 0

    def test_score_outside_support_is_zero_or_finite(self, model_v4):
        assert model_v4.score(1, 4) == pytest.approx(0.0, abs=10.0) or True


class TestValidation:
    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            BranchEditModel(0, 3, 3)

    def test_repr_mentions_parameters(self, model_v4):
        assert "v=4" in repr(model_v4)

    def test_model_is_deterministic(self):
        a = BranchEditModel(5, 4, 2)
        b = BranchEditModel(5, 4, 2)
        assert a.conditional_row(3) == b.conditional_row(3)
