"""Unit tests for the metrics registry and exposition (repro.obs)."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.export import PROMETHEUS_CONTENT_TYPE, prometheus_text, snapshot
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_enabled,
    set_enabled,
)


class TestPrimitives:
    def test_counter_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert counter.state() == 3.5

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(1)
        assert gauge.value == 9.0

    def test_histogram_buckets_and_sum(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.5)
        # per-slot: <=1, <=2, <=4, +Inf
        assert hist.bucket_counts == [1, 2, 1, 1]
        assert hist.cumulative_counts() == [1, 3, 4, 5]

    def test_histogram_boundary_lands_in_le_bucket(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(1.0)  # le="1.0" must include exactly-1.0 observations
        assert hist.bucket_counts == [1, 0, 0]

    def test_histogram_quantile_interpolates(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(100):
            hist.observe(1.5)
        q = hist.quantile(0.5)
        assert 1.0 <= q <= 2.0
        assert hist.quantile(0.0) <= hist.quantile(1.0)

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        first = registry.counter("q_total", "queries")
        second = registry.counter("q_total")
        assert first is second

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_label_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        family = registry.counter("by_kind", "k", ("kind",))
        with pytest.raises(ValueError):
            registry.counter("by_kind", "k", ("other",))
        with pytest.raises(ValueError):
            family.labels(other="x")
        with pytest.raises(ValueError):
            family.default  # labeled family has no label-less child

    def test_labeled_children_are_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("by_kind", "k", ("kind",))
        a1 = family.labels(kind="a")
        a2 = family.labels(kind="a")
        b = family.labels(kind="b")
        assert a1 is a2 and a1 is not b
        a1.inc(2)
        b.inc()
        assert {lv: c.value for lv, c in family.series()} == {("a",): 2.0, ("b",): 1.0}

    def test_default_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds")
        assert hist.bounds == DEFAULT_LATENCY_BUCKETS

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestDumpMergeDiff:
    def _sample_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("calls_total", "calls", ("kernel",)).labels(kernel="row").inc(5)
        registry.gauge("depth").set(3)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(1.5)
        return registry

    def test_dump_is_picklable(self):
        dump = self._sample_registry().dump()
        assert pickle.loads(pickle.dumps(dump)) == dump

    def test_merge_adds_counters_and_histograms(self):
        worker = self._sample_registry()
        parent = self._sample_registry()
        parent.merge(worker.dump())
        assert parent.get("calls_total").labels(kernel="row").value == 10.0
        hist = parent.histogram("lat", buckets=(1.0, 2.0))
        assert hist.count == 2 and hist.sum == pytest.approx(3.0)

    def test_merge_takes_max_for_gauges(self):
        parent = MetricsRegistry()
        parent.gauge("depth").set(5)
        worker = MetricsRegistry()
        worker.gauge("depth").set(3)
        parent.merge(worker.dump())
        assert parent.gauge("depth").value == 5.0

    def test_merge_creates_unknown_families(self):
        parent = MetricsRegistry()
        parent.merge(self._sample_registry().dump())
        assert parent.get("calls_total") is not None
        assert parent.get("calls_total").labels(kernel="row").value == 5.0

    def test_merge_rejects_incompatible_bucket_bounds(self):
        parent = MetricsRegistry()
        parent.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        worker = MetricsRegistry()
        worker.histogram("lat", buckets=(1.0, 2.0, 3.0))
        with pytest.raises(ValueError):
            parent.merge(worker.dump())

    def test_diff_subtracts_counters(self):
        registry = self._sample_registry()
        before = registry.dump()
        registry.get("calls_total").labels(kernel="row").inc(7)
        registry.histogram("lat", buckets=(1.0, 2.0)).observe(0.5)
        delta = MetricsRegistry.diff(before, registry.dump())
        assert delta["calls_total"]["series"][("row",)] == 7.0
        _bounds, counts, total, count = delta["lat"]["series"][()]
        assert count == 1 and total == pytest.approx(0.5) and sum(counts) == 1

    def test_diff_keeps_after_value_for_gauges(self):
        registry = self._sample_registry()
        before = registry.dump()
        registry.gauge("depth").set(9)
        delta = MetricsRegistry.diff(before, registry.dump())
        assert delta["depth"]["series"][()] == 9.0

    def test_diff_passes_new_series_through(self):
        registry = self._sample_registry()
        before = registry.dump()
        registry.get("calls_total").labels(kernel="matrix").inc(4)
        delta = MetricsRegistry.diff(before, registry.dump())
        assert delta["calls_total"]["series"][("matrix",)] == 4.0

    def test_diff_then_merge_roundtrips(self):
        # The executor's protocol: worker diffs, parent merges.
        worker = self._sample_registry()
        before = worker.dump()
        worker.get("calls_total").labels(kernel="row").inc(3)
        parent = self._sample_registry()
        parent.merge(MetricsRegistry.diff(before, worker.dump()))
        assert parent.get("calls_total").labels(kernel="row").value == 8.0


class TestEnableSwitch:
    def test_disabled_increments_are_no_ops(self):
        counter = Counter()
        gauge = Gauge()
        hist = Histogram(bounds=(1.0,))
        previous = set_enabled(False)
        try:
            assert not metrics_enabled()
            counter.inc()
            gauge.set(5)
            hist.observe(0.5)
        finally:
            set_enabled(previous)
        assert counter.value == 0.0
        assert gauge.value == 0.0
        assert hist.count == 0
        counter.inc()
        assert counter.value == 1.0  # re-enabled


class TestPrometheusText:
    def test_counter_and_gauge_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "Help text", ("kind",)).labels(kind="a").inc(2)
        registry.gauge("repro_depth", "Queue depth").set(4)
        text = prometheus_text(registry)
        assert "# HELP repro_x_total Help text" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{kind="a"} 2' in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 4" in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat", "Latency", buckets=(0.5, 1.0))
        for value in (0.25, 0.75, 2.0):
            hist.observe(value)
        text = prometheus_text(registry)
        assert 'repro_lat_bucket{le="0.5"} 1' in text
        assert 'repro_lat_bucket{le="1"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 3" in text
        assert "repro_lat_count 3" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_esc_total", "", ("name",)).labels(name='a"b\\c').inc()
        text = prometheus_text(registry)
        assert 'name="a\\"b\\\\c"' in text

    def test_content_type_constant(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = snapshot(registry)
        assert snap["c_total"]["samples"][0]["value"] == 3.0
        hist_sample = snap["h"]["samples"][0]
        assert hist_sample["count"] == 1
        assert hist_sample["buckets"]["+Inf"] == 1

    def test_instrumented_stack_registers_all_layers(self):
        # Importing the five layers must register their metric families in
        # the global registry — the exposition covers the whole stack.
        import repro.core.plan  # noqa: F401
        import repro.db.columnar  # noqa: F401
        import repro.offline.fitter  # noqa: F401
        import repro.service.server  # noqa: F401
        import repro.serving.engine  # noqa: F401

        names = {family.name for family in get_registry().families()}
        expected = {
            "repro_kernel_calls_total",  # db layer
            "repro_kernel_backend_info",
            "repro_stage_seconds",  # execution core
            "repro_plan_choices_total",
            "repro_engine_queries_total",  # serving layer
            "repro_engine_cache_events_total",
            "repro_batcher_batch_size",  # service layer
            "repro_admission_admitted_total",
            "repro_service_requests_total",
            "repro_offline_fits_total",  # offline layer
        }
        assert expected <= names
