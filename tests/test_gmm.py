"""Tests for the from-scratch Gaussian Mixture Model (EM)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConvergenceError
from repro.stats.gmm import EM_BACKENDS, GaussianMixtureModel


def _two_cluster_sample(n=400, seed=0):
    rng = random.Random(seed)
    data = [rng.gauss(2.0, 0.5) for _ in range(n // 2)]
    data += [rng.gauss(8.0, 1.0) for _ in range(n // 2)]
    return data


class TestFitting:
    def test_two_clusters_recovered(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        means = sorted(component.mean for component in model.components)
        assert means[0] == pytest.approx(2.0, abs=0.5)
        assert means[1] == pytest.approx(8.0, abs=0.8)

    def test_weights_sum_to_one(self):
        model = GaussianMixtureModel(3, seed=2).fit(_two_cluster_sample())
        assert sum(c.weight for c in model.components) == pytest.approx(1.0)

    def test_fit_is_reproducible_with_seed(self):
        data = _two_cluster_sample()
        a = GaussianMixtureModel(2, seed=5).fit(data)
        b = GaussianMixtureModel(2, seed=5).fit(data)
        assert [c.mean for c in a.components] == pytest.approx([c.mean for c in b.components])

    def test_empty_sample_rejected(self):
        with pytest.raises(ConvergenceError):
            GaussianMixtureModel(2).fit([])

    def test_constant_sample_does_not_crash(self):
        model = GaussianMixtureModel(3, seed=0).fit([4.0] * 50)
        assert len(model.components) == 1
        assert model.components[0].mean == pytest.approx(4.0)

    def test_more_components_than_distinct_values(self):
        model = GaussianMixtureModel(5, seed=0).fit([1.0, 2.0, 1.0, 2.0])
        assert len(model.components) <= 2

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixtureModel(0)

    def test_log_likelihood_recorded(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        assert model.log_likelihood_ is not None
        assert model.n_iterations_ >= 1


class TestBackends:
    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            GaussianMixtureModel(2, backend="fortran")
        for backend in EM_BACKENDS:
            GaussianMixtureModel(2, backend=backend)

    def test_auto_resolves_to_numpy_when_available(self):
        model = GaussianMixtureModel(2)
        assert model.backend == "auto"
        assert model.resolved_backend() in ("numpy", "python")

    def test_backends_agree_on_two_cluster_data(self):
        data = _two_cluster_sample()
        scalar = GaussianMixtureModel(2, seed=3, backend="python").fit(data)
        vector = GaussianMixtureModel(2, seed=3, backend="numpy").fit(data)
        assert vector.n_iterations_ == scalar.n_iterations_
        for a, b in zip(scalar.components, vector.components):
            assert b.weight == pytest.approx(a.weight, abs=1e-9)
            assert b.mean == pytest.approx(a.mean, abs=1e-9)
            assert b.std == pytest.approx(a.std, abs=1e-9)
        assert vector.log_likelihood_ == pytest.approx(
            scalar.log_likelihood_, rel=1e-9, abs=1e-9
        )

    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        num_components=st.integers(min_value=1, max_value=4),
        data_seed=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_backend_parity_property(self, seed, num_components, data_seed):
        """The vectorized backend matches the scalar backend across seeds."""
        rng = random.Random(data_seed)
        # integer-heavy data mirrors real GBD samples
        data = [float(round(max(rng.gauss(5.0, 2.5), 0.0))) for _ in range(120)]
        scalar = GaussianMixtureModel(num_components, seed=seed, backend="python").fit(data)
        vector = GaussianMixtureModel(num_components, seed=seed, backend="numpy").fit(data)
        assert len(scalar.components) == len(vector.components)
        for a, b in zip(scalar.components, vector.components):
            assert b.weight == pytest.approx(a.weight, abs=1e-9)
            assert b.mean == pytest.approx(a.mean, abs=1e-9)
            assert b.std == pytest.approx(a.std, abs=1e-9)
        assert vector.log_likelihood_ == pytest.approx(
            scalar.log_likelihood_, rel=1e-9, abs=1e-9
        )


class TestSeeding:
    def test_initial_means_distinct_on_integer_heavy_data(self):
        # with-replacement choice used to waste components on duplicate starts
        data = [1.0] * 30 + [2.0] * 30 + [5.0] * 40
        for seed in range(25):
            model = GaussianMixtureModel(3, seed=seed)
            means = model._initial_means(data, 3)
            assert len(set(means)) == 3, f"duplicate initial means for seed {seed}: {means}"

    def test_initial_means_distinct_even_when_k_exceeds_spread(self):
        data = [0.0] * 50 + [10.0] * 50
        for seed in range(10):
            model = GaussianMixtureModel(2, seed=seed)
            means = model._initial_means(data, 2)
            assert set(means) == {0.0, 10.0}

    def test_fit_on_integer_heavy_data_uses_all_components(self):
        data = [1.0] * 30 + [2.0] * 30 + [5.0] * 40
        model = GaussianMixtureModel(3, seed=0).fit(data)
        means = sorted(round(c.mean) for c in model.components)
        assert means == [1, 2, 5]


class TestSeedRoundTrip:
    def test_state_round_trips_seed(self):
        model = GaussianMixtureModel(2, seed=41).fit(_two_cluster_sample())
        restored = GaussianMixtureModel.from_state(model.to_state())
        assert restored._seed == 41
        assert restored.backend == model.backend

    def test_reload_then_refit_is_deterministic(self):
        """Refitting a reloaded model matches refitting the live instance.

        The regression: from_state used to rebuild with the default seed=0,
        silently changing the sampling stream of any later refit.
        """
        data = _two_cluster_sample(seed=1)
        original = GaussianMixtureModel(3, seed=9).fit(data)
        restored = GaussianMixtureModel.from_state(original.to_state())

        refit_data = _two_cluster_sample(seed=2)
        original.fit(refit_data)
        restored.fit(refit_data)
        assert [c.mean for c in restored.components] == pytest.approx(
            [c.mean for c in original.components]
        )
        assert [c.weight for c in restored.components] == pytest.approx(
            [c.weight for c in original.components]
        )


class TestQueries:
    def test_pdf_integrates_to_roughly_one(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        step = 0.05
        grid = [i * step for i in range(-200, 400)]
        integral = sum(model.pdf(x) * step for x in grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_discrete_probabilities_sum_to_roughly_one(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        total = sum(model.discrete_probability(value) for value in range(-5, 25))
        assert total == pytest.approx(1.0, abs=0.02)

    def test_discrete_probability_peaks_near_cluster_means(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        assert model.discrete_probability(2) > model.discrete_probability(5)
        assert model.discrete_probability(8) > model.discrete_probability(5)

    def test_queries_before_fit_raise(self):
        model = GaussianMixtureModel(2)
        with pytest.raises(ConvergenceError):
            model.pdf(0.0)
        with pytest.raises(ConvergenceError):
            model.discrete_probability(0)

    def test_sampling_from_fitted_model(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        samples = model.sample(200, seed=3)
        assert len(samples) == 200
        assert 0.0 < sum(samples) / len(samples) < 10.0

    def test_repr(self):
        unfitted = GaussianMixtureModel(2)
        assert "unfitted" in repr(unfitted)
        fitted = GaussianMixtureModel(1, seed=0).fit([1.0, 2.0, 3.0])
        assert "π=" in repr(fitted)
