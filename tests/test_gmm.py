"""Tests for the from-scratch Gaussian Mixture Model (EM)."""

import random

import pytest

from repro.exceptions import ConvergenceError
from repro.stats.gmm import GaussianMixtureModel


def _two_cluster_sample(n=400, seed=0):
    rng = random.Random(seed)
    data = [rng.gauss(2.0, 0.5) for _ in range(n // 2)]
    data += [rng.gauss(8.0, 1.0) for _ in range(n // 2)]
    return data


class TestFitting:
    def test_two_clusters_recovered(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        means = sorted(component.mean for component in model.components)
        assert means[0] == pytest.approx(2.0, abs=0.5)
        assert means[1] == pytest.approx(8.0, abs=0.8)

    def test_weights_sum_to_one(self):
        model = GaussianMixtureModel(3, seed=2).fit(_two_cluster_sample())
        assert sum(c.weight for c in model.components) == pytest.approx(1.0)

    def test_fit_is_reproducible_with_seed(self):
        data = _two_cluster_sample()
        a = GaussianMixtureModel(2, seed=5).fit(data)
        b = GaussianMixtureModel(2, seed=5).fit(data)
        assert [c.mean for c in a.components] == pytest.approx([c.mean for c in b.components])

    def test_empty_sample_rejected(self):
        with pytest.raises(ConvergenceError):
            GaussianMixtureModel(2).fit([])

    def test_constant_sample_does_not_crash(self):
        model = GaussianMixtureModel(3, seed=0).fit([4.0] * 50)
        assert len(model.components) == 1
        assert model.components[0].mean == pytest.approx(4.0)

    def test_more_components_than_distinct_values(self):
        model = GaussianMixtureModel(5, seed=0).fit([1.0, 2.0, 1.0, 2.0])
        assert len(model.components) <= 2

    def test_invalid_component_count(self):
        with pytest.raises(ValueError):
            GaussianMixtureModel(0)

    def test_log_likelihood_recorded(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        assert model.log_likelihood_ is not None
        assert model.n_iterations_ >= 1


class TestQueries:
    def test_pdf_integrates_to_roughly_one(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        step = 0.05
        grid = [i * step for i in range(-200, 400)]
        integral = sum(model.pdf(x) * step for x in grid)
        assert integral == pytest.approx(1.0, abs=0.02)

    def test_discrete_probabilities_sum_to_roughly_one(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        total = sum(model.discrete_probability(value) for value in range(-5, 25))
        assert total == pytest.approx(1.0, abs=0.02)

    def test_discrete_probability_peaks_near_cluster_means(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        assert model.discrete_probability(2) > model.discrete_probability(5)
        assert model.discrete_probability(8) > model.discrete_probability(5)

    def test_queries_before_fit_raise(self):
        model = GaussianMixtureModel(2)
        with pytest.raises(ConvergenceError):
            model.pdf(0.0)
        with pytest.raises(ConvergenceError):
            model.discrete_probability(0)

    def test_sampling_from_fitted_model(self):
        model = GaussianMixtureModel(2, seed=1).fit(_two_cluster_sample())
        samples = model.sample(200, seed=3)
        assert len(samples) == 200
        assert 0.0 < sum(samples) / len(samples) < 10.0

    def test_repr(self):
        unfitted = GaussianMixtureModel(2)
        assert "unfitted" in repr(unfitted)
        fitted = GaussianMixtureModel(1, seed=0).fit([1.0, 2.0, 3.0])
        assert "π=" in repr(fitted)
