"""Tests for the dataset generators: known-GED families, Syn-1/Syn-2, look-alikes."""

import pytest

from repro.baselines.ged_exact import exact_ged
from repro.datasets import (
    build_dataset,
    find_modification_center,
    make_aasd_like,
    make_aids_like,
    make_fingerprint_like,
    make_grec_like,
    make_known_ged_family,
    make_syn1,
    make_syn2,
)
from repro.datasets.registry import DATASET_BUILDERS, Dataset, GroundTruth
from repro.exceptions import DatasetError
from repro.graphs.generators import random_labeled_graph, scale_free_labeled_graph
from repro.graphs.graph import Graph
from repro.graphs.validation import collection_statistics, validate_graph


class TestModificationCenter:
    def test_star_with_distinct_neighbors_is_a_center(self):
        graph = Graph.from_dicts(
            {0: "hub", 1: "A", 2: "B", 3: "C"},
            {(0, 1): "x", (0, 2): "x", (0, 3): "x"},
        )
        assert find_modification_center(graph, min_degree=3) == 0

    def test_star_with_identical_neighbors_is_not_a_center(self):
        graph = Graph.from_dicts(
            {0: "hub", 1: "A", 2: "A", 3: "A"},
            {(0, 1): "x", (0, 2): "x", (0, 3): "x"},
        )
        assert find_modification_center(graph, min_degree=3) is None

    def test_degree_threshold_respected(self):
        graph = Graph.from_dicts({0: "hub", 1: "A"}, {(0, 1): "x"})
        assert find_modification_center(graph, min_degree=3) is None


class TestKnownGEDFamily:
    def test_family_size_and_template_identity(self):
        template = scale_free_labeled_graph(30, seed=1, name="t")
        family = make_known_ged_family(template, family_size=6, max_distance=4, seed=2)
        assert len(family) == 6
        assert family.members[0] is template
        assert family.edits_from_template[0] == {}

    def test_pairwise_ged_is_symmetric_and_bounded(self):
        template = scale_free_labeled_graph(25, seed=3, name="t")
        family = make_known_ged_family(template, family_size=8, max_distance=5, seed=4)
        for i in range(len(family)):
            assert family.ged(i, i) == 0
            for j in range(len(family)):
                assert family.ged(i, j) == family.ged(j, i)
                assert 0 <= family.ged(i, j) <= 2 * 5

    def test_recorded_ged_matches_exact_ged_on_small_templates(self):
        """The Appendix-I claim, verified against A* on graphs small enough for it."""
        template = random_labeled_graph(7, 9, seed=5, name="t")
        family = make_known_ged_family(template, family_size=5, max_distance=3, seed=6)
        for i in range(len(family)):
            for j in range(i + 1, len(family)):
                expected = family.ged(i, j)
                actual = exact_ged(family.members[i], family.members[j])
                assert actual == expected, f"pair ({i}, {j})"

    def test_members_are_valid_graphs(self):
        template = scale_free_labeled_graph(20, seed=7, name="t")
        family = make_known_ged_family(template, family_size=5, max_distance=4, seed=8)
        for member in family.members:
            validate_graph(member, require_connected=True)

    def test_vertex_slots_used_when_center_degree_is_small(self):
        # A path graph has maximum degree 2; requesting distance 5 forces
        # vertex-relabel slots to be added.
        template = Graph(name="path")
        for v in range(12):
            template.add_vertex(v, f"L{v}")
        for v in range(1, 12):
            template.add_edge(v - 1, v, "e")
        family = make_known_ged_family(template, family_size=4, max_distance=5, seed=9)
        assert len(family.slots) >= 5
        assert any(kind == "vertex" for kind, _ in family.slots)

    def test_tiny_template_rejected(self):
        template = Graph.from_dicts({0: "A"}, {})
        with pytest.raises(DatasetError):
            make_known_ged_family(template, family_size=3, max_distance=2, seed=0)

    def test_invalid_family_size(self):
        template = scale_free_labeled_graph(10, seed=0)
        with pytest.raises(DatasetError):
            make_known_ged_family(template, family_size=0, max_distance=2)


class TestSyntheticDatasets:
    def test_syn1_structure(self):
        dataset = make_syn1(sizes=(30, 60), families_per_size=1, family_size=6, seed=1)
        assert dataset.name == "Syn-1"
        assert dataset.scale_free
        assert dataset.num_database_graphs > 0
        assert dataset.num_query_graphs > 0
        assert dataset.ground_truth.known_pairs() > 0

    def test_syn2_is_not_scale_free(self):
        dataset = make_syn2(sizes=(30,), families_per_size=1, family_size=5, seed=2)
        assert not dataset.scale_free

    def test_ground_truth_answer_sets_grow_with_threshold(self):
        dataset = make_syn1(sizes=(40,), families_per_size=1, family_size=8, seed=3)
        key = dataset.query_key(0)
        small = dataset.ground_truth.answer_set(key, 1)
        large = dataset.ground_truth.answer_set(key, 10)
        assert small <= large

    def test_queries_not_in_database(self):
        dataset = make_syn1(sizes=(30,), families_per_size=1, family_size=6, seed=4)
        database_names = {graph.name for graph in dataset.database_graphs}
        for query in dataset.query_graphs:
            assert query.name not in database_names


class TestLookAlikeDatasets:
    @pytest.mark.parametrize(
        "builder,name,max_vertices,degree_range",
        [
            (make_aids_like, "AIDS", 95, (1.5, 2.8)),
            (make_fingerprint_like, "Fingerprint", 26, (1.2, 2.3)),
            (make_grec_like, "GREC", 24, (1.5, 3.0)),
        ],
    )
    def test_statistics_match_table3_regime(self, builder, name, max_vertices, degree_range):
        dataset = builder(num_templates=8, family_size=6, seed=1)
        assert dataset.name == name
        stats = collection_statistics(dataset.database_graphs)
        assert stats.max_vertices <= max_vertices
        low, high = degree_range
        assert low <= stats.average_degree <= high

    def test_aasd_is_larger_than_aids_by_default(self):
        aids = make_aids_like(num_templates=4, family_size=4, seed=1)
        aasd = make_aasd_like(num_templates=8, family_size=4, seed=1)
        assert aasd.num_database_graphs > aids.num_database_graphs

    def test_every_dataset_has_complete_ground_truth_for_its_queries(self):
        dataset = make_grec_like(num_templates=4, family_size=5, seed=2)
        for index in range(dataset.num_query_graphs):
            key = dataset.query_key(index)
            assert len(dataset.ground_truth.answer_set(key, 10)) >= 1

    def test_database_graphs_are_valid(self):
        dataset = make_aids_like(num_templates=4, family_size=4, seed=3)
        for graph in dataset.database_graphs[:10]:
            validate_graph(graph)


class TestRegistry:
    def test_known_names_registered(self):
        for name in ("aids", "fingerprint", "grec", "aasd", "syn-1", "syn-2"):
            assert name in DATASET_BUILDERS

    def test_build_dataset_by_name(self):
        dataset = build_dataset("fingerprint", num_templates=3, family_size=4, seed=5)
        assert isinstance(dataset, Dataset)
        assert dataset.name == "Fingerprint"

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            build_dataset("no-such-dataset")

    def test_ground_truth_record_validation(self):
        truth = GroundTruth()
        with pytest.raises(DatasetError):
            truth.record("q", 0, -1)
        truth.record("q", 0, 2)
        assert truth.ged("q", 0) == 2
        assert truth.ged("q", 1) is None
        assert truth.answer_set("q", 2) == frozenset({0})
        assert truth.known_pairs() == 1
