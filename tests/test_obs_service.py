"""Service-level observability tests: /metrics scrape, traces, slow log.

Covers the acceptance criteria of the observability subsystem:

* the plain-HTTP ``/metrics`` listener serves valid Prometheus text whose
  families span all five layers (kernels, core, engine, service, offline);
* scraped counters are monotonic while concurrent query load is running;
* a sampled query trace's depth-0 stage durations sum to within 10% of
  its recorded end-to-end latency;
* the ``stats``/``metrics`` admin command is a pure read — scraping twice
  reports identical counters and never mutates the server's ServingStats;
* the ``slow``, ``traces``, and ``prometheus`` admin commands round-trip;
* distributed tracing (v2): a client-rooted trace joins on the server
  (same trace id, parent span id = the client's span), latency-histogram
  exemplars link buckets to sampled trace ids, ``repro_build_info``
  identifies the process, the tracer/slow-log rings survive a hot swap
  with per-entry ``model_version`` attribution, and the ``logs`` /
  ``slo`` / ``profile`` admin commands round-trip.
"""

from __future__ import annotations

import asyncio
import random
import re
import socket
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import ServiceError
from repro.graphs.generators import random_labeled_graph
from repro.obs import dump
from repro.obs.trace import Tracer
from repro.serving import BatchQueryEngine, load_engine, save_engine
from repro.service import AsyncServiceClient, HedgePolicy, ServiceClient, start_service_thread
from repro.service.protocol import query_request, recv_frame, send_frame


@pytest.fixture(scope="module")
def engine():
    rng = random.Random(29)
    graphs = [
        random_labeled_graph(rng.randint(5, 9), rng.randint(5, 12), seed=rng)
        for _ in range(40)
    ]
    database = GraphDatabase(graphs, name="obs-service")
    search = GBDASearch(database, max_tau=4, num_prior_pairs=120, seed=7).fit()
    return BatchQueryEngine.from_search(search)


def _random_queries(num, seed):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 9), rng.randint(4, 12), seed=rng),
            rng.randint(1, 4),
            rng.choice([0.5, 0.75, 0.9]),
        )
        for _ in range(num)
    ]


@pytest.fixture(scope="module")
def handle(engine):
    with start_service_thread(
        engine,
        max_batch=8,
        max_delay_ms=1.0,
        trace_sample_rate=1.0,  # every query traced: deterministic assertions
        slow_query_ms=0.0,  # every query is "slow": the log always fills
        metrics_port=0,
    ) as running:
        yield running


def _scrape(handle) -> str:
    port = handle.service.metrics_http_port
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=10) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in response.headers["Content-Type"]
        return response.read().decode("utf-8")


def _sample_value(text: str, prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(prefix):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample starting with {prefix!r} in scrape")


class TestMetricsScrape:
    def test_scrape_covers_all_five_layers(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(16, seed=1))
        text = _scrape(handle)
        for family in (
            "repro_kernel_calls_total",  # db columnar kernels
            "repro_stage_seconds",  # execution core
            "repro_plan_choices_total",
            "repro_engine_queries_total",  # serving engine
            "repro_batcher_batch_size",  # service: batcher
            "repro_admission_admitted_total",  # service: admission
            "repro_service_requests_total",  # service: request handler
            "repro_offline_fits_total",  # offline (registered at import)
        ):
            assert f"# TYPE {family}" in text, f"{family} missing from scrape"
        assert _sample_value(text, 'repro_service_requests_total{outcome="answered"}') >= 16
        # Which compiled-kernel backend answered — an info-style gauge.
        assert _sample_value(text, "repro_kernel_backend_info{") == 1.0

    def test_http_404_for_unknown_path(self, handle):
        port = handle.service.metrics_http_port
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_counters_are_monotonic_under_concurrent_load(self, handle):
        stop = threading.Event()

        def drive(seed):
            queries = _random_queries(6, seed)
            with ServiceClient(*handle.address) as client:
                while not stop.is_set():
                    client.query_many(queries, return_errors=True)

        drivers = [threading.Thread(target=drive, args=(seed,)) for seed in (11, 12)]
        for thread in drivers:
            thread.start()
        try:
            prefix = 'repro_service_requests_total{outcome="answered"}'
            previous = _sample_value(_scrape(handle), prefix)
            for _ in range(8):
                current = _sample_value(_scrape(handle), prefix)
                assert current >= previous
                previous = current
        finally:
            stop.set()
            for thread in drivers:
                thread.join()

    def test_prometheus_admin_command_matches_http(self, handle):
        with ServiceClient(*handle.address) as client:
            text = client.prometheus()
        assert "# TYPE repro_service_requests_total counter" in text


class TestTraces:
    def test_depth0_stages_sum_to_the_recorded_latency(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(8, seed=21))
            recent = client.traces(limit=8)["recent"]
        assert recent, "sample_rate=1.0 must retain traces"
        for doc in recent:
            total_ms = doc["total_ms"]
            depth0_ms = sum(
                span["duration_ms"] for span in doc["spans"] if span["depth"] == 0
            )
            assert total_ms > 0
            # Acceptance criterion: the handler-level stages partition the
            # end-to-end latency to within 10%.
            assert depth0_ms == pytest.approx(total_ms, rel=0.10)

    def test_traces_include_engine_substages(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(8, seed=22))
            recent = client.traces(limit=4)["recent"]
        names = {span["name"] for doc in recent for span in doc["spans"]}
        assert {"decode", "batcher", "serialize", "queue_wait", "score"} <= names

    def test_tracer_summary_counts(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(4, seed=23))
            summary = client.traces()["tracer"]
        assert summary["sample_rate"] == 1.0
        assert summary["sampled"] >= 4
        assert summary["seen"] >= summary["sampled"]


class TestSlowLogAndPurity:
    def test_slow_admin_command_returns_waterfalls(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(4, seed=31))
            slow = client.slow()
        assert slow["threshold_ms"] == 0.0
        assert slow["total_slow"] >= 4
        entry = slow["entries"][0]
        assert entry["latency_ms"] > 0
        assert "tau_hat" in entry["detail"]
        assert entry["trace"] is not None  # sample_rate=1.0: waterfall attached

    def test_metrics_is_a_pure_read(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(6, seed=41))
            first = client.stats()
            second = client.stats()
        for key in (
            "num_queries",
            "num_batches",
            "cache_hits",
            "cache_misses",
            "candidates_generated",
            "candidates_pruned",
            "candidates_verified",
        ):
            assert first["serving"][key] == second["serving"][key], key
        # The overlay never writes back: the server's own ServingStats only
        # ever holds what record_latency put there.
        stats = handle.service.stats
        assert stats.candidates_generated == 0
        assert stats.cache_hits == 0 and stats.cache_misses == 0
        assert stats.num_batches == 0
        # ... while the scrape reports the real engine-side counters.
        assert first["serving"]["candidates_generated"] > 0
        assert first["serving"]["num_batches"] > 0
        assert first["observability"]["tracer"]["sampled"] > 0


class TestDistributedTracing:
    def test_client_and_server_share_one_trace(self, handle):
        tracer = Tracer(sample_rate=1.0, seed=5)
        with ServiceClient(*handle.address, tracer=tracer) as client:
            client.query_many(_random_queries(3, seed=51))
        client_docs = tracer.recent_traces(limit=3)
        assert len(client_docs) == 3
        for doc in client_docs:
            # The server joined the propagated context: same trace id, and
            # its hop's parent span is the client's root span.
            server_docs = handle.service.tracer.find(doc["trace_id"])
            assert len(server_docs) == 1
            server = server_docs[0]
            assert server["parent_span_id"] == doc["span_id"]
            assert doc["parent_span_id"] is None  # client is the root
            # Depth-0 stages across the two hops: client send → server
            # admission → decode → batcher (queue/score below) → serialize
            # → client reply.
            client_depth0 = [s["name"] for s in doc["spans"] if s["depth"] == 0]
            server_depth0 = [s["name"] for s in server["spans"] if s["depth"] == 0]
            assert client_depth0 == ["send", "reply"]
            assert server_depth0 == ["admission", "decode", "batcher", "serialize"]
            assert {"queue_wait", "score"} <= {
                s["name"] for s in server["spans"] if s["depth"] == 1
            }
            # The single attempt is a tagged child span of the client root.
            attempts = [s for s in doc["spans"] if s["name"] == "attempt"]
            assert len(attempts) == 1
            assert attempts[0]["depth"] == 1
            assert attempts[0]["tags"] == {"attempt": 1, "outcome": "answered"}
            assert doc["detail"]["attempts"] == 1

    def test_server_depth0_still_partitions_total_when_joined(self, handle):
        tracer = Tracer(sample_rate=1.0, seed=6)
        with ServiceClient(*handle.address, tracer=tracer) as client:
            client.query_many(_random_queries(4, seed=52))
        for doc in tracer.recent_traces(limit=4):
            server = handle.service.tracer.find(doc["trace_id"])[0]
            depth0_ms = sum(
                span["duration_ms"] for span in server["spans"] if span["depth"] == 0
            )
            assert depth0_ms == pytest.approx(server["total_ms"], rel=0.10)

    def test_malformed_trace_field_never_rejects_a_query(self, handle):
        query = _random_queries(1, seed=53)[0]
        with socket.create_connection(handle.address, timeout=10) as sock:
            message = query_request(1, query)
            message["trace"] = "definitely-not-a-traceparent"
            send_frame(sock, message)
            response = recv_frame(sock)
        assert response["kind"] == "answer"

    def test_unsampled_context_suppresses_the_server_trace(self, handle):
        query = _random_queries(1, seed=54)[0]
        trace_id = "ab" * 16
        with socket.create_connection(handle.address, timeout=10) as sock:
            message = query_request(1, query)
            message["trace"] = f"00-{trace_id}-{'cd' * 8}-00"  # sampled flag off
            send_frame(sock, message)
            response = recv_frame(sock)
        assert response["kind"] == "answer"
        # Head decision wins: despite the server's own sample_rate=1.0 the
        # query is served untraced.
        assert handle.service.tracer.find(trace_id) == []

    def test_hedged_query_is_one_root_trace_with_tagged_children(self, handle):
        tracer = Tracer(sample_rate=1.0, seed=7)
        queries = _random_queries(3, seed=55)

        async def run():
            client = await AsyncServiceClient.connect(
                *handle.address,
                tracer=tracer,
                hedge=HedgePolicy(percentile=50.0, min_delay_ms=0.01),
            )
            try:
                for query in queries:
                    await client.query(query)
            finally:
                await client.close()

        asyncio.run(run())
        docs = tracer.recent_traces(limit=len(queries))
        assert len(docs) == len(queries)
        for doc in docs:
            hedges = [s for s in doc["spans"] if s["name"] == "hedge"]
            attempts = [s for s in doc["spans"] if s["name"] == "attempt"]
            assert len(attempts) == 1
            # The hedge fired (delay ~0); both sends belong to the same root
            # trace and each carries its outcome.
            assert len(hedges) == 1
            assert hedges[0]["depth"] == 1
            assert hedges[0]["tags"]["outcome"] in (
                "won",
                "cancelled",
                "idempotency-cache-hit",
            )
            assert attempts[0]["tags"]["outcome"] in (
                "answered",
                "cancelled",
                "idempotency-cache-hit",
            )


class TestExemplarsAndBuildInfo:
    def test_latency_buckets_carry_trace_exemplars(self, handle):
        tracer = Tracer(sample_rate=1.0, seed=8)
        with ServiceClient(*handle.address, tracer=tracer) as client:
            client.query_many(_random_queries(4, seed=61))
            text = client.prometheus()
        lines = text.splitlines()
        exemplar_lines = [
            (index, line)
            for index, line in enumerate(lines)
            if line.startswith("# {trace_id=")
        ]
        assert exemplar_lines, "no exemplar comments in exposition"
        for index, line in exemplar_lines:
            # Exemplars ride directly below a histogram bucket sample and
            # carry a well-formed 128-bit trace id plus the observed value.
            assert "_bucket{" in lines[index - 1]
            match = re.match(r'^# \{trace_id="([0-9a-f]{32})"\} ([-+0-9.eE]+)$', line)
            assert match, line
        # The request-latency family specifically has one, and it matches a
        # trace retained by the server-side tracer ring.
        request_exemplars = [
            line
            for index, line in exemplar_lines
            if lines[index - 1].startswith("repro_service_request_seconds_bucket")
        ]
        assert request_exemplars

    def test_snapshot_includes_exemplars(self, handle):
        tracer = Tracer(sample_rate=1.0, seed=9)
        with ServiceClient(*handle.address, tracer=tracer) as client:
            client.query_many(_random_queries(2, seed=62))
        sample = dump()["repro_service_request_seconds"]["samples"][0]
        assert "exemplars" in sample
        for bound, exemplar in sample["exemplars"].items():
            assert bound in sample["buckets"]
            assert re.fullmatch(r"[0-9a-f]{32}", exemplar["trace_id"])
            assert exemplar["value"] >= 0.0

    def test_build_info_in_stats_and_exposition(self, handle):
        with ServiceClient(*handle.address) as client:
            stats = client.stats()
            text = client.prometheus()
        build = stats["build"]
        assert build["version"] == repro.__version__
        assert build["kernel_backend"] in ("numpy", "native", "unknown")
        assert build["python_version"].count(".") == 2
        info_line = next(
            line for line in text.splitlines() if line.startswith("repro_build_info{")
        )
        assert info_line.endswith(" 1")
        assert f'version="{repro.__version__}"' in info_line


class TestAdminCommands:
    def test_logs_round_trip_and_filters(self, handle):
        with ServiceClient(*handle.address, tracer=Tracer(1.0, seed=10)) as client:
            client.query_many(_random_queries(2, seed=71))
            doc = client.logs(limit=16)
            assert doc["total_events"] >= 1
            assert isinstance(doc["events"], list)
            # slow_query_ms=0.0: every query logs a warning-level slow_query
            # event correlated with its trace id.
            warnings = client.logs(limit=16, level="warning")["events"]
        slow_events = [e for e in warnings if e["event"] == "slow_query"]
        assert slow_events
        record = slow_events[0]
        # Chatty per-query events ride a dedicated logger (own rate-limit
        # bucket) so they can never starve rare "service" lifecycle events.
        assert record["logger"] == "service.slow"
        assert re.fullmatch(r"[0-9a-f]{32}", record["trace_id"])
        assert record["model_version"] == 0
        assert record["latency_ms"] > 0

    def test_slo_round_trip(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(2, seed=72))
            report = client.slo()
            text = client.prometheus()
        assert report["windows_seconds"] == [300.0, 3600.0]
        objectives = {o["name"]: o for o in report["objectives"]}
        assert set(objectives) == {"latency", "availability"}
        for objective in objectives.values():
            assert objective["state"] in ("ok", "warn", "page")
            assert set(objective["burn_rates"]) == {"300s", "3600s"}
            assert 0.0 <= objective["compliance"] <= 1.0
        # The evaluation exported its gauges next to the source metrics.
        assert 'repro_slo_state{slo="latency"}' in text
        assert 'repro_slo_burn_rate{slo="availability",window="300s"}' in text

    def test_profile_lifecycle(self, handle):
        with ServiceClient(*handle.address) as client:
            status = client.profile()
            assert status["running"] is False
            started = client.profile("start")
            assert started["started"] is True
            assert client.profile("start")["started"] is False  # idempotent
            # Sampling happens while queries run.
            client.query_many(_random_queries(8, seed=73))
            dumped = client.profile("dump")
            assert isinstance(dumped["collapsed"], str)
            stopped = client.profile("stop")
            assert stopped["stopped"] is True
            assert client.profile()["running"] is False
            client.profile("reset")
            assert client.profile()["samples"] == 0

    def test_profile_unknown_action_is_a_typed_error(self, handle):
        with ServiceClient(*handle.address) as client:
            with pytest.raises(ServiceError):
                client.profile("explode")
            # The connection stays usable after the typed error.
            assert client.ping()["pong"] is True

    def test_stats_observability_summary(self, handle):
        with ServiceClient(*handle.address) as client:
            stats = client.stats()
        observability = stats["observability"]
        assert set(observability["slo"]) == {"latency", "availability"}
        assert observability["logs"]["total_events"] >= 0
        assert observability["profiler"]["running"] in (True, False)


class TestHotSwapObservability:
    """Regression: tracer ring + slow log survive reloads with attribution."""

    @pytest.fixture()
    def snapshots(self, engine, tmp_path):
        path_a = tmp_path / "engine_a.snapshot"
        save_engine(engine, path_a)
        bumped = load_engine(path_a)
        bumped.model_version = engine.model_version + 1
        path_b = tmp_path / "engine_b.snapshot"
        save_engine(bumped, path_b)
        return path_a, path_b

    def test_rings_survive_reload_with_model_version_stamps(self, snapshots):
        path_a, path_b = snapshots
        handle = start_service_thread(
            None,
            snapshot_path=path_a,
            trace_sample_rate=1.0,
            slow_query_ms=0.0,
        )
        try:
            with ServiceClient(*handle.address) as client:
                client.query_many(_random_queries(3, seed=81))
                before_traces = client.traces(limit=64)["recent"]
                before_ids = {doc["trace_id"] for doc in before_traces}
                before_slow = client.slow()["total_slow"]
                assert before_traces and before_slow >= 3

                result = client.reload(path_b)
                assert result["model_version"] == 1

                client.query_many(_random_queries(3, seed=82))
                after_traces = client.traces(limit=64)["recent"]
                after_slow = client.slow()

            # The rings survived: every pre-reload trace is still retained...
            after_ids = {doc["trace_id"] for doc in after_traces}
            assert before_ids <= after_ids
            assert after_slow["total_slow"] > before_slow
            # ...and every entry attributes itself to the model that served
            # it: old waterfalls to version 0, new ones to version 1.
            versions = {
                doc["trace_id"]: doc["detail"]["model_version"] for doc in after_traces
            }
            assert all(versions[trace_id] == 0 for trace_id in before_ids)
            new_ids = after_ids - before_ids
            assert new_ids and all(versions[trace_id] == 1 for trace_id in new_ids)
            slow_versions = [
                entry["detail"]["model_version"] for entry in after_slow["entries"]
            ]
            assert 0 in slow_versions and 1 in slow_versions
        finally:
            handle.stop()

    def test_reload_emits_structured_events(self, snapshots):
        path_a, path_b = snapshots
        handle = start_service_thread(None, snapshot_path=path_a)
        try:
            with ServiceClient(*handle.address) as client:
                client.reload(path_b)
                events = client.logs(limit=32, logger="service")["events"]
        finally:
            handle.stop()
        reloaded = [e for e in events if e["event"] == "engine_reloaded"]
        assert reloaded
        assert reloaded[0]["model_version"] == 1
        assert reloaded[0]["previous_model_version"] == 0
