"""Service-level observability tests: /metrics scrape, traces, slow log.

Covers the acceptance criteria of the observability subsystem:

* the plain-HTTP ``/metrics`` listener serves valid Prometheus text whose
  families span all five layers (kernels, core, engine, service, offline);
* scraped counters are monotonic while concurrent query load is running;
* a sampled query trace's depth-0 stage durations sum to within 10% of
  its recorded end-to-end latency;
* the ``stats``/``metrics`` admin command is a pure read — scraping twice
  reports identical counters and never mutates the server's ServingStats;
* the ``slow``, ``traces``, and ``prometheus`` admin commands round-trip.
"""

from __future__ import annotations

import random
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine
from repro.service import ServiceClient, start_service_thread


@pytest.fixture(scope="module")
def engine():
    rng = random.Random(29)
    graphs = [
        random_labeled_graph(rng.randint(5, 9), rng.randint(5, 12), seed=rng)
        for _ in range(40)
    ]
    database = GraphDatabase(graphs, name="obs-service")
    search = GBDASearch(database, max_tau=4, num_prior_pairs=120, seed=7).fit()
    return BatchQueryEngine.from_search(search)


def _random_queries(num, seed):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 9), rng.randint(4, 12), seed=rng),
            rng.randint(1, 4),
            rng.choice([0.5, 0.75, 0.9]),
        )
        for _ in range(num)
    ]


@pytest.fixture(scope="module")
def handle(engine):
    with start_service_thread(
        engine,
        max_batch=8,
        max_delay_ms=1.0,
        trace_sample_rate=1.0,  # every query traced: deterministic assertions
        slow_query_ms=0.0,  # every query is "slow": the log always fills
        metrics_port=0,
    ) as running:
        yield running


def _scrape(handle) -> str:
    port = handle.service.metrics_http_port
    with urllib.request.urlopen(f"http://127.0.0.1:{port}/metrics", timeout=10) as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in response.headers["Content-Type"]
        return response.read().decode("utf-8")


def _sample_value(text: str, prefix: str) -> float:
    for line in text.splitlines():
        if line.startswith(prefix):
            return float(line.rsplit(" ", 1)[1])
    raise AssertionError(f"no sample starting with {prefix!r} in scrape")


class TestMetricsScrape:
    def test_scrape_covers_all_five_layers(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(16, seed=1))
        text = _scrape(handle)
        for family in (
            "repro_kernel_calls_total",  # db columnar kernels
            "repro_stage_seconds",  # execution core
            "repro_plan_choices_total",
            "repro_engine_queries_total",  # serving engine
            "repro_batcher_batch_size",  # service: batcher
            "repro_admission_admitted_total",  # service: admission
            "repro_service_requests_total",  # service: request handler
            "repro_offline_fits_total",  # offline (registered at import)
        ):
            assert f"# TYPE {family}" in text, f"{family} missing from scrape"
        assert _sample_value(text, 'repro_service_requests_total{outcome="answered"}') >= 16
        # Which compiled-kernel backend answered — an info-style gauge.
        assert _sample_value(text, "repro_kernel_backend_info{") == 1.0

    def test_http_404_for_unknown_path(self, handle):
        port = handle.service.metrics_http_port
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"http://127.0.0.1:{port}/nope", timeout=10)
        assert excinfo.value.code == 404

    def test_counters_are_monotonic_under_concurrent_load(self, handle):
        stop = threading.Event()

        def drive(seed):
            queries = _random_queries(6, seed)
            with ServiceClient(*handle.address) as client:
                while not stop.is_set():
                    client.query_many(queries, return_errors=True)

        drivers = [threading.Thread(target=drive, args=(seed,)) for seed in (11, 12)]
        for thread in drivers:
            thread.start()
        try:
            prefix = 'repro_service_requests_total{outcome="answered"}'
            previous = _sample_value(_scrape(handle), prefix)
            for _ in range(8):
                current = _sample_value(_scrape(handle), prefix)
                assert current >= previous
                previous = current
        finally:
            stop.set()
            for thread in drivers:
                thread.join()

    def test_prometheus_admin_command_matches_http(self, handle):
        with ServiceClient(*handle.address) as client:
            text = client.prometheus()
        assert "# TYPE repro_service_requests_total counter" in text


class TestTraces:
    def test_depth0_stages_sum_to_the_recorded_latency(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(8, seed=21))
            recent = client.traces(limit=8)["recent"]
        assert recent, "sample_rate=1.0 must retain traces"
        for doc in recent:
            total_ms = doc["total_ms"]
            depth0_ms = sum(
                span["duration_ms"] for span in doc["spans"] if span["depth"] == 0
            )
            assert total_ms > 0
            # Acceptance criterion: the handler-level stages partition the
            # end-to-end latency to within 10%.
            assert depth0_ms == pytest.approx(total_ms, rel=0.10)

    def test_traces_include_engine_substages(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(8, seed=22))
            recent = client.traces(limit=4)["recent"]
        names = {span["name"] for doc in recent for span in doc["spans"]}
        assert {"decode", "batcher", "serialize", "queue_wait", "score"} <= names

    def test_tracer_summary_counts(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(4, seed=23))
            summary = client.traces()["tracer"]
        assert summary["sample_rate"] == 1.0
        assert summary["sampled"] >= 4
        assert summary["seen"] >= summary["sampled"]


class TestSlowLogAndPurity:
    def test_slow_admin_command_returns_waterfalls(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(4, seed=31))
            slow = client.slow()
        assert slow["threshold_ms"] == 0.0
        assert slow["total_slow"] >= 4
        entry = slow["entries"][0]
        assert entry["latency_ms"] > 0
        assert "tau_hat" in entry["detail"]
        assert entry["trace"] is not None  # sample_rate=1.0: waterfall attached

    def test_metrics_is_a_pure_read(self, handle):
        with ServiceClient(*handle.address) as client:
            client.query_many(_random_queries(6, seed=41))
            first = client.stats()
            second = client.stats()
        for key in (
            "num_queries",
            "num_batches",
            "cache_hits",
            "cache_misses",
            "candidates_generated",
            "candidates_pruned",
            "candidates_verified",
        ):
            assert first["serving"][key] == second["serving"][key], key
        # The overlay never writes back: the server's own ServingStats only
        # ever holds what record_latency put there.
        stats = handle.service.stats
        assert stats.candidates_generated == 0
        assert stats.cache_hits == 0 and stats.cache_misses == 0
        assert stats.num_batches == 0
        # ... while the scrape reports the real engine-side counters.
        assert first["serving"]["candidates_generated"] > 0
        assert first["serving"]["num_batches"] > 0
        assert first["observability"]["tracer"]["sampled"] > 0
