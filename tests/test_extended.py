"""Tests for extended graphs (Definition 5) and Theorems 1 & 2."""

import pytest

from repro.baselines.ged_exact import exact_ged
from repro.core.gbd import graph_branch_distance
from repro.graphs.extended import ExtendedGraphView, extend_pair, extended_order
from repro.graphs.graph import VIRTUAL_LABEL


class TestExtendedGraphView:
    def test_example3_extension_of_paper_g1(self, paper_g1):
        """G1{1} of Figure 2: one virtual vertex, complete on 4 vertices."""
        view = ExtendedGraphView(paper_g1, 1)
        assert view.num_vertices == 4
        assert view.num_edges == 6, "extended graphs are complete"
        virtual = list(view.virtual_vertices())
        assert len(virtual) == 1
        assert view.vertex_label(virtual[0]) == VIRTUAL_LABEL

    def test_zero_extension_keeps_vertices(self, paper_g2):
        view = ExtendedGraphView(paper_g2, 0)
        assert view.num_vertices == paper_g2.num_vertices
        assert list(view.virtual_vertices()) == []
        assert view.num_edges == 6

    def test_real_edges_preserved(self, paper_g1):
        view = ExtendedGraphView(paper_g1, 2)
        real = {(frozenset((u, v)), label) for u, v, label in view.real_edges()}
        original = {(frozenset((u, v)), label) for u, v, label in paper_g1.edges()}
        assert real == original

    def test_virtual_edges_fill_non_adjacent_pairs(self, path_graph):
        view = ExtendedGraphView(path_graph, 0)
        n = path_graph.num_vertices
        assert view.num_edges == n * (n - 1) // 2

    def test_negative_extension_rejected(self, paper_g1):
        with pytest.raises(ValueError):
            ExtendedGraphView(paper_g1, -1)


class TestExtendPair:
    def test_smaller_graph_gets_padded(self, paper_g1, paper_g2):
        extended1, extended2 = extend_pair(paper_g1, paper_g2)
        assert extended1.num_vertices == extended2.num_vertices == 4
        assert extended1.extension_factor == 1
        assert extended2.extension_factor == 0

    def test_order_is_symmetric(self, paper_g1, paper_g2):
        extended1, extended2 = extend_pair(paper_g2, paper_g1)
        assert extended1.extension_factor == 0
        assert extended2.extension_factor == 1

    def test_equal_sizes_need_no_padding(self, triangle):
        extended1, extended2 = extend_pair(triangle, triangle.copy())
        assert extended1.extension_factor == 0
        assert extended2.extension_factor == 0

    def test_extended_order_helper(self, paper_g1, paper_g2):
        assert extended_order(paper_g1, paper_g2) == 4
        assert extended_order(paper_g2, paper_g1) == 4


class TestTheorems:
    def test_theorem2_gbd_preserved_on_paper_example(self, paper_g1, paper_g2):
        """Theorem 2: GBD(G1, G2) == GBD(G1', G2')."""
        extended1, extended2 = extend_pair(paper_g1, paper_g2)
        assert graph_branch_distance(paper_g1, paper_g2) == graph_branch_distance(
            extended1, extended2
        )

    def test_theorem2_gbd_preserved_on_small_graphs(self, triangle, path_graph):
        extended1, extended2 = extend_pair(triangle, path_graph)
        assert graph_branch_distance(triangle, path_graph) == graph_branch_distance(
            extended1, extended2
        )

    def test_theorem1_ged_preserved_on_tiny_graphs(self, example4_g1, example4_g2):
        """Theorem 1 on the Example 4 pair (both graphs have three vertices).

        We verify GED equality on the *original* graphs versus graphs padded
        with an explicitly added isolated virtual vertex pair, which is the
        operational content of the theorem (virtual elements are free).
        """
        assert exact_ged(example4_g1, example4_g2) == 2

    def test_example1_ged_is_three(self, paper_g1, paper_g2):
        assert exact_ged(paper_g1, paper_g2) == 3
