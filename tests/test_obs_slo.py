"""Unit tests for the burn-rate SLO engine (repro.obs.slo)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    STATE_OK,
    STATE_PAGE,
    STATE_WARN,
    SLOEngine,
    SLOTarget,
    error_rate_slo,
    latency_slo,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class CountSource:
    """Hand-driven cumulative (good, total) source."""

    def __init__(self):
        self.good = 0.0
        self.total = 0.0

    def __call__(self):
        return self.good, self.total

    def record(self, good: int, bad: int = 0) -> None:
        self.good += good
        self.total += good + bad


def _engine(clock, **kwargs):
    kwargs.setdefault("windows", (60.0, 600.0))
    kwargs.setdefault("registry", MetricsRegistry())
    return SLOEngine(clock=clock, **kwargs)


class TestSLOTarget:
    def test_error_budget(self):
        target = SLOTarget("t", 0.99, lambda: (0.0, 0.0))
        assert target.error_budget == pytest.approx(0.01)

    def test_objective_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            SLOTarget("t", 1.0, lambda: (0.0, 0.0))
        with pytest.raises(ValueError):
            SLOTarget("t", 0.0, lambda: (0.0, 0.0))

    def test_latency_slo_counts_buckets_at_or_under_threshold(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "h", buckets=(0.1, 0.25, 1.0))
        for value in (0.05, 0.2, 0.2, 0.9):
            histogram.observe(value)
        target = latency_slo("lat", histogram, 0.25, objective=0.9)
        good, total = target.counts()
        assert (good, total) == (3.0, 4.0)

    def test_latency_slo_threshold_below_all_bounds_rejected(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h2_seconds", "h", buckets=(0.1, 0.25))
        with pytest.raises(ValueError):
            latency_slo("lat", histogram, 0.01)

    def test_error_rate_slo_counts(self):
        target = error_rate_slo("avail", lambda: 10.0, lambda: 3.0, objective=0.9)
        assert target.counts() == (7.0, 10.0)


class TestBurnRates:
    def test_all_good_burns_zero(self):
        clock = FakeClock()
        source = CountSource()
        engine = _engine(clock)
        engine.add(SLOTarget("t", 0.99, source))
        source.record(good=100)
        report = engine.evaluate()
        objective = report["objectives"][0]
        assert objective["state"] == STATE_OK
        assert all(burn == 0.0 for burn in objective["burn_rates"].values())
        assert objective["compliance"] == 1.0
        assert objective["budget_remaining"] == 1.0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        clock = FakeClock()
        source = CountSource()
        engine = _engine(clock)
        engine.add(SLOTarget("t", 0.99, source))
        engine.evaluate()  # baseline sample at t=0
        clock.advance(30.0)
        source.record(good=90, bad=10)  # 10% bad, budget 1% -> burn 10
        report = engine.evaluate()
        burns = report["objectives"][0]["burn_rates"]
        assert burns["60s"] == pytest.approx(10.0)
        assert burns["600s"] == pytest.approx(10.0)

    def test_idle_window_burns_zero(self):
        clock = FakeClock()
        source = CountSource()
        engine = _engine(clock)
        engine.add(SLOTarget("t", 0.99, source))
        engine.evaluate()
        clock.advance(30.0)
        report = engine.evaluate()  # no traffic at all
        assert all(
            burn == 0.0 for burn in report["objectives"][0]["burn_rates"].values()
        )


class TestStateTransitions:
    def test_page_requires_every_window_burning(self):
        clock = FakeClock()
        source = CountSource()
        engine = _engine(clock)
        engine.add(SLOTarget("t", 0.99, source))
        # Good traffic inside the long window dilutes its burn below the page
        # threshold: a page needs the damage to be sustained, not just recent.
        engine.evaluate()
        clock.advance(30.0)
        source.record(good=10000)
        engine.evaluate()
        clock.advance(510.0)
        engine.evaluate()
        clock.advance(30.0)
        source.record(good=0, bad=50)  # short window 100% bad
        report = engine.evaluate()
        objective = report["objectives"][0]
        assert objective["burn_rates"]["60s"] == pytest.approx(100.0)
        assert objective["burn_rates"]["600s"] < 2.0
        assert objective["state"] == STATE_OK

    def test_ok_warn_page_and_recovery(self):
        clock = FakeClock()
        source = CountSource()
        engine = _engine(clock)
        engine.add(SLOTarget("t", 0.99, source))
        engine.evaluate()
        assert engine.state("t") == STATE_OK

        clock.advance(30.0)
        source.record(good=96, bad=4)  # 4% bad -> burn 4: warn, not page
        engine.evaluate()
        assert engine.state("t") == STATE_WARN

        clock.advance(30.0)
        source.record(good=0, bad=100)  # sustained 100% bad -> page everywhere
        engine.evaluate()
        assert engine.state("t") == STATE_PAGE

        # Recovery: enough clean traffic pushes every window back under warn.
        clock.advance(700.0)
        source.record(good=100000)
        engine.evaluate()
        assert engine.state("t") == STATE_OK

        transitions = engine.transitions("t")
        assert [(t["from"], t["to"]) for t in transitions] == [
            (STATE_OK, STATE_WARN),
            (STATE_WARN, STATE_PAGE),
            (STATE_PAGE, STATE_OK),
        ]

    def test_on_transition_callback_fires(self):
        clock = FakeClock()
        source = CountSource()
        seen = []
        engine = _engine(
            clock, on_transition=lambda *args: seen.append(args)
        )
        engine.add(SLOTarget("t", 0.99, source))
        engine.evaluate()
        clock.advance(30.0)
        source.record(good=0, bad=100)
        engine.evaluate()
        assert len(seen) == 1
        name, old_state, new_state, burns = seen[0]
        assert (name, old_state, new_state) == ("t", STATE_OK, STATE_PAGE)
        assert burns["60s"] >= 10.0


class TestEngineSurface:
    def test_gauges_exported_to_registry(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        source = CountSource()
        engine = _engine(clock, registry=registry)
        engine.add(SLOTarget("t", 0.99, source))
        engine.evaluate()
        clock.advance(30.0)
        source.record(good=0, bad=10)
        engine.evaluate()
        burn = registry.get("repro_slo_burn_rate").labels(slo="t", window="60s").value
        state = registry.get("repro_slo_state").labels(slo="t").value
        assert burn == pytest.approx(100.0)
        assert state == 2.0

    def test_add_is_idempotent_per_name(self):
        engine = _engine(FakeClock())
        first = CountSource()
        engine.add(SLOTarget("t", 0.99, first))
        engine.add(SLOTarget("t", 0.5, CountSource()))
        assert len(engine.targets) == 1
        assert engine.targets[0].objective == 0.99

    def test_report_shape(self):
        engine = _engine(FakeClock())
        engine.add(SLOTarget("t", 0.99, CountSource(), description="desc"))
        report = engine.evaluate()
        assert report["windows_seconds"] == [60.0, 600.0]
        objective = report["objectives"][0]
        assert objective["name"] == "t"
        assert objective["description"] == "desc"
        assert set(objective["burn_rates"]) == {"60s", "600s"}

    def test_validation(self):
        with pytest.raises(ValueError):
            SLOEngine(windows=())
        with pytest.raises(ValueError):
            SLOEngine(warn_burn=5.0, page_burn=2.0)
