"""Tests for the GBDA search (Algorithm 1) and its ablation variants."""

import pytest

from repro.core.search import GBDASearch
from repro.core.variants import GBDAV1Search, GBDAV2Search
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import SearchError
from repro.graphs.generators import random_labeled_graph


@pytest.fixture(scope="module")
def family_database():
    """A base graph plus perturbed copies at increasing distance, plus outliers."""
    base = random_labeled_graph(12, 16, seed=5, name="base")
    graphs = [base]
    # near neighbours: relabel k edges for k = 1..4
    edges = list(base.edges())
    for k in range(1, 5):
        variant = base.copy(name=f"variant{k}")
        for u, v, _label in edges[:k]:
            variant.relabel_edge(u, v, f"mut{k}")
        graphs.append(variant)
    # far outliers with disjoint labels
    for s in range(5):
        graphs.append(
            random_labeled_graph(
                14, 20, seed=100 + s, vertex_labels=["Q1", "Q2"], edge_labels=["qq"], name=f"far{s}"
            )
        )
    return GraphDatabase(graphs, name="family")


@pytest.fixture(scope="module")
def fitted(family_database):
    return GBDASearch(family_database, max_tau=6, num_prior_pairs=60, seed=0).fit()


class TestOfflineStage:
    def test_fit_builds_priors_and_estimator(self, fitted):
        assert fitted.is_fitted
        assert fitted.gbd_prior.is_fitted
        assert fitted.ged_prior.is_fitted
        assert fitted.offline_seconds > 0.0

    def test_query_before_fit_rejected(self, family_database):
        search = GBDASearch(family_database, max_tau=3, num_prior_pairs=10)
        with pytest.raises(SearchError):
            search.search(family_database[0].graph, tau_hat=1)

    def test_empty_database_rejected(self):
        with pytest.raises(SearchError):
            GBDASearch(GraphDatabase([]), max_tau=3)

    def test_threshold_beyond_precomputed_maximum_rejected(self, fitted, family_database):
        with pytest.raises(SearchError):
            fitted.search(family_database[0].graph, tau_hat=99)


class TestOnlineStage:
    def test_query_itself_is_accepted(self, fitted, family_database):
        base = family_database[0].graph
        answer = fitted.search(base, tau_hat=2, gamma=0.5)
        assert 0 in answer.accepted_ids, "the identical graph must be returned"

    def test_far_outliers_are_rejected(self, fitted, family_database):
        base = family_database[0].graph
        answer = fitted.search(base, tau_hat=2, gamma=0.5)
        outlier_ids = {entry.graph_id for entry in family_database if entry.name.startswith("far")}
        assert not answer.accepted_ids & outlier_ids

    def test_posteriors_decrease_with_distance(self, fitted, family_database):
        base = family_database[0].graph
        result = fitted.query(SimilarityQuery(base, tau_hat=3, gamma=0.5))
        posterior_base = result.posteriors[0]
        posterior_far = max(
            result.posteriors[entry.graph_id]
            for entry in family_database
            if entry.name.startswith("far")
        )
        assert posterior_base > posterior_far

    def test_gbd_values_reported_for_every_graph(self, fitted, family_database):
        base = family_database[0].graph
        result = fitted.query(SimilarityQuery(base, tau_hat=3, gamma=0.5))
        assert set(result.gbd_values) == {entry.graph_id for entry in family_database}
        assert result.gbd_values[0] == 0

    def test_larger_gamma_gives_smaller_answer(self, fitted, family_database):
        base = family_database[0].graph
        loose = fitted.search(base, tau_hat=4, gamma=0.3)
        strict = fitted.search(base, tau_hat=4, gamma=0.95)
        assert strict.accepted_ids <= loose.accepted_ids

    def test_larger_threshold_gives_larger_answer(self, fitted, family_database):
        base = family_database[0].graph
        small = fitted.search(base, tau_hat=1, gamma=0.5)
        large = fitted.search(base, tau_hat=6, gamma=0.5)
        assert small.accepted_ids <= large.accepted_ids

    def test_answer_metadata(self, fitted, family_database):
        answer = fitted.search(family_database[0].graph, tau_hat=2, gamma=0.5)
        assert answer.method == "GBDA"
        assert answer.elapsed_seconds >= 0.0
        assert set(answer.scores) == {entry.graph_id for entry in family_database}

    def test_posterior_for_pair_helper(self, fitted, family_database):
        value = fitted.posterior_for_pair(family_database[0].graph, 0, tau_hat=2)
        assert 0.0 <= value <= 1.0

    def test_index_pruning_gives_same_accepts_for_true_neighbors(self, family_database):
        base = family_database[0].graph
        plain = GBDASearch(family_database, max_tau=4, num_prior_pairs=60, seed=0).fit()
        pruned = GBDASearch(
            family_database, max_tau=4, num_prior_pairs=60, seed=0, use_index_pruning=True
        ).fit()
        answer_plain = plain.search(base, tau_hat=2, gamma=0.5)
        answer_pruned = pruned.search(base, tau_hat=2, gamma=0.5)
        # Pruning only removes graphs with GBD > 2τ̂, which the probabilistic
        # filter would also reject, so accepted sets agree.
        assert answer_plain.accepted_ids == answer_pruned.accepted_ids

    def test_index_pruning_enabled_before_fit_builds_index(self, family_database):
        search = GBDASearch(
            family_database, max_tau=4, num_prior_pairs=60, seed=0, use_index_pruning=True
        ).fit()
        assert search._index is not None
        result = search.query(SimilarityQuery(family_database[0].graph, 2, 0.5))
        # pruned graphs are never scored, so far outliers are absent
        assert len(result.posteriors) < len(family_database)
        assert 0 in result.accepted_ids

    def test_index_pruning_enabled_after_fit_builds_index_lazily(self, family_database):
        """Regression: flipping the flag post-fit used to silently full-scan."""
        base = family_database[0].graph
        search = GBDASearch(family_database, max_tau=4, num_prior_pairs=60, seed=0).fit()
        assert search._index is None
        full = search.query(SimilarityQuery(base, 2, 0.5))
        assert len(full.posteriors) == len(family_database)

        search.use_index_pruning = True
        pruned = search.query(SimilarityQuery(base, 2, 0.5))
        assert search._index is not None, "first pruned query must build the index"
        # the pruned scan actually skips GBD > 2τ̂ graphs instead of scoring all
        assert len(pruned.posteriors) < len(family_database)
        assert pruned.accepted_ids == full.accepted_ids

    def test_index_pruning_orderings_agree(self, family_database):
        base = family_database[0].graph
        fit_first = GBDASearch(family_database, max_tau=4, num_prior_pairs=60, seed=0).fit()
        fit_first.use_index_pruning = True
        flag_first = GBDASearch(
            family_database, max_tau=4, num_prior_pairs=60, seed=0, use_index_pruning=True
        ).fit()
        for tau_hat in (1, 2, 4):
            a = fit_first.query(SimilarityQuery(base, tau_hat, 0.5))
            b = flag_first.query(SimilarityQuery(base, tau_hat, 0.5))
            assert a.accepted_ids == b.accepted_ids
            assert a.posteriors == b.posteriors


class TestVariants:
    def test_v1_uses_fixed_extended_order(self, family_database):
        search = GBDAV1Search(family_database, alpha=5, max_tau=4, num_prior_pairs=60, seed=0).fit()
        assert search.fixed_extended_order >= 1
        answer = search.search(family_database[0].graph, tau_hat=2, gamma=0.5)
        assert answer.method == "GBDA-V1"
        assert 0 in answer.accepted_ids

    def test_v1_invalid_alpha(self, family_database):
        with pytest.raises(SearchError):
            GBDAV1Search(family_database, alpha=0)

    def test_v2_uses_weighted_distance(self, family_database):
        search = GBDAV2Search(
            family_database, weight=0.5, max_tau=4, num_prior_pairs=60, seed=0
        ).fit()
        answer = search.search(family_database[0].graph, tau_hat=2, gamma=0.5)
        assert answer.method == "GBDA-V2"
        result = search.query(SimilarityQuery(family_database[0].graph, 2, 0.5))
        # with w = 0.5 the "distance" of the identical graph is n/2, not 0
        assert result.gbd_values[0] > 0

    def test_v2_invalid_weight(self, family_database):
        with pytest.raises(SearchError):
            GBDAV2Search(family_database, weight=-1.0)

    def test_v2_weight_one_behaves_like_gbda_on_distances(self, family_database):
        search = GBDAV2Search(
            family_database, weight=1.0, max_tau=4, num_prior_pairs=60, seed=0
        ).fit()
        result = search.query(SimilarityQuery(family_database[0].graph, 2, 0.5))
        assert result.gbd_values[0] == 0

    def test_variants_threshold_guard(self, family_database):
        search = GBDAV1Search(family_database, alpha=3, max_tau=2, num_prior_pairs=30, seed=0).fit()
        with pytest.raises(SearchError):
            search.search(family_database[0].graph, tau_hat=5)
