"""Tests for the Graph Branch Distance (Definition 4) and its variant."""

import pytest

from repro.core.branches import branch_multiset
from repro.core.gbd import (
    branch_intersection_size,
    gbd_upper_bound_on_ged,
    graph_branch_distance,
    variant_graph_branch_distance,
)
from repro.graphs.graph import Graph


class TestGraphBranchDistance:
    def test_paper_example2_value(self, paper_g1, paper_g2):
        """Example 2: GBD(G1, G2) = max(3, 4) - 1 = 3."""
        assert graph_branch_distance(paper_g1, paper_g2) == 3

    def test_symmetry(self, paper_g1, paper_g2):
        assert graph_branch_distance(paper_g1, paper_g2) == graph_branch_distance(
            paper_g2, paper_g1
        )

    def test_identity(self, paper_g1):
        assert graph_branch_distance(paper_g1, paper_g1.copy()) == 0

    def test_precomputed_branches_give_same_answer(self, paper_g1, paper_g2):
        b1, b2 = branch_multiset(paper_g1), branch_multiset(paper_g2)
        assert (
            graph_branch_distance(paper_g1, paper_g2, branches1=b1, branches2=b2)
            == graph_branch_distance(paper_g1, paper_g2)
        )

    def test_single_relabel_changes_gbd_by_at_most_two(self, triangle):
        other = triangle.copy()
        other.relabel_edge(0, 1, "w")
        assert 1 <= graph_branch_distance(triangle, other) <= 2

    def test_disjoint_label_sets_give_maximal_distance(self):
        g1 = Graph.from_dicts({0: "A", 1: "A"}, {(0, 1): "x"})
        g2 = Graph.from_dicts({0: "B", 1: "B", 2: "B"}, {(0, 1): "y"})
        assert graph_branch_distance(g1, g2) == 3

    def test_empty_graphs(self):
        assert graph_branch_distance(Graph(), Graph()) == 0

    def test_empty_versus_nonempty(self, triangle):
        assert graph_branch_distance(Graph(), triangle) == 3

    def test_value_bounded_by_larger_vertex_count(self, paper_g1, paper_g2):
        assert 0 <= graph_branch_distance(paper_g1, paper_g2) <= 4

    def test_example4_pair(self, example4_g1, example4_g2):
        """Example 4: swapping the two edge labels changes both end branches."""
        assert graph_branch_distance(example4_g1, example4_g2) == 2


class TestBranchIntersectionSize:
    def test_matches_counter_intersection(self, paper_g1, paper_g2):
        counts1, counts2 = branch_multiset(paper_g1), branch_multiset(paper_g2)
        assert branch_intersection_size(counts1, counts2) == sum((counts1 & counts2).values())

    def test_order_independent(self, paper_g1, paper_g2):
        counts1, counts2 = branch_multiset(paper_g1), branch_multiset(paper_g2)
        assert branch_intersection_size(counts1, counts2) == branch_intersection_size(
            counts2, counts1
        )

    def test_self_intersection_is_vertex_count(self, paper_g2):
        counts = branch_multiset(paper_g2)
        assert branch_intersection_size(counts, counts) == 4


class TestVariantGBD:
    def test_weight_one_equals_gbd(self, paper_g1, paper_g2):
        assert variant_graph_branch_distance(paper_g1, paper_g2, 1.0) == pytest.approx(
            graph_branch_distance(paper_g1, paper_g2)
        )

    def test_weight_zero_ignores_intersection(self, paper_g1, paper_g2):
        assert variant_graph_branch_distance(paper_g1, paper_g2, 0.0) == pytest.approx(4.0)

    def test_paper_equation26_with_half_weight(self, paper_g1, paper_g2):
        assert variant_graph_branch_distance(paper_g1, paper_g2, 0.5) == pytest.approx(3.5)

    def test_negative_weight_rejected(self, paper_g1, paper_g2):
        with pytest.raises(ValueError):
            variant_graph_branch_distance(paper_g1, paper_g2, -0.1)


class TestGbdGedRelation:
    def test_gbd_at_most_twice_exact_ged_on_paper_example(self, paper_g1, paper_g2):
        from repro.baselines.ged_exact import exact_ged

        gbd = graph_branch_distance(paper_g1, paper_g2)
        ged = exact_ged(paper_g1, paper_g2)
        assert gbd <= 2 * ged

    def test_lower_bound_helper(self):
        assert gbd_upper_bound_on_ged(0) == 0
        assert gbd_upper_bound_on_ged(3) == 2
        assert gbd_upper_bound_on_ged(4) == 2
