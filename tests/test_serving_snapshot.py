"""Tests for serving-engine snapshots (repro.serving.snapshot)."""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import SnapshotCorruptError, SnapshotError
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine, load_engine, save_engine
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    _FOOTER_MAGIC,
    _FOOTER_STRUCT,
)


@pytest.fixture(scope="module")
def fitted_engine():
    rng = random.Random(23)
    graphs = [
        random_labeled_graph(rng.randint(5, 8), rng.randint(5, 10), seed=rng)
        for _ in range(30)
    ]
    database = GraphDatabase(graphs, name="snapshot-db")
    search = GBDASearch(database, max_tau=4, num_prior_pairs=120, seed=9).fit()
    engine = BatchQueryEngine.from_search(search, keep_scores="all")
    engine.warm([1, 2, 3])
    return engine


def _queries(seed, num=10):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 9), rng.randint(4, 12), seed=rng),
            rng.randint(1, 4),
            rng.choice([0.3, 0.6, 0.9]),
        )
        for _ in range(num)
    ]


class TestRoundTrip:
    def test_identical_posteriors_without_fit(self, fitted_engine, tmp_path):
        """save → load reproduces bit-identical posteriors, never calling fit()."""
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        loaded = load_engine(path)

        for query in _queries(seed=31):
            original = fitted_engine.query(query)
            restored = loaded.query(query)
            assert restored.accepted_ids == original.accepted_ids
            assert restored.scores == original.scores  # keep_scores="all" → exact floats

    def test_database_and_config_survive(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        fitted_engine.save(path)
        loaded = BatchQueryEngine.load(path)
        assert len(loaded.database) == len(fitted_engine.database)
        assert loaded.database.name == fitted_engine.database.name
        assert loaded.max_tau == fitted_engine.max_tau
        assert loaded.keep_scores == fitted_engine.keep_scores
        assert loaded.database[0].branches == fitted_engine.database[0].branches

    def test_materialised_tables_survive(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        loaded = load_engine(path)
        assert loaded.num_cached_tables == fitted_engine.num_cached_tables

    def test_loaded_priors_match(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        loaded = load_engine(path)
        original = fitted_engine.estimator
        restored = loaded.estimator
        for phi in range(10):
            assert restored.gbd_prior.probability(phi) == original.gbd_prior.probability(phi)
        for tau in range(5):
            assert restored.ged_prior.probability(tau, 7) == original.ged_prior.probability(tau, 7)


class TestVersioning:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            load_engine(tmp_path / "nope.snapshot")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "garbage.snapshot"
        path.write_bytes(b"not a pickle at all")
        with pytest.raises(SnapshotError):
            load_engine(path)

    def test_foreign_pickle_is_rejected(self, tmp_path):
        path = tmp_path / "foreign.snapshot"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(SnapshotError):
            load_engine(path)

    def test_future_version_is_rejected(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        payload = pickle.loads(path.read_bytes())
        assert payload["format"] == SNAPSHOT_FORMAT
        payload["version"] = SNAPSHOT_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        with pytest.raises(SnapshotError):
            load_engine(path)

    def test_version_1_snapshot_still_loads(self, fitted_engine, tmp_path):
        """Format version 2 only adds fields; v1 files (no model_version,

        no prior seed state) must keep loading with the documented defaults.
        """
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        payload = pickle.loads(path.read_bytes())
        payload["version"] = 1
        payload.pop("model_version")
        for key in ("seed", "seed_rng_state", "backend"):
            payload["gbd_prior"].pop(key, None)
        for key in ("seed", "rng_state", "backend"):
            payload["gbd_prior"]["mixture"].pop(key, None)
        path.write_bytes(pickle.dumps(payload))
        engine = load_engine(path)
        assert engine.model_version == 0
        assert len(engine.database) == len(fitted_engine.database)


class TestIntegrity:
    """Crash-safe writes and the sha256 integrity footer."""

    def test_snapshot_carries_the_footer(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        blob = path.read_bytes()
        assert blob.endswith(_FOOTER_MAGIC)
        digest, length, magic = _FOOTER_STRUCT.unpack(blob[-_FOOTER_STRUCT.size:])
        assert magic == _FOOTER_MAGIC
        assert length == len(blob) - _FOOTER_STRUCT.size

    def test_truncated_file_is_rejected(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        blob = path.read_bytes()
        # Cut bytes out of the payload but keep the footer intact — the
        # recorded length no longer matches.
        torn = blob[: len(blob) // 2] + blob[-_FOOTER_STRUCT.size:]
        path.write_bytes(torn)
        with pytest.raises(SnapshotCorruptError, match="truncated"):
            load_engine(path)

    def test_bit_flip_is_rejected(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 3] ^= 0x01  # a single flipped bit in the payload
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotCorruptError, match="integrity"):
            load_engine(path)

    def test_corrupt_error_subclasses_snapshot_error(self, fitted_engine, tmp_path):
        # Pre-existing callers catch SnapshotError; corruption must not
        # escape that net.
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        blob = bytearray(path.read_bytes())
        blob[10] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            load_engine(path)

    def test_footer_less_legacy_snapshot_still_loads(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: -_FOOTER_STRUCT.size])  # strip → pre-footer file
        engine = load_engine(path)
        assert len(engine.database) == len(fitted_engine.database)

    def test_all_versions_round_trip_through_the_footer(self, fitted_engine, tmp_path):
        """Rewriting any v1–v4 payload with the footer appended loads fine —
        the footer sits after the pickle stream and never touches it."""
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        base = pickle.loads(path.read_bytes())  # pickle ignores the footer
        for version in range(1, SNAPSHOT_VERSION + 1):
            payload = dict(base)
            payload["version"] = version
            blob = pickle.dumps(payload)
            import hashlib

            footer = _FOOTER_STRUCT.pack(
                hashlib.sha256(blob).digest(), len(blob), _FOOTER_MAGIC
            )
            versioned = tmp_path / f"engine.v{version}.snapshot"
            versioned.write_bytes(blob + footer)
            engine = load_engine(versioned)
            assert len(engine.database) == len(fitted_engine.database)

    def test_atomic_write_leaves_no_temp_file(self, fitted_engine, tmp_path):
        save_engine(fitted_engine, tmp_path / "engine.snapshot")
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "engine.snapshot"]
        assert leftovers == []

    def test_failed_save_preserves_the_previous_snapshot(self, fitted_engine, tmp_path):
        path = tmp_path / "engine.snapshot"
        save_engine(fitted_engine, path)
        good = path.read_bytes()

        class NotAnInt:
            def __int__(self):
                raise RuntimeError("cannot serialize")

        engine = load_engine(path)
        engine.model_version = NotAnInt()  # poisons payload assembly
        with pytest.raises(RuntimeError):
            save_engine(engine, path)
        assert path.read_bytes() == good, "a failed save must never touch the old file"
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "engine.snapshot"]
        assert leftovers == []
