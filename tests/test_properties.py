"""Property-based tests (hypothesis) on the core data structures and invariants."""

import random
from fractions import Fraction

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assignment.greedy import sorted_greedy_assignment
from repro.assignment.hungarian import assignment_cost, hungarian
from repro.core.branches import branch_multiset
from repro.core.gbd import branch_intersection_size, graph_branch_distance
from repro.core.model import BranchEditModel
from repro.core.omegas import omega1, omega2, omega3, omega4
from repro.graphs.edit_ops import EditPath, RelabelEdge, RelabelVertex
from repro.graphs.generators import random_labeled_graph
from repro.graphs.graph import Graph
from repro.stats.distributions import continuity_corrected_pmf

# Strategy: a reproducible random labeled graph described by (n, edge factor, seed).
graph_params = st.tuples(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=10**6),
)


def _graph_from_params(params) -> Graph:
    n, extra_edges, seed = params
    return random_labeled_graph(n, n - 1 + extra_edges, seed=seed)


class TestGraphInvariants:
    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_handshake_lemma(self, params):
        graph = _graph_from_params(params)
        assert sum(graph.degree(v) for v in graph.vertices()) == 2 * graph.num_edges

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_copy_equals_original(self, params):
        graph = _graph_from_params(params)
        assert graph.copy() == graph

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_branch_multiset_size_equals_vertex_count(self, params):
        graph = _graph_from_params(params)
        assert sum(branch_multiset(graph).values()) == graph.num_vertices

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_branch_degrees_sum_to_twice_edges(self, params):
        graph = _graph_from_params(params)
        total_degree = sum(len(key[1]) * count for key, count in branch_multiset(graph).items())
        assert total_degree == 2 * graph.num_edges


class TestGBDInvariants:
    @given(graph_params, graph_params)
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, params_a, params_b):
        g1, g2 = _graph_from_params(params_a), _graph_from_params(params_b)
        assert graph_branch_distance(g1, g2) == graph_branch_distance(g2, g1)

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_identity_of_indiscernibles(self, params):
        graph = _graph_from_params(params)
        assert graph_branch_distance(graph, graph.copy()) == 0

    @given(graph_params, graph_params)
    @settings(max_examples=30, deadline=None)
    def test_range(self, params_a, params_b):
        g1, g2 = _graph_from_params(params_a), _graph_from_params(params_b)
        value = graph_branch_distance(g1, g2)
        assert 0 <= value <= max(g1.num_vertices, g2.num_vertices)

    @given(graph_params, st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=30, deadline=None)
    def test_k_relabels_change_gbd_by_at_most_2k(self, params, num_edits, edit_seed):
        """One edit operation changes at most two branches (Section VI-C.2)."""
        graph = _graph_from_params(params)
        rng = random.Random(edit_seed)
        edited = graph.copy()
        operations = []
        vertices = list(edited.vertices())
        edges = list(edited.edges())
        applied = 0
        for _ in range(num_edits):
            if edges and rng.random() < 0.5:
                u, v, _label = rng.choice(edges)
                operations.append(RelabelEdge(u, v, f"fresh{applied}"))
            elif vertices:
                operations.append(RelabelVertex(rng.choice(vertices), f"fresh{applied}"))
            applied += 1
        for operation in operations:
            try:
                operation.apply(edited)
            except Exception:
                pass
        assert graph_branch_distance(graph, edited) <= 2 * num_edits

    @given(graph_params, graph_params)
    @settings(max_examples=20, deadline=None)
    def test_intersection_bounded_by_smaller_multiset(self, params_a, params_b):
        g1, g2 = _graph_from_params(params_a), _graph_from_params(params_b)
        counts1, counts2 = branch_multiset(g1), branch_multiset(g2)
        intersection = branch_intersection_size(counts1, counts2)
        assert intersection <= min(g1.num_vertices, g2.num_vertices)


class TestModelInvariants:
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_lambda1_rows_are_distributions(self, order, tau, lv, le):
        model = BranchEditModel(order, lv, le)
        if tau > model.editable_elements():
            # GED = τ is infeasible on extended graphs of this order: the
            # conditional has no support and the whole row is zero.
            assert sum(model.conditional_row(tau)) == 0.0
            return
        row = model.conditional_row(tau)
        assert all(value >= 0 for value in row)
        assert sum(row) == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_omega1_normalised(self, order, tau):
        total = sum(omega1(x, tau, order) for x in range(tau + 1))
        if tau <= order + order * (order - 1) // 2:
            assert total == Fraction(1)

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_omega2_normalised(self, order, tau, x):
        if x > tau:
            return
        total = sum(omega2(m, x, tau, order) for m in range(order + 1))
        max_edges = order * (order - 1) // 2
        if tau - x <= max_edges:
            assert total == Fraction(1)

    @given(st.integers(min_value=0, max_value=8), st.integers(min_value=2, max_value=1000))
    @settings(max_examples=30, deadline=None)
    def test_omega3_normalised(self, r, branch_types):
        total = sum(omega3(r, phi, branch_types) for phi in range(r + 1))
        assert total == Fraction(1)

    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_omega4_normalised(self, order, x, m):
        if x > order or m > order:
            return
        total = sum(omega4(x, r, m, order) for r in range(order + 1))
        assert total == Fraction(1)


class TestAssignmentInvariants:
    @given(
        st.lists(
            st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=4, max_size=4),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hungarian_is_never_beaten_by_greedy(self, matrix):
        optimal = assignment_cost(matrix, hungarian(matrix))
        greedy = assignment_cost(matrix, sorted_greedy_assignment(matrix))
        assert optimal <= greedy + 1e-6

    @given(
        st.lists(
            st.lists(st.floats(min_value=0, max_value=100, allow_nan=False), min_size=5, max_size=5),
            min_size=3,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_hungarian_produces_valid_matching(self, matrix):
        assignment = hungarian(matrix)
        assert len(assignment) == len(matrix)
        assert len(set(assignment)) == len(assignment)


class TestEditPathInvariants:
    @given(graph_params, st.integers(min_value=0, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_edit_path_length_upper_bounds_gbd_over_two(self, params, num_relabels):
        """Applying k relabels yields a graph within GBD ≤ 2k of the original."""
        graph = _graph_from_params(params)
        vertices = list(graph.vertices())
        path = EditPath(
            [RelabelVertex(vertices[i % len(vertices)], f"label{i}") for i in range(num_relabels)]
        )
        try:
            edited = path.apply_to(graph)
        except Exception:
            return
        assert graph_branch_distance(graph, edited) <= 2 * len(path)


class TestDistributionInvariants:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1.0, allow_nan=False), min_size=1, max_size=4),
        st.lists(st.floats(min_value=-5, max_value=25, allow_nan=False), min_size=1, max_size=4),
        st.lists(st.floats(min_value=0.3, max_value=4.0, allow_nan=False), min_size=1, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_continuity_correction_total_mass(self, raw_weights, means, stds):
        k = min(len(raw_weights), len(means), len(stds))
        weights = raw_weights[:k]
        total_weight = sum(weights)
        weights = [w / total_weight for w in weights]
        total = sum(
            continuity_corrected_pmf(value, weights, means[:k], stds[:k]) for value in range(-40, 60)
        )
        assert total == pytest.approx(1.0, abs=1e-3)
