"""Unit + integration suite for the resilience primitives (repro.service.resilience).

Covers the deterministic building blocks in isolation — RetryPolicy
backoff math and seeded jitter, the CircuitBreaker state machine,
Deadline budgets, the server-side IdempotencyCache — and then the client
behaviours built on them against real sockets: connect/read timeouts
versus a hung server, retry-on-overload convergence, idempotent dedupe
across a retried stream, and breaker fast-fails.
"""

from __future__ import annotations

import asyncio
import random
import socket
import threading
import time

import pytest

from repro.core.search import GBDASearch
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery
from repro.exceptions import (
    CircuitOpenError,
    ConnectionLostError,
    DeadlineExceededError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graphs.generators import random_labeled_graph
from repro.serving import BatchQueryEngine
from repro.service import (
    AsyncServiceClient,
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    IdempotencyCache,
    RetryPolicy,
    ServiceClient,
    start_service_thread,
)


# ---------------------------------------------------------------------- #
# fixtures
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def engine():
    rng = random.Random(71)
    graphs = [
        random_labeled_graph(rng.randint(5, 9), rng.randint(5, 12), seed=rng)
        for _ in range(40)
    ]
    database = GraphDatabase(graphs, name="resilience")
    fitted = GBDASearch(database, max_tau=4, num_prior_pairs=120, seed=7).fit()
    return BatchQueryEngine.from_search(fitted)


def _queries(num, seed):
    rng = random.Random(seed)
    return [
        SimilarityQuery(
            random_labeled_graph(rng.randint(4, 8), rng.randint(4, 10), seed=rng),
            rng.randint(0, 4),
            rng.choice([0.5, 0.75, 0.9]),
        )
        for _ in range(num)
    ]


@pytest.fixture()
def hung_server():
    """A listener that accepts connections and then never says anything."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    accepted = []
    stop = threading.Event()

    def accept_loop():
        listener.settimeout(0.1)
        while not stop.is_set():
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            accepted.append(conn)

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    try:
        yield listener.getsockname()
    finally:
        stop.set()
        thread.join(timeout=5)
        for conn in accepted:
            try:
                conn.close()
            except OSError:
                pass
        listener.close()


# ---------------------------------------------------------------------- #
# Deadline
# ---------------------------------------------------------------------- #
class TestDeadline:
    def test_budget_counts_down(self):
        deadline = Deadline.after_ms(10_000)
        assert not deadline.expired
        assert 0 < deadline.remaining() <= 10.0
        assert 0 < deadline.remaining_ms() <= 10_000.0

    def test_expiry(self):
        deadline = Deadline.after_ms(1000, clock=time.monotonic() - 2.0)
        assert deadline.expired
        assert deadline.remaining_ms() < 0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ServiceError):
            Deadline.after_ms(0)
        with pytest.raises(ServiceError):
            Deadline.after_ms(-5)


# ---------------------------------------------------------------------- #
# RetryPolicy
# ---------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_seeded_jitter_is_deterministic(self):
        a = RetryPolicy(seed=11)
        b = RetryPolicy(seed=11)
        assert [a.delay_for(i) for i in a.attempts()] == [
            b.delay_for(i) for i in b.attempts()
        ]

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay_ms=10, max_delay_ms=50, jitter=0.0
        )
        delays = [policy.delay_for(attempt) for attempt in policy.attempts()]
        assert delays[:3] == [0.010, 0.020, 0.040]
        assert all(delay == 0.050 for delay in delays[3:])

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay_ms=100, jitter=0.5, seed=3)
        for _ in range(50):
            delay = policy.delay_for(1)
            assert 0.05 <= delay <= 0.1

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.is_retryable(ServiceOverloadedError("shed"))
        assert policy.is_retryable(DeadlineExceededError("late"))
        assert policy.is_retryable(TimeoutError("slow"))
        assert policy.is_retryable(ConnectionResetError("reset"))
        assert policy.is_retryable(ConnectionLostError("poisoned"))
        assert not policy.is_retryable(ProtocolError("bad request"))
        assert not policy.is_retryable(ServiceError("scoring failed"))
        # The breaker exists to stop retries: never retry its rejections.
        assert not policy.is_retryable(CircuitOpenError("open"))

    def test_invalid_knobs(self):
        with pytest.raises(ServiceError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ServiceError):
            RetryPolicy(base_delay_ms=-1)
        with pytest.raises(ServiceError):
            RetryPolicy(jitter=1.5)


# ---------------------------------------------------------------------- #
# CircuitBreaker
# ---------------------------------------------------------------------- #
class TestCircuitBreaker:
    def test_opens_at_threshold_and_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_ms=60_000)
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.check()
        assert breaker.as_dict()["fast_failures"] == 1

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_ms=20)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        time.sleep(0.03)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the single probe is claimed...
        assert not breaker.allow()  # ...and concurrent attempts still fail fast
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout_ms=20)
        for _ in range(5):
            breaker.record_failure()
        time.sleep(0.03)
        assert breaker.allow()  # half-open probe
        breaker.record_failure()  # probe failed → straight back to open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.as_dict()["opened"] == 2

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_invalid_knobs(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ServiceError):
            CircuitBreaker(reset_timeout_ms=0)


# ---------------------------------------------------------------------- #
# HedgePolicy
# ---------------------------------------------------------------------- #
class TestHedgePolicy:
    def test_floor_until_enough_samples(self):
        policy = HedgePolicy(min_delay_ms=25, min_samples=4)
        assert policy.hedge_delay() == 0.025
        policy.observe(0.5)
        assert policy.hedge_delay() == 0.025

    def test_percentile_of_the_window(self):
        policy = HedgePolicy(percentile=90, min_delay_ms=0.1, min_samples=10)
        for value in range(1, 101):
            policy.observe(value / 1000.0)
        delay = policy.hedge_delay()
        assert 0.085 <= delay <= 0.095

    def test_invalid_knobs(self):
        with pytest.raises(ServiceError):
            HedgePolicy(percentile=0)
        with pytest.raises(ServiceError):
            HedgePolicy(max_hedges=0)


# ---------------------------------------------------------------------- #
# IdempotencyCache
# ---------------------------------------------------------------------- #
class TestIdempotencyCache:
    def test_round_trip_and_counters(self):
        cache = IdempotencyCache(capacity=4)
        assert cache.get("k1") is None
        cache.put("k1", {"answer": 1})
        assert cache.get("k1") == {"answer": 1}
        assert cache.as_dict() == {
            "capacity": 4,
            "entries": 1,
            "hits": 1,
            "misses": 1,
        }

    def test_lru_eviction(self):
        cache = IdempotencyCache(capacity=2)
        cache.put("a", {"n": 1})
        cache.put("b", {"n": 2})
        assert cache.get("a") is not None  # refresh a → b is now LRU
        cache.put("c", {"n": 3})
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_zero_capacity_disables(self):
        cache = IdempotencyCache(capacity=0)
        cache.put("k", {"n": 1})
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_none_key_is_ignored(self):
        cache = IdempotencyCache()
        cache.put(None, {"n": 1})
        assert cache.get(None) is None
        assert len(cache) == 0


# ---------------------------------------------------------------------- #
# client timeouts against a hung server
# ---------------------------------------------------------------------- #
class TestClientTimeouts:
    def test_sync_read_timeout_fires(self, hung_server):
        client = ServiceClient(*hung_server, read_timeout=0.2)
        query = _queries(1, seed=73)[0]
        started = time.perf_counter()
        with pytest.raises((TimeoutError, OSError)):
            client.query(query)
        assert time.perf_counter() - started < 5.0, "must not hang"
        client.close()

    def test_sync_timeout_knobs_are_applied(self, hung_server):
        # Distinct knobs: the read timeout is pinned on the socket after
        # connect, and the legacy ``timeout`` argument feeds both defaults.
        client = ServiceClient(*hung_server, connect_timeout=5.0, read_timeout=0.7)
        assert client.connect_timeout == 5.0
        assert client.read_timeout == 0.7
        assert client._sock.gettimeout() == 0.7
        client.close()
        legacy = ServiceClient(*hung_server, timeout=9.0)
        assert legacy.connect_timeout == 9.0
        assert legacy.read_timeout == 9.0
        legacy.close()

    def test_async_read_timeout_fires(self, hung_server):
        query = _queries(1, seed=79)[0]

        async def run():
            client = await AsyncServiceClient.connect(*hung_server, read_timeout=0.2)
            try:
                with pytest.raises(TimeoutError):
                    await client.query(query)
            finally:
                await client.close()

        asyncio.run(run())

    def test_deadline_bounds_the_async_wait(self, hung_server):
        query = _queries(1, seed=83)[0]

        async def run():
            client = await AsyncServiceClient.connect(*hung_server, read_timeout=30.0)
            try:
                started = time.perf_counter()
                with pytest.raises(TimeoutError):
                    await client.query(query, deadline_ms=200)
                return time.perf_counter() - started
            finally:
                await client.close()

        elapsed = asyncio.run(run())
        assert elapsed < 5.0, "deadline_ms must tighten the local wait"


# ---------------------------------------------------------------------- #
# retries end-to-end
# ---------------------------------------------------------------------- #
class TestRetryIntegration:
    def test_overload_is_retried_to_success(self, engine):
        # One in-flight query per connection + a long tick: a pipelined
        # burst trips OVERLOADED. With retries, every slot converges.
        handle = start_service_thread(
            engine, max_batch=64, max_delay_ms=30.0, max_per_connection=1
        )
        queries = _queries(6, seed=89)
        direct = [engine.query(query) for query in queries]
        retry = RetryPolicy(max_attempts=8, base_delay_ms=20, max_delay_ms=200, seed=1)
        try:
            with ServiceClient(*handle.address, retry=retry) as client:
                answers = client.query_many(queries)
            for received, expected in zip(answers, direct):
                assert received.accepted_ids == expected.accepted_ids
                assert received.scores == expected.scores
            assert retry.retries > 0, "the burst must have tripped at least one retry"
        finally:
            handle.stop()

    def test_retry_reconnects_after_server_restart(self, engine):
        from repro.testing import ChaosService

        queries = _queries(3, seed=97)
        direct = [engine.query(query) for query in queries]
        chaos = ChaosService(engine, max_batch=8, max_delay_ms=2.0)
        chaos.start()
        retry = RetryPolicy(max_attempts=10, base_delay_ms=50, max_delay_ms=400, seed=2)
        client = ServiceClient(*chaos.address, retry=retry, read_timeout=10.0)
        try:
            assert client.query(queries[0]).accepted_ids == direct[0].accepted_ids
            chaos.kill()
            chaos.restart()
            # The old socket is dead; the retry path must reconnect.
            for query, expected in zip(queries, direct):
                assert client.query(query).accepted_ids == expected.accepted_ids
        finally:
            client.close()
            chaos.stop()

    def test_async_retry_reconnects_after_server_restart(self, engine):
        from repro.testing import ChaosService

        query = _queries(1, seed=101)[0]
        expected = engine.query(query)
        chaos = ChaosService(engine, max_batch=8, max_delay_ms=2.0)
        chaos.start()

        async def run():
            retry = RetryPolicy(
                max_attempts=10, base_delay_ms=50, max_delay_ms=400, seed=3
            )
            client = await AsyncServiceClient.connect(
                *chaos.address, retry=retry, read_timeout=10.0
            )
            try:
                first = await client.query(query)
                assert first.accepted_ids == expected.accepted_ids
                chaos.kill()
                chaos.restart()
                second = await client.query(query)
                assert second.accepted_ids == expected.accepted_ids
            finally:
                await client.close()

        try:
            asyncio.run(run())
        finally:
            chaos.stop()

    def test_no_retry_policy_raises_immediately(self, engine):
        handle = start_service_thread(
            engine, max_batch=64, max_delay_ms=100.0, max_per_connection=1
        )
        queries = _queries(5, seed=103)
        try:
            with ServiceClient(*handle.address) as client:
                with pytest.raises(ServiceOverloadedError):
                    client.query_many(queries)
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# idempotency end-to-end
# ---------------------------------------------------------------------- #
class TestIdempotencyIntegration:
    def test_duplicate_request_key_served_from_cache(self, engine):
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        query = _queries(1, seed=107)[0]
        try:
            with ServiceClient(*handle.address) as client:
                first = client.query(query)
                # Replay the exact same request_key by rewinding the
                # client's key counter: the server must serve the cached
                # answer, bit-identical, without re-scoring.
                before = handle.service.metrics()["serving"]["num_queries"]
                client._next_key -= 1
                second = client.query(query)
                after = handle.service.metrics()["serving"]["num_queries"]
            assert second.accepted_ids == first.accepted_ids
            assert second.scores == first.scores
            assert second.ranking == first.ranking
            assert after == before, "a cached duplicate must not re-score"
            resilience = handle.service.metrics()["resilience"]
            assert resilience["idempotency"]["hits"] == 1
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# breaker end-to-end
# ---------------------------------------------------------------------- #
class TestBreakerIntegration:
    def test_breaker_fails_fast_after_endpoint_death(self, engine):
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        query = _queries(1, seed=109)[0]
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_ms=60_000)
        client = ServiceClient(*handle.address, breaker=breaker, read_timeout=1.0)
        try:
            client.query(query)  # warm success
            handle.stop()  # endpoint dies
            for _ in range(2):
                with pytest.raises((ServiceError, OSError)):
                    client.query(query)
            assert breaker.state == CircuitBreaker.OPEN
            # Third attempt never touches the socket: CircuitOpenError.
            with pytest.raises(CircuitOpenError):
                client.query(query)
        finally:
            client.close()
            handle.stop()


# ---------------------------------------------------------------------- #
# observability
# ---------------------------------------------------------------------- #
class TestResilienceMetrics:
    def test_all_families_in_the_prometheus_exposition(self):
        from repro.obs import prometheus_text

        text = prometheus_text()
        for family in (
            "repro_client_retries_total",
            "repro_client_hedges_total",
            "repro_breaker_transitions_total",
            "repro_breaker_fast_fails_total",
            "repro_idempotent_hits_total",
            "repro_deadline_drops_total",
            "repro_reload_failures_total",
        ):
            assert family in text, family
        # The per-stage deadline drops and per-outcome hedge children are
        # pre-registered so dashboards see them at zero, not on first drop.
        assert 'repro_deadline_drops_total{stage="admission"}' in text
        assert 'repro_deadline_drops_total{stage="batcher"}' in text
        assert 'repro_client_hedges_total{outcome="won"}' in text
        assert 'repro_service_requests_total{outcome="deadline_exceeded"}' in text

    def test_server_scrape_carries_the_resilience_section(self, engine):
        handle = start_service_thread(engine, max_batch=8, max_delay_ms=1.0)
        try:
            with ServiceClient(*handle.address) as client:
                stats = client.stats()
            resilience = stats["resilience"]
            assert resilience["idempotency"]["capacity"] == 2048
            assert resilience["deadline_dropped_admission"] == 0
            assert resilience["deadline_dropped_batcher"] == 0
            assert stats["server"]["reload_failures"] == 0
        finally:
            handle.stop()


# ---------------------------------------------------------------------- #
# hedging end-to-end
# ---------------------------------------------------------------------- #
class TestHedgingIntegration:
    def test_hedged_duplicate_resolves_first_response_wins(self, engine):
        # A slow batching tick (150 ms) keeps every primary in flight well
        # past the zero-floor hedge delay: all requests deterministically
        # hedge, which stresses the demux path hardest.
        handle = start_service_thread(engine, max_batch=64, max_delay_ms=150.0)
        queries = _queries(8, seed=113)
        direct = [engine.query(query) for query in queries]

        async def run():
            # A zero-floor hedge policy: effectively every request hedges,
            # which stresses the demux path hardest.
            hedge = HedgePolicy(min_delay_ms=0.0, min_samples=10_000)
            client = await AsyncServiceClient.connect(
                *handle.address, hedge=hedge, read_timeout=30.0
            )
            try:
                answers = await client.query_many(queries)
                return hedge, answers
            finally:
                await client.close()

        try:
            hedge, answers = asyncio.run(run())
            for received, expected in zip(answers, direct):
                assert received.accepted_ids == expected.accepted_ids
                assert received.scores == expected.scores
                assert received.ranking == expected.ranking
            assert hedge.hedges_sent > 0
            assert hedge.hedges_won + hedge.hedges_cancelled == hedge.hedges_sent
        finally:
            handle.stop()
