"""Greedy approximations of the linear sum assignment problem.

Greedy-Sort-GED (Riesen, Ferrer & Bunke, 2015) replaces the exact Hungarian
solution with a quadratic-time greedy assignment: process rows in order (or
in a globally cost-sorted order) and commit each row to its cheapest still
available column.  The resulting assignment cost is not a bound on GED but
is empirically a good estimate, which is exactly how the paper uses it as a
competitor.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import AssignmentError

__all__ = ["greedy_assignment", "sorted_greedy_assignment"]


def _validate(cost_matrix: Sequence[Sequence[float]]) -> int:
    num_rows = len(cost_matrix)
    if num_rows == 0:
        return 0
    num_cols = len(cost_matrix[0])
    for row in cost_matrix:
        if len(row) != num_cols:
            raise AssignmentError("cost matrix rows must all have the same length")
    if num_cols < num_rows:
        raise AssignmentError("cost matrix must have at least as many columns as rows")
    return num_rows


def greedy_assignment(cost_matrix: Sequence[Sequence[float]]) -> List[int]:
    """Row-by-row greedy assignment: each row takes its cheapest free column.

    Runs in ``O(n·m)`` time.  Returns ``assignment[row] = column``.
    """
    num_rows = _validate(cost_matrix)
    if num_rows == 0:
        return []
    num_cols = len(cost_matrix[0])
    free_columns = set(range(num_cols))
    assignment: List[int] = []
    for row in range(num_rows):
        best_column = min(free_columns, key=lambda column: cost_matrix[row][column])
        assignment.append(best_column)
        free_columns.remove(best_column)
    return assignment


def sorted_greedy_assignment(cost_matrix: Sequence[Sequence[float]]) -> List[int]:
    """Globally sorted greedy assignment (the "sort" in Greedy-Sort-GED).

    All (row, column) pairs are sorted by cost and committed greedily as long
    as both endpoints are still free; runs in ``O(n·m·log(n·m))`` time, the
    ``O(n² log n²)`` the paper quotes for square matrices.
    """
    num_rows = _validate(cost_matrix)
    if num_rows == 0:
        return []
    num_cols = len(cost_matrix[0])
    pairs = sorted(
        ((cost_matrix[row][column], row, column) for row in range(num_rows) for column in range(num_cols)),
        key=lambda item: item[0],
    )
    assignment = [-1] * num_rows
    used_columns = set()
    assigned_rows = 0
    for _, row, column in pairs:
        if assignment[row] != -1 or column in used_columns:
            continue
        assignment[row] = column
        used_columns.add(column)
        assigned_rows += 1
        if assigned_rows == num_rows:
            break
    if any(column < 0 for column in assignment):
        raise AssignmentError("sorted greedy assignment failed to cover every row")
    return assignment
