"""Assignment-problem substrate used by the LSAP-based GED baselines.

Provides a from-scratch O(n³) Hungarian solver for the exact linear sum
assignment problem and the greedy / sorted-greedy approximations used by
Greedy-Sort-GED.
"""

from repro.assignment.hungarian import hungarian, assignment_cost
from repro.assignment.greedy import greedy_assignment, sorted_greedy_assignment

__all__ = [
    "hungarian",
    "assignment_cost",
    "greedy_assignment",
    "sorted_greedy_assignment",
]
