"""Hungarian (Kuhn–Munkres) algorithm for the linear sum assignment problem.

The LSAP-based GED estimation of Riesen & Bunke builds a square cost matrix
over vertex substitutions/insertions/deletions and solves it exactly; the
optimal assignment cost is a lower bound on GED and the induced edit path
gives an upper bound.  This module provides the exact O(n³) solver used by
that baseline (implemented from scratch — the Jonker-Volgenant style
shortest augmenting path formulation with potentials).

``scipy.optimize.linear_sum_assignment`` exists, but the paper treats the
assignment solver as part of the evaluated system, so we implement it and
use scipy only in the test-suite as an independent cross-check.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.exceptions import AssignmentError

__all__ = ["hungarian", "assignment_cost"]

_INFINITY = float("inf")


def _validate_matrix(cost_matrix: Sequence[Sequence[float]]) -> Tuple[int, int]:
    """Validate a rectangular cost matrix and return its shape."""
    num_rows = len(cost_matrix)
    if num_rows == 0:
        return 0, 0
    num_cols = len(cost_matrix[0])
    for row in cost_matrix:
        if len(row) != num_cols:
            raise AssignmentError("cost matrix rows must all have the same length")
    if num_cols < num_rows:
        raise AssignmentError(
            "cost matrix must have at least as many columns as rows; "
            "transpose the problem or pad it before calling hungarian()"
        )
    return num_rows, num_cols


def hungarian(cost_matrix: Sequence[Sequence[float]]) -> List[int]:
    """Solve the LSAP exactly and return the column assigned to each row.

    Implements the shortest-augmenting-path variant of the Hungarian
    algorithm with dual potentials (O(n²m) time, n rows ≤ m columns).
    Returns a list ``assignment`` with ``assignment[row] = column``.
    """
    num_rows, num_cols = _validate_matrix(cost_matrix)
    if num_rows == 0:
        return []

    # Potentials for rows (u) and columns (v); way[j] remembers the previous
    # column on the augmenting path; match[j] is the row assigned to column j.
    u = [0.0] * (num_rows + 1)
    v = [0.0] * (num_cols + 1)
    match = [0] * (num_cols + 1)  # 0 means unassigned (rows are 1-based here)
    way = [0] * (num_cols + 1)

    for row in range(1, num_rows + 1):
        match[0] = row
        minimum_column = 0
        min_value = [_INFINITY] * (num_cols + 1)
        used = [False] * (num_cols + 1)
        while True:
            used[minimum_column] = True
            current_row = match[minimum_column]
            delta = _INFINITY
            next_column = 0
            for column in range(1, num_cols + 1):
                if used[column]:
                    continue
                current = (
                    cost_matrix[current_row - 1][column - 1]
                    - u[current_row]
                    - v[column]
                )
                if current < min_value[column]:
                    min_value[column] = current
                    way[column] = minimum_column
                if min_value[column] < delta:
                    delta = min_value[column]
                    next_column = column
            for column in range(num_cols + 1):
                if used[column]:
                    u[match[column]] += delta
                    v[column] -= delta
                else:
                    min_value[column] -= delta
            minimum_column = next_column
            if match[minimum_column] == 0:
                break
        # augment along the path
        while minimum_column != 0:
            previous_column = way[minimum_column]
            match[minimum_column] = match[previous_column]
            minimum_column = previous_column

    assignment = [-1] * num_rows
    for column in range(1, num_cols + 1):
        if match[column] != 0:
            assignment[match[column] - 1] = column - 1
    if any(column < 0 for column in assignment):
        raise AssignmentError("hungarian() failed to produce a complete assignment")
    return assignment


def assignment_cost(cost_matrix: Sequence[Sequence[float]], assignment: Sequence[int]) -> float:
    """Total cost of an assignment ``row -> assignment[row]``."""
    return sum(cost_matrix[row][column] for row, column in enumerate(assignment))
