"""Wire protocol of the similarity-search service.

Framing
-------
Every message is one *frame*: a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON.  Frames larger than
:data:`MAX_FRAME_BYTES` are rejected with a
:class:`~repro.exceptions.ProtocolError` on both ends — a malformed or
hostile peer cannot make the server buffer unbounded input.

Messages
--------
Requests and responses are JSON objects with an ``id`` (client-assigned
integer, echoed verbatim so pipelined responses can be matched out of
order) and a ``kind``:

========  =========================================================
request   ``{"id", "kind": "query",  "query": <encoded query>,
          "deadline_ms"?, "request_key"?}``
          ``{"id", "kind": "admin",  "command": ..., ...}``
response  ``{"id", "kind": "answer", "answer": <encoded answer>}``
          ``{"id", "kind": "admin",  "result": {...}}``
          ``{"id", "kind": "error",  "error": {"code", "message"}}``
========  =========================================================

Error codes are the :data:`ERROR_*` constants below; ``OVERLOADED`` is the
typed load-shedding response of the admission controller and maps to
:class:`~repro.exceptions.ServiceOverloadedError` client-side;
``DEADLINE_EXCEEDED`` means the query's ``deadline_ms`` budget expired
before scoring (the server dropped it without wasting engine cycles) and
maps to :class:`~repro.exceptions.DeadlineExceededError`.

Resilience fields (all optional, all ignored by old servers):
``deadline_ms`` is the request's *relative* latency budget in
milliseconds — relative, because the two ends' wall clocks are never
comparable; the server converts it to an absolute monotonic deadline at
receipt.  ``request_key`` is an opaque client-chosen idempotency key:
retried and hedged duplicates of one logical request reuse it, and the
server answers duplicates of an already-completed request from its
idempotency cache, bit-identically, without re-scoring.

Trace propagation: ``trace`` carries the query's distributed trace
context as a ``traceparent``-style string
(``00-<trace_id>-<parent span_id>-<sampled flags>``, see
:class:`~repro.obs.trace.TraceContext`).  The server joins a sampled
context — its waterfall shares the client's trace id — and a malformed
value is silently ignored (observability must never reject a query).
Answer responses may carry ``"cached": true`` when served from the
idempotency cache, so a retrying/hedging client can tag the attempt's
outcome in its trace.

Codecs
------
:func:`encode_query`/:func:`decode_query` round-trip a
:class:`~repro.db.query.SimilarityQuery` including its graph
(vertices/edges with arbitrary hashable labels — tuples are carried through
a tagged encoding since JSON has no tuple type).  Answers ride on
:meth:`QueryAnswer.to_wire`/``from_wire``.  Both directions are exact:
floats survive JSON via ``repr`` round-tripping, so answers received over
the wire are bit-identical to the server's in-process answers.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import (
    DeadlineExceededError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.graphs.graph import Graph

__all__ = [
    "MAX_FRAME_BYTES",
    "ERROR_OVERLOADED",
    "ERROR_BAD_REQUEST",
    "ERROR_SHUTTING_DOWN",
    "ERROR_SERVER_ERROR",
    "ERROR_DEADLINE_EXCEEDED",
    "query_request",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "send_frame",
    "recv_frame",
    "encode_graph",
    "decode_graph",
    "encode_query",
    "decode_query",
    "encode_answer",
    "decode_answer",
    "error_response",
    "exception_for_error",
]

#: Upper bound on one frame's JSON payload (32 MiB — a few hundred thousand
#: scored answers; far beyond any sane single query or answer).
MAX_FRAME_BYTES = 32 * 1024 * 1024

_LENGTH = struct.Struct(">I")

# Typed error codes carried in ``error`` responses.
ERROR_OVERLOADED = "OVERLOADED"
ERROR_BAD_REQUEST = "BAD_REQUEST"
ERROR_SHUTTING_DOWN = "SHUTTING_DOWN"
ERROR_SERVER_ERROR = "SERVER_ERROR"
ERROR_DEADLINE_EXCEEDED = "DEADLINE_EXCEEDED"


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #
def encode_frame(message: Dict[str, Any]) -> bytes:
    """Serialize one message into a length-prefixed JSON frame."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> Dict[str, Any]:
    """Parse one frame body (without the length prefix) back into a message."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("frame payload is not valid UTF-8 JSON") from exc
    if not isinstance(message, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return message


def _checked_length(prefix: bytes) -> int:
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"announced frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    return length


async def read_frame(reader) -> Optional[Dict[str, Any]]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    A connection dropped mid-frame raises :class:`ProtocolError` — the
    caller cannot distinguish the truncated message from a complete one and
    must close the connection.
    """
    try:
        prefix = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-frame (truncated length prefix)") from exc
    length = _checked_length(prefix)
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame (truncated payload)") from exc
    return decode_frame(payload)


def _recv_exactly(sock, length: int) -> bytes:
    chunks = []
    remaining = length
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock, message: Dict[str, Any]) -> None:
    """Blocking-socket counterpart of :func:`read_frame`'s writer side."""
    sock.sendall(encode_frame(message))


def recv_frame(sock) -> Optional[Dict[str, Any]]:
    """Read one frame from a blocking socket; ``None`` on clean EOF."""
    prefix = sock.recv(_LENGTH.size)
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        prefix += _recv_exactly(sock, _LENGTH.size - len(prefix))
    return decode_frame(_recv_exactly(sock, _checked_length(prefix)))


# ---------------------------------------------------------------------- #
# value codec: labels / vertex ids with a tagged tuple encoding
# ---------------------------------------------------------------------- #
def _encode_value(value):
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(item) for item in value]}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise ProtocolError(
        f"cannot encode value of type {type(value).__name__} on the wire "
        "(supported: str, int, float, bool, None, and tuples thereof)"
    )


def _decode_value(value):
    if isinstance(value, dict):
        items = value.get("__tuple__")
        if not isinstance(items, list):
            raise ProtocolError("malformed tagged value on the wire")
        return tuple(_decode_value(item) for item in items)
    return value


# ---------------------------------------------------------------------- #
# graph / query / answer codecs
# ---------------------------------------------------------------------- #
def encode_graph(graph: Graph) -> Dict[str, Any]:
    """Encode a graph as JSON-safe vertex/edge lists (labels may be tuples)."""
    return {
        "name": graph.name,
        "vertices": [
            [_encode_value(vertex), _encode_value(label)]
            for vertex, label in graph.vertex_items()
        ],
        "edges": [
            [_encode_value(u), _encode_value(v), _encode_value(label)]
            for u, v, label in graph.edges()
        ],
    }


def decode_graph(payload: Dict[str, Any]) -> Graph:
    """Rebuild a graph encoded by :func:`encode_graph`."""
    try:
        vertices = {
            _decode_value(vertex): _decode_value(label)
            for vertex, label in payload["vertices"]
        }
        edges = {
            (_decode_value(u), _decode_value(v)): _decode_value(label)
            for u, v, label in payload["edges"]
        }
        return Graph.from_dicts(vertices, edges, name=payload.get("name"))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed graph payload on the wire") from exc


def encode_query(query: SimilarityQuery) -> Dict[str, Any]:
    """Encode one similarity query (graph + thresholds + optional top-k)."""
    return {
        "graph": encode_graph(query.query_graph),
        "tau_hat": int(query.tau_hat),
        "gamma": float(query.gamma),
        "top_k": None if query.top_k is None else int(query.top_k),
    }


def decode_query(payload: Dict[str, Any]) -> SimilarityQuery:
    """Rebuild a similarity query; invalid thresholds surface as QueryError."""
    if not isinstance(payload, dict) or "graph" not in payload:
        raise ProtocolError("malformed query payload on the wire")
    return SimilarityQuery(
        decode_graph(payload["graph"]),
        payload.get("tau_hat", 0),
        payload.get("gamma", 0.9),
        top_k=payload.get("top_k"),
    )


def query_request(
    message_id,
    query: SimilarityQuery,
    *,
    deadline_ms: Optional[float] = None,
    request_key: Optional[str] = None,
    trace: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one query request frame body with the resilience/trace fields.

    ``trace`` is a ``traceparent``-style context string
    (:meth:`~repro.obs.trace.TraceContext.to_traceparent`) propagating the
    client's trace id, parent span id, and sampling decision.
    """
    message: Dict[str, Any] = {
        "id": message_id,
        "kind": "query",
        "query": encode_query(query),
    }
    if deadline_ms is not None:
        message["deadline_ms"] = float(deadline_ms)
    if request_key is not None:
        message["request_key"] = str(request_key)
    if trace is not None:
        message["trace"] = str(trace)
    return message


def encode_answer(answer: QueryAnswer) -> Dict[str, Any]:
    """Encode one answer (delegates to :meth:`QueryAnswer.to_wire`)."""
    return answer.to_wire()


def decode_answer(payload: Dict[str, Any]) -> QueryAnswer:
    """Rebuild an answer (delegates to :meth:`QueryAnswer.from_wire`)."""
    try:
        return QueryAnswer.from_wire(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError("malformed answer payload on the wire") from exc


# ---------------------------------------------------------------------- #
# error responses
# ---------------------------------------------------------------------- #
def error_response(message_id, code: str, message: str) -> Dict[str, Any]:
    """Build a typed error response frame body."""
    return {"id": message_id, "kind": "error", "error": {"code": code, "message": message}}


def exception_for_error(payload: Dict[str, Any]) -> ServiceError:
    """Map an ``error`` response to the client-side exception to raise."""
    error = payload.get("error") or {}
    code = error.get("code", ERROR_SERVER_ERROR)
    message = error.get("message", "server reported an error")
    if code == ERROR_OVERLOADED:
        return ServiceOverloadedError(message)
    if code == ERROR_BAD_REQUEST:
        return ProtocolError(message)
    if code == ERROR_DEADLINE_EXCEEDED:
        return DeadlineExceededError(message)
    return ServiceError(f"{code}: {message}")
