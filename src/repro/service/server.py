"""Asyncio similarity-search server: micro-batching, admission, hot swap.

:class:`SimilarityService` exposes a :class:`~repro.serving.engine.BatchQueryEngine`
to concurrent remote clients over the length-prefixed JSON protocol of
:mod:`repro.service.protocol`:

* every connection may *pipeline* requests — each message is handled in
  its own task, so queries from many connections (and many in-flight
  requests of one connection) coalesce in the :class:`~repro.service.batcher.MicroBatcher`
  into single ``query_batch`` calls;
* the :class:`~repro.service.admission.AdmissionController` sheds load
  with a typed ``OVERLOADED`` response instead of queueing without bound;
* the numpy scoring runs in a worker thread
  (``loop.run_in_executor``), keeping the event loop free to accept and
  frame traffic;
* ``SIGHUP`` (or the ``reload`` admin command) *hot-swaps* the engine: a
  fresh engine is loaded from the snapshot off-loop, then the serving
  reference is swapped atomically between batches — in-flight queries
  finish on the old engine, later ones score on the new one, and no
  answer ever mixes the two;
* the ``stats`` admin command is the metrics endpoint: serving stats
  (bounded-window latency percentiles), engine prune counters, result
  cache hit rate, batcher occupancy/coalescing, and admission counters as
  one JSON document — a *pure read* that can be scraped at any frequency
  without perturbing the numbers it reports;
* observability is built in: a :class:`~repro.obs.trace.Tracer` samples a
  configurable fraction of queries into stage waterfalls (decode →
  batcher queue wait → engine scoring → core stages → serialize), a
  :class:`~repro.obs.trace.SlowQueryLog` keeps the worst offenders with
  their waterfalls (``slow`` admin command), and the process-wide metrics
  registry is exported as Prometheus text — over the ``prometheus`` admin
  command, or scraped by real Prometheus from the optional plain-HTTP
  ``/metrics`` listener (``metrics_port=``).

Shutdown (:meth:`SimilarityService.stop`) is graceful by construction:
new queries are refused with ``SHUTTING_DOWN``, the batcher drains every
admitted query, all pending responses are written, and only then are the
connections closed — zero in-flight queries are dropped.

:func:`start_service_thread` runs a service on a dedicated thread with its
own event loop — the one-call harness used by the tests, the benchmark,
and the quickstart example (production deployments would run
:meth:`serve_forever` in the process' main loop instead).
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from typing import Any, Dict, Optional

from repro.db.query import SimilarityQuery
from repro.exceptions import (
    DeadlineExceededError,
    ProtocolError,
    QueryError,
    ReproError,
    ServiceError,
)
from repro.obs.export import PROMETHEUS_CONTENT_TYPE, prometheus_text
from repro.obs.logging import get_event_log, get_logger
from repro.obs.metrics import get_registry
from repro.obs.profile import SamplingProfiler
from repro.obs.slo import SLOEngine, error_rate_slo, latency_slo
from repro.obs.trace import SlowQueryLog, TraceContext, Tracer
from repro.serving.engine import BatchQueryEngine
from repro.serving.snapshot import load_engine
from repro.serving.stats import ServingStats
from repro.service.admission import AdmissionController
from repro.service.batcher import MicroBatcher
from repro.service.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    ERROR_SERVER_ERROR,
    ERROR_SHUTTING_DOWN,
    encode_answer,
    encode_frame,
    decode_query,
    error_response,
    read_frame,
)
from repro.service.resilience import Deadline, IdempotencyCache

__all__ = ["SimilarityService", "ServiceHandle", "start_service_thread"]

_REQUESTS = get_registry().counter(
    "repro_service_requests_total", "Query requests by outcome", ("outcome",)
)
_REQ_ANSWERED = _REQUESTS.labels(outcome="answered")
_REQ_REJECTED = _REQUESTS.labels(outcome="rejected")
_REQ_SHUTTING_DOWN = _REQUESTS.labels(outcome="shutting_down")
_REQ_BAD_REQUEST = _REQUESTS.labels(outcome="bad_request")
_REQ_ERROR = _REQUESTS.labels(outcome="error")
_REQUEST_SECONDS = get_registry().histogram(
    "repro_service_request_seconds",
    "End-to-end request latency from admission to serialized response",
)
_REQ_DEADLINE = _REQUESTS.labels(outcome="deadline_exceeded")
_RELOADS = get_registry().counter(
    "repro_service_reloads_total", "Engine hot-swaps completed"
)
_RELOAD_FAILURES = get_registry().counter(
    "repro_reload_failures_total",
    "Engine hot-swap attempts that failed (old engine kept serving)",
)
_CONNECTIONS = get_registry().gauge(
    "repro_service_connections", "Open client connections"
)


def _requests_grand_total() -> float:
    """Cumulative requests across every outcome (availability SLO total)."""
    return sum(child.value for _labels, child in _REQUESTS.series())


def _requests_failed() -> float:
    """Cumulative server-fault requests (availability SLO bad count)."""
    return _REQ_ERROR.value


def _repro_build_info() -> Dict[str, str]:
    """Build/runtime identity labels (lazy import avoids a package cycle)."""
    from repro.obs import build_info

    return build_info()


def _default_slo_engine(**kwargs) -> SLOEngine:
    """The service's stock objectives over the request metrics.

    * ``latency``: 99% of answered requests within 250 ms (the largest
      request-seconds bucket at or under the classic interactive budget);
    * ``availability``: 99.9% of requests not ending in ``SERVER_ERROR``
      (shed load and client mistakes are not availability failures).
    """
    engine = SLOEngine(**kwargs)
    engine.add(
        latency_slo("latency", _REQUEST_SECONDS, 0.25, objective=0.99)
    )
    engine.add(
        error_rate_slo(
            "availability",
            _requests_grand_total,
            _requests_failed,
            objective=0.999,
            description="99.90% of requests complete without a server error",
        )
    )
    return engine


class SimilarityService:
    """Serve similarity queries over TCP with dynamic micro-batching.

    Parameters
    ----------
    engine:
        The serving engine.  May be omitted when ``snapshot_path`` is
        given — the engine is then loaded from the snapshot at
        :meth:`start` (and re-loaded from the same path on ``SIGHUP`` /
        a path-less ``reload`` admin command).
    snapshot_path:
        Default snapshot for engine (re)loads.
    host, port:
        Listen address; port 0 picks a free port (see :attr:`port`).
    max_batch, max_delay_ms:
        Micro-batcher knobs (see :class:`~repro.service.batcher.MicroBatcher`).
    max_pending, max_per_connection:
        Admission budgets (see :class:`~repro.service.admission.AdmissionController`).
    latency_window:
        Ring size of the serving stats' recent-latency window.
    trace_sample_rate:
        Fraction of queries traced into stage waterfalls (default 1%;
        0 disables tracing entirely).
    slow_query_ms, slow_log_size:
        Latency threshold and ring capacity of the slow-query log.
    metrics_port:
        When given, a plain-HTTP listener on this port (same host) serves
        Prometheus text exposition at ``/metrics`` — port 0 picks a free
        port (see :attr:`metrics_http_port`).  ``None`` (default) starts
        no listener; the ``prometheus`` admin command always works.
    idempotency_capacity:
        Ring size of the completed-request idempotency cache (duplicate
        ``request_key`` sends — client retries and hedges — are answered
        from it bit-identically without re-scoring; 0 disables it).
    slo_engine:
        Optional pre-built :class:`~repro.obs.slo.SLOEngine`; by default
        the service registers its stock latency/availability objectives
        (evaluated by the ``slo`` admin command and on every ``stats``
        scrape into ``repro_slo_*`` gauges).
    profiler_interval_ms:
        Sampling interval of the on-demand continuous profiler (started
        and stopped through the ``profile`` admin command; never running
        unless asked).
    """

    def __init__(
        self,
        engine: Optional[BatchQueryEngine] = None,
        *,
        snapshot_path=None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
        max_pending: int = 1024,
        max_per_connection: int = 0,
        latency_window: int = ServingStats.DEFAULT_LATENCY_WINDOW,
        trace_sample_rate: float = 0.01,
        slow_query_ms: float = 250.0,
        slow_log_size: int = 128,
        metrics_port: Optional[int] = None,
        idempotency_capacity: int = 2048,
        slo_engine: Optional[SLOEngine] = None,
        profiler_interval_ms: float = 10.0,
    ) -> None:
        if engine is None and snapshot_path is None:
            raise ServiceError("a SimilarityService needs an engine or a snapshot_path")
        self._engine = engine
        self.snapshot_path = snapshot_path
        self.host = host
        self._requested_port = int(port)
        self.admission = AdmissionController(
            max_pending=max_pending, max_per_connection=max_per_connection
        )
        self.batcher = MicroBatcher(
            self._run_batch, max_batch=max_batch, max_delay_ms=max_delay_ms
        )
        self.stats = ServingStats(latency_window=latency_window)
        self.idempotency = IdempotencyCache(capacity=idempotency_capacity)
        self.tracer = Tracer(sample_rate=trace_sample_rate)
        self.slow_log = SlowQueryLog(threshold_ms=slow_query_ms, capacity=slow_log_size)
        self.log = get_logger("service")
        # The per-query slow_query warnings get their own logger (and thus
        # their own rate-limit bucket): a chatty slow patch must never
        # starve rare lifecycle events (reloads, SLO transitions) of
        # tokens on the shared "service" logger.
        self.slow_query_logger = get_logger("service.slow")
        self.slo = (
            slo_engine
            if slo_engine is not None
            else _default_slo_engine(on_transition=self._on_slo_transition)
        )
        if self.slo.on_transition is None:
            self.slo.on_transition = self._on_slo_transition
        self.profiler = SamplingProfiler(interval_ms=profiler_interval_ms)
        self.metrics_port = None if metrics_port is None else int(metrics_port)
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopped: Optional[asyncio.Event] = None
        self._reload_lock: Optional[asyncio.Lock] = None
        self._closing = False
        self._started_at = 0.0
        self._next_connection_id = 0
        self._connections = 0
        self._reloads = 0
        self._reload_failures = 0
        self._inflight: set = set()
        self._writers: set = set()
        #: Strong refs to fire-and-forget tasks (SIGHUP reloads): the event
        #: loop only holds weak refs, so an unreferenced task can be
        #: garbage-collected mid-execution.
        self._background: set = set()
        self._signal_registered = False

    def _on_slo_transition(self, name, old_state, new_state, burns) -> None:
        """Alert state changes are structured-log events (page-worthy loudest)."""
        emit = self.log.error if new_state == "page" else self.log.warning
        emit(
            "slo_state_change",
            slo=name,
            from_state=old_state,
            to_state=new_state,
            burn_rates={window: round(burn, 3) for window, burn in burns.items()},
        )

    # ------------------------------------------------------------------ #
    # engine access / hot swap
    # ------------------------------------------------------------------ #
    @property
    def engine(self) -> BatchQueryEngine:
        """The engine currently serving (swapped atomically on reload)."""
        if self._engine is None:
            raise ServiceError("the service has no engine yet (not started?)")
        return self._engine

    async def reload_engine(self, snapshot_path=None) -> Dict[str, Any]:
        """Hot-swap the serving engine from a snapshot; return a summary.

        The snapshot is loaded off-loop (serving continues meanwhile), then
        the engine reference is swapped in one assignment.  The micro-batcher
        resolves the engine per flush, so the swap lands exactly on a batch
        boundary: queries batched before it finish on the old engine,
        queries batched after it score on the new one — zero downtime and
        no torn answers.

        Failure is *non-fatal by construction*: a missing, truncated, or
        checksum-failing snapshot raises before the swap assignment, so the
        last-good engine keeps serving; the attempt is counted in
        ``repro_reload_failures_total`` and the metrics document.

        The swap serializes with :meth:`stop` through ``_reload_lock``:
        once shutdown has begun a reload is refused, and :meth:`stop` waits
        for any in-flight swap before tearing the service down.
        """
        path = snapshot_path or self.snapshot_path
        if path is None:
            raise ServiceError("no snapshot path configured for engine reload")
        assert self._reload_lock is not None
        async with self._reload_lock:
            if self._closing:
                raise ServiceError("service is shutting down; reload refused")
            loop = asyncio.get_running_loop()
            try:
                engine = await loop.run_in_executor(None, load_engine, path)
            except BaseException as exc:
                self._reload_failures += 1
                _RELOAD_FAILURES.inc()
                self.log.error(
                    "engine_reload_failed", path=str(path), error=f"{type(exc).__name__}: {exc}"
                )
                raise
            previous = self._engine
            self._engine = engine
            self._reloads += 1
            _RELOADS.inc()
        # The tracer ring and slow log intentionally survive the swap (their
        # history is still real); every entry is stamped with the
        # model_version that served it, so post-reload scrapes attribute old
        # waterfalls to the old model instead of silently implying the new one.
        self.log.info(
            "engine_reloaded",
            path=str(path),
            model_version=engine.model_version,
            previous_model_version=None if previous is None else previous.model_version,
            reload_count=self._reloads,
        )
        return {
            "reloaded_from": str(path),
            "model_version": engine.model_version,
            "previous_model_version": None if previous is None else previous.model_version,
            "database_size": len(engine.database),
            "reload_count": self._reloads,
        }

    def _schedule_reload(self) -> None:
        """SIGHUP entry point: run a reload in the background, log failures."""
        assert self._loop is not None

        async def _reload() -> None:
            try:
                await self.reload_engine()
            except (ReproError, OSError, KeyError, TypeError, ValueError):
                # A broken snapshot must never take down a serving process;
                # the old engine simply keeps serving.
                pass

        task = self._loop.create_task(_reload())
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def _run_batch(self, queries, trace=None):
        """Batch runner handed to the micro-batcher (thread-offloaded numpy).

        ``trace`` is the batch-level :class:`~repro.obs.trace.QueryTrace`
        the batcher creates when a sampled query rides in the flush; the
        engine activates it in the scoring thread so the cache-probe /
        score / core-stage spans land in it.
        """
        engine = self.engine  # resolved per flush: the hot-swap boundary
        loop = asyncio.get_running_loop()
        queries = list(queries)
        return await loop.run_in_executor(
            None, lambda: engine.query_batch(queries, trace=trace)
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and start the batcher (idempotent)."""
        if self._server is not None:
            return
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stopped = asyncio.Event()
        self._reload_lock = asyncio.Lock()
        if self._engine is None:
            self._engine = await loop.run_in_executor(None, load_engine, self.snapshot_path)
        self.batcher.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self._requested_port
        )
        if self.metrics_port is not None and self._metrics_server is None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_http, host=self.host, port=self.metrics_port
            )
        self._started_at = time.time()
        if self.snapshot_path is not None and not self._signal_registered:
            try:
                loop.add_signal_handler(signal.SIGHUP, self._schedule_reload)
                self._signal_registered = True
            except (NotImplementedError, RuntimeError, ValueError, AttributeError):
                # Non-main thread, non-unix platform, or no SIGHUP: the
                # admin "reload" command remains available.
                pass

    @property
    def port(self) -> int:
        """The bound port (resolves port 0 after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise ServiceError("the service is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_http_port(self) -> int:
        """The bound ``/metrics`` HTTP port (resolves port 0 after :meth:`start`)."""
        if self._metrics_server is None or not self._metrics_server.sockets:
            raise ServiceError("the service has no /metrics listener")
        return self._metrics_server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Start (if needed) and serve until :meth:`stop` is called."""
        await self.start()
        assert self._stopped is not None
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: drain in-flight queries, then close connections.

        Order matters: (1) flip the closing flag so newly read requests are
        refused with ``SHUTTING_DOWN``; (2) close the listening socket;
        (3) drain the micro-batcher — every admitted query is scored;
        (4) wait for every handler task to finish writing its response;
        (5) only then tear down the connections.
        """
        if self._server is None or self._closing:
            return
        self._closing = True
        # Serialize with an in-flight hot swap: the closing flag above makes
        # any *new* reload fail fast inside the lock, and acquiring the lock
        # here blocks until a swap already past that check has fully landed —
        # teardown can never interleave with an engine swap (regression:
        # stop() racing reload_engine()).
        if self._reload_lock is not None:
            async with self._reload_lock:
                pass
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        await self.batcher.stop()
        while self._inflight:
            await asyncio.gather(*list(self._inflight), return_exceptions=True)
        # Every admitted query has been answered and written; now it is safe
        # to hang up on the (idle) connections so their read loops exit.
        for writer in list(self._writers):
            writer.close()
        if self._signal_registered and self._loop is not None:
            try:
                self._loop.remove_signal_handler(signal.SIGHUP)
            except (NotImplementedError, RuntimeError, ValueError, AttributeError):
                pass
            self._signal_registered = False
        self.profiler.stop()
        assert self._stopped is not None
        self._stopped.set()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        self._next_connection_id += 1
        connection_id = self._next_connection_id
        self._connections += 1
        _CONNECTIONS.set(self._connections)
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except (ProtocolError, ConnectionError, OSError):
                    # Unframeable input or an abrupt peer reset: nothing
                    # sane can be replied to — drop the connection (pending
                    # tasks still complete).
                    break
                if message is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._handle_message(message, connection_id, writer, write_lock)
                )
                tasks.add(task)
                self._inflight.add(task)
                task.add_done_callback(tasks.discard)
                task.add_done_callback(self._inflight.discard)
        finally:
            if tasks:
                await asyncio.gather(*list(tasks), return_exceptions=True)
            self.admission.forget_connection(connection_id)
            self._connections -= 1
            _CONNECTIONS.set(self._connections)
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    async def _respond(self, writer, write_lock, message: Dict[str, Any]) -> None:
        try:
            frame = encode_frame(message)
        except ProtocolError as exc:
            # The response itself is unencodable (e.g. an answer larger than
            # the frame cap).  The client still must hear back on this id —
            # a silent drop would hang its pipelined read loop.
            frame = encode_frame(
                error_response(message.get("id"), ERROR_SERVER_ERROR, str(exc))
            )
        async with write_lock:
            writer.write(frame)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                # Peer went away before reading its answer; the query was
                # still served (and cached) — nothing else to unwind.
                pass

    async def _handle_message(self, message, connection_id, writer, write_lock) -> None:
        message_id = message.get("id")
        kind = message.get("kind")
        if kind == "query":
            await self._handle_query(message_id, message, connection_id, writer, write_lock)
        elif kind == "admin":
            await self._handle_admin(message_id, message, writer, write_lock)
        else:
            await self._respond(
                writer,
                write_lock,
                error_response(
                    message_id, ERROR_BAD_REQUEST, f"unknown message kind {kind!r}"
                ),
            )

    async def _handle_query(
        self, message_id, message, connection_id, writer, write_lock
    ) -> None:
        if self._closing:
            _REQ_SHUTTING_DOWN.inc()
            await self._respond(
                writer,
                write_lock,
                error_response(
                    message_id, ERROR_SHUTTING_DOWN, "server is draining; retry elsewhere"
                ),
            )
            return
        arrival = time.perf_counter()
        # Distributed trace join: a sampled propagated context forces a trace
        # (head sampling wins) sharing the client's trace id; no context
        # falls back to this server's own sample rate.  Sampling before
        # admission lets the waterfall's depth-0 "admission" span cover
        # everything between frame receipt and queue entry.
        trace = self.tracer.sample(
            {"connection": connection_id},
            context=TraceContext.parse(message.get("trace")),
        )
        # Resilience fields ride next to the query payload: a relative
        # latency budget (converted to an absolute monotonic deadline at
        # receipt) and an opaque idempotency key for retried/hedged sends.
        deadline: Optional[Deadline] = None
        raw_deadline = message.get("deadline_ms")
        if raw_deadline is not None:
            try:
                deadline = Deadline.after_ms(raw_deadline)
            except (ServiceError, TypeError, ValueError):
                _REQ_BAD_REQUEST.inc()
                await self._respond(
                    writer,
                    write_lock,
                    error_response(
                        message_id,
                        ERROR_BAD_REQUEST,
                        f"invalid deadline_ms {raw_deadline!r}",
                    ),
                )
                return
        request_key = message.get("request_key")
        if request_key is not None:
            cached = self.idempotency.get(str(request_key))
            if cached is not None:
                # A duplicate of an already-answered request (client retry
                # or hedge): answer bit-identically without re-scoring.  The
                # "cached" marker lets the client tag this attempt's span as
                # an idempotency-cache hit.
                _REQ_ANSWERED.inc()
                if trace is not None:
                    trace.add("idempotency_hit", time.perf_counter() - arrival, depth=0)
                    trace.detail.update(
                        {"request_key": str(request_key), "model_version": self._model_version()}
                    )
                    trace.finish()
                await self._respond(
                    writer,
                    write_lock,
                    {"id": message_id, "kind": "answer", "answer": cached, "cached": True},
                )
                return
        if self.admission.deadline_expired_on_arrival(deadline):
            _REQ_DEADLINE.inc()
            await self._respond(
                writer,
                write_lock,
                error_response(
                    message_id,
                    ERROR_DEADLINE_EXCEEDED,
                    "deadline expired before admission; query refused unscored",
                ),
            )
            return
        if not self.admission.try_admit(connection_id):
            _REQ_REJECTED.inc()
            await self._respond(
                writer,
                write_lock,
                error_response(
                    message_id,
                    ERROR_OVERLOADED,
                    f"admission rejected the query "
                    f"(pending={self.admission.pending}/{self.admission.max_pending})",
                ),
            )
            return
        start = time.perf_counter()
        # Sampled stage waterfall: the depth-0 spans recorded here
        # (admission, decode, batcher, serialize) partition the end-to-end
        # latency; everything below them is grafted in by the micro-batcher.
        if trace is not None:
            trace.add("admission", start - arrival, depth=0)
        try:
            query: SimilarityQuery = decode_query(message.get("query"))
            if trace is not None:
                trace.add("decode", time.perf_counter() - start, depth=0)
            batcher_started = time.perf_counter()
            answer = await self.batcher.submit(query, trace, deadline)
            if trace is not None:
                trace.add("batcher", time.perf_counter() - batcher_started, depth=0)
        except DeadlineExceededError as exc:
            _REQ_DEADLINE.inc()
            await self._respond(
                writer,
                write_lock,
                error_response(message_id, ERROR_DEADLINE_EXCEEDED, str(exc)),
            )
            return
        except (ProtocolError, QueryError, KeyError, TypeError) as exc:
            _REQ_BAD_REQUEST.inc()
            await self._respond(
                writer, write_lock, error_response(message_id, ERROR_BAD_REQUEST, str(exc))
            )
            return
        except ServiceError as exc:
            if self._closing:
                code = ERROR_SHUTTING_DOWN
                _REQ_SHUTTING_DOWN.inc()
            else:
                code = ERROR_SERVER_ERROR
                _REQ_ERROR.inc()
            await self._respond(
                writer, write_lock, error_response(message_id, code, str(exc))
            )
            return
        except Exception as exc:  # engine/scoring failure — keep serving
            _REQ_ERROR.inc()
            await self._respond(
                writer, write_lock, error_response(message_id, ERROR_SERVER_ERROR, str(exc))
            )
            return
        finally:
            self.admission.release(connection_id)
        serialize_started = time.perf_counter()
        encoded = encode_answer(answer)
        if request_key is not None:
            self.idempotency.put(str(request_key), encoded)
        payload = {"id": message_id, "kind": "answer", "answer": encoded}
        latency = time.perf_counter() - start
        self.stats.record_latency(latency)
        _REQ_ANSWERED.inc()
        # Exemplar: a sampled query's trace id rides on its latency bucket,
        # linking a bad bucket straight to a concrete waterfall.
        _REQUEST_SECONDS.observe(
            latency, trace_id=None if trace is None else trace.trace_id
        )
        detail = {
            "connection": connection_id,
            "tau_hat": query.tau_hat,
            "gamma": query.gamma,
            "top_k": query.top_k,
            # Stamped per entry (not per ring): the tracer ring and slow log
            # survive hot swaps, so old entries must say which model served
            # them (regression: post-reload scrapes implied the new version).
            "model_version": self._model_version(),
        }
        if trace is not None:
            trace.add("serialize", latency - (serialize_started - start), depth=0)
            trace.detail.update(detail)
            trace.finish(latency + (start - arrival))
        if self.slow_log.record(latency, detail, trace):
            self.slow_query_logger.warning(
                "slow_query",
                trace_id=None if trace is None else trace.trace_id,
                latency_ms=latency * 1e3,
                connection=connection_id,
                model_version=detail["model_version"],
            )
        await self._respond(writer, write_lock, payload)

    def _model_version(self):
        """The serving engine's model version, or None before start()."""
        engine = self._engine
        return None if engine is None else engine.model_version

    async def _handle_admin(self, message_id, message, writer, write_lock) -> None:
        command = message.get("command")
        try:
            if command == "ping":
                result: Dict[str, Any] = {"pong": True, "closing": self._closing}
            elif command in ("stats", "metrics"):
                result = self.metrics()
            elif command == "slow":
                result = self.slow_log.as_dict()
            elif command == "traces":
                result = {
                    "tracer": self.tracer.as_dict(),
                    "recent": self.tracer.recent_traces(int(message.get("limit", 16))),
                }
            elif command == "prometheus":
                result = {
                    "content_type": PROMETHEUS_CONTENT_TYPE,
                    "text": prometheus_text(),
                }
            elif command == "logs":
                filters = {
                    key: str(message[key])
                    for key in ("logger", "level", "trace_id")
                    if message.get(key) is not None
                }
                result = get_event_log().as_dict(
                    limit=int(message.get("limit", 64)), **filters
                )
            elif command == "slo":
                result = self.slo.evaluate()
            elif command == "profile":
                result = self._profile_admin(str(message.get("action", "status")))
            elif command == "reload":
                result = await self.reload_engine(message.get("path"))
            else:
                await self._respond(
                    writer,
                    write_lock,
                    error_response(
                        message_id, ERROR_BAD_REQUEST, f"unknown admin command {command!r}"
                    ),
                )
                return
        except (ReproError, OSError, KeyError, TypeError, ValueError) as exc:
            # Same breadth as the SIGHUP path: a snapshot that passes the
            # header checks can still blow up while its body is rebuilt
            # (KeyError/ValueError from a malformed payload) — the admin
            # client must get its SERVER_ERROR frame, never a hang.
            await self._respond(
                writer, write_lock, error_response(message_id, ERROR_SERVER_ERROR, str(exc))
            )
            return
        await self._respond(
            writer, write_lock, {"id": message_id, "kind": "admin", "result": result}
        )

    def _profile_admin(self, action: str) -> Dict[str, Any]:
        """The ``profile`` admin command: start/stop/status/dump/reset."""
        profiler = self.profiler
        if action == "start":
            started = profiler.start()
            if started:
                self.log.info("profiler_started", interval_ms=profiler.interval * 1e3)
            return {"started": started, **profiler.as_dict()}
        if action == "stop":
            stopped = profiler.stop()
            if stopped:
                self.log.info("profiler_stopped", samples=profiler.samples)
            return {"stopped": stopped, **profiler.as_dict()}
        if action == "dump":
            return {"collapsed": profiler.collapsed(), **profiler.as_dict()}
        if action == "reset":
            profiler.reset()
            return profiler.as_dict()
        if action == "status":
            return profiler.as_dict()
        raise ServiceError(
            f"unknown profile action {action!r} "
            "(expected start/stop/status/dump/reset)"
        )

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    def metrics(self) -> Dict[str, Any]:
        """One JSON document of everything an operator scrapes.

        ``serving`` carries the bounded-window latency percentiles and
        query counts; ``engine`` the hot-swappable engine's identity, prune
        counters, and result-cache hit rate; ``batcher`` the coalescing
        occupancy; ``admission`` the load-shedding counters;
        ``observability`` the tracer/slow-log summaries.

        This is a **pure read**: the live counters (batcher flushes,
        engine cache and prune counters, uptime) are overlaid on a *copy*
        of the serving stats, so scraping at any frequency never perturbs
        the numbers being reported.
        """
        engine = self.engine
        uptime = time.time() - self._started_at if self._started_at else 0.0
        # Batch counters live in the micro-batcher, cache/prune counters in
        # the engine; overlay them on a snapshot of the serving stats so one
        # document tells the whole story without mutating any of them.
        serving = self.stats.as_dict()
        serving["num_batches"] = self.batcher.batches_flushed
        serving["elapsed_seconds"] = uptime
        serving["queries_per_second"] = (
            serving["num_queries"] / uptime if uptime > 0 else 0.0
        )
        if engine.cache is not None:
            cache_stats = engine.cache.stats()
            hits = int(cache_stats["hits"])
            misses = int(cache_stats["misses"])
            serving["cache_hits"] = hits
            serving["cache_misses"] = misses
            serving["cache_hit_rate"] = hits / (hits + misses) if hits + misses else 0.0
        else:
            cache_stats = None
        prune = engine.prune_counters
        generated = int(prune["candidates_generated"])
        serving["candidates_generated"] = generated
        serving["candidates_pruned"] = int(prune["candidates_pruned"])
        serving["candidates_verified"] = int(prune["candidates_verified"])
        serving["prune_rate"] = (
            serving["candidates_pruned"] / generated if generated > 0 else 0.0
        )
        return {
            "server": {
                "uptime_seconds": uptime,
                "connections": self._connections,
                "inflight_requests": len(self._inflight),
                "closing": self._closing,
                "reload_count": self._reloads,
                "reload_failures": self._reload_failures,
            },
            "resilience": {
                "idempotency": self.idempotency.as_dict(),
                "deadline_dropped_admission": self.admission.deadline_expired,
                "deadline_dropped_batcher": self.batcher.deadline_dropped,
            },
            "serving": serving,
            "engine": {
                "model_version": engine.model_version,
                "database_size": len(engine.database),
                "database_revision": engine.database.revision,
                "max_tau": engine.max_tau,
                "pruned_execution": engine.pruned_execution,
                "kernel_backend": engine.active_kernel_backend,
                "prune_counters": prune,
                "cache": cache_stats,
            },
            "batcher": self.batcher.as_dict(),
            "admission": self.admission.as_dict(),
            "build": _repro_build_info(),
            "observability": {
                "tracer": self.tracer.as_dict(),
                "slow_queries": {
                    "threshold_ms": self.slow_log.threshold_ms,
                    "total_slow": self.slow_log.total_slow,
                },
                "slo": {
                    objective["name"]: {
                        "state": objective["state"],
                        "burn_rates": objective["burn_rates"],
                    }
                    for objective in self.slo.evaluate()["objectives"]
                },
                "logs": {
                    "total_events": get_event_log().total_events,
                    "total_dropped": get_event_log().total_dropped,
                },
                "profiler": {
                    "running": self.profiler.running,
                    "samples": self.profiler.samples,
                },
            },
        }

    async def _handle_metrics_http(self, reader, writer) -> None:
        """Minimal plain-HTTP ``/metrics`` endpoint (Prometheus text).

        One request per connection, ``Connection: close`` — exactly what a
        scraper needs, with no HTTP framework dependency.  Anything other
        than ``GET /metrics`` (or ``/``) gets a 404.
        """
        try:
            request_line = await reader.readline()
            while True:  # drain the request headers up to the blank line
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1].split("?")[0] if len(parts) >= 2 else ""
            if path in ("/metrics", "/"):
                body = prometheus_text().encode("utf-8")
                status, content_type = "200 OK", PROMETHEUS_CONTENT_TYPE
            else:
                body = b"not found\n"
                status, content_type = "404 Not Found", "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):  # pragma: no cover - peer reset
            pass
        finally:
            writer.close()

    def __repr__(self) -> str:
        state = "closing" if self._closing else ("up" if self._server else "idle")
        return (
            f"<SimilarityService {state} served={self.stats.num_queries} "
            f"batches={self.batcher.batches_flushed} reloads={self._reloads}>"
        )


# ---------------------------------------------------------------------- #
# threaded harness
# ---------------------------------------------------------------------- #
class ServiceHandle:
    """Handle on a service running on its own thread (see :func:`start_service_thread`)."""

    def __init__(self, service: SimilarityService, loop, thread: threading.Thread, port: int):
        self.service = service
        self._loop = loop
        self._thread = thread
        self.host = service.host
        self.port = port

    @property
    def address(self):
        """``(host, port)`` tuple for a :class:`~repro.service.client.ServiceClient`."""
        return (self.host, self.port)

    def call(self, coroutine, timeout: float = 30.0):
        """Run a coroutine on the service loop and return its result."""
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the service and join its thread (idempotent)."""
        if self._thread.is_alive():
            try:
                self.call(self.service.stop(), timeout)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout)

    def kill(self, timeout: float = 30.0) -> None:
        """Abrupt, *non-graceful* stop: simulate a service crash.

        Stops the event loop from outside without draining — in-flight
        queries are abandoned and every connection resets, exactly what
        clients observe when a serving process dies.  Built for the
        fault-injection harness (:mod:`repro.testing.faults`); production
        shutdown is :meth:`stop`.
        """

        def _crash() -> None:
            # A real crash closes every fd: abort client transports (no
            # flush — peers see a reset, not a clean EOF) and close the
            # listening socket so the port is immediately rebindable.
            service = self.service
            for writer in list(service._writers):
                transport = getattr(writer, "transport", None)
                if transport is not None:
                    try:
                        transport.abort()
                    except Exception:
                        pass
            for server in (service._server, service._metrics_server):
                if server is not None:
                    try:
                        server.close()
                    except Exception:
                        pass
            self._loop.stop()

        if self._thread.is_alive():
            try:
                self._loop.call_soon_threadsafe(_crash)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service_thread(
    engine: Optional[BatchQueryEngine] = None, *, timeout: float = 30.0, **kwargs
) -> ServiceHandle:
    """Run a :class:`SimilarityService` on a dedicated daemon thread.

    Builds the service with ``kwargs``, starts it inside a fresh event loop
    on a new thread, and returns once the listening socket is bound.  The
    returned :class:`ServiceHandle` is a context manager whose ``stop()``
    performs the graceful drain.
    """
    service = SimilarityService(engine, **kwargs)
    started = threading.Event()
    holder: Dict[str, Any] = {}

    async def _main() -> None:
        try:
            await service.start()
            holder["port"] = service.port
            holder["loop"] = asyncio.get_running_loop()
        except BaseException as exc:  # surface bind/load failures to the caller
            holder["error"] = exc
            started.set()
            raise
        started.set()
        await service.serve_forever()

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except Exception:
            if not started.is_set():  # pragma: no cover - defensive
                started.set()

    thread = threading.Thread(target=_runner, name="repro-service", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise ServiceError("service failed to start within the timeout")
    if "error" in holder:
        raise ServiceError(f"service failed to start: {holder['error']}") from holder["error"]
    return ServiceHandle(service, holder["loop"], thread, holder["port"])
