"""Resilience primitives of the service layer: deadlines, retries, breakers.

The service's failure model is simple and explicit: **every query either
returns the correct answer or a typed error, in bounded time**.  The
primitives here are what make "bounded time" true on both ends of the
wire; the fault-injection harness in :mod:`repro.testing.faults` is the
correctness engine that proves it.

* :class:`Deadline` — an absolute monotonic-clock deadline derived from a
  request's relative ``deadline_ms`` budget.  Relative on the wire
  (client and server clocks are never compared), absolute in the process:
  admission, the micro-batcher, and the scoring offload all check the
  same remaining budget.
* :class:`RetryPolicy` — capped exponential backoff with deterministic
  seeded jitter.  Retries only *idempotent* work (similarity queries are
  pure reads) and only on errors that are known-safe to retry:
  ``OVERLOADED`` shedding, timeouts, and connection resets.  A
  ``BAD_REQUEST`` or a genuine server-side scoring error is never
  retried — the answer would not change.
* :class:`CircuitBreaker` — per-endpoint closed → open → half-open state
  machine.  Consecutive failures open the circuit; while open, attempts
  fail fast locally with :class:`~repro.exceptions.CircuitOpenError`
  (no retry storm against a struggling server); after ``reset_timeout``
  one half-open probe is allowed through, and its outcome decides
  between closing the circuit and re-opening it.
* :class:`HedgePolicy` — latency-percentile-driven request hedging: after
  the observed p-th percentile of recent latencies (or a fixed floor
  before enough samples exist), a second copy of the request is sent and
  the first response wins.  Hedges reuse the request's idempotency key so
  the server can serve the duplicate from its completed-request cache.
* :class:`IdempotencyCache` — the server-side half of idempotent request
  ids: a bounded LRU of completed ``request_key`` → wire-encoded answer,
  so a retried or hedged duplicate of an already-answered request is
  served bit-identically without re-scoring.

All knobs are plain constructor arguments; all randomness is seeded and
deterministic so chaos tests replay exactly.
"""

from __future__ import annotations

import random
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceededError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.obs.metrics import get_registry

__all__ = [
    "Deadline",
    "RetryPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "IdempotencyCache",
    "RETRYABLE_ERRORS",
]

_RETRIES = get_registry().counter(
    "repro_client_retries_total", "Client query retries by trigger", ("reason",)
)
_HEDGES = get_registry().counter(
    "repro_client_hedges_total", "Hedged duplicate requests by outcome", ("outcome",)
)
_HEDGES_SENT = _HEDGES.labels(outcome="sent")
_HEDGES_WON = _HEDGES.labels(outcome="won")
_HEDGES_CANCELLED = _HEDGES.labels(outcome="cancelled")
_BREAKER_TRANSITIONS = get_registry().counter(
    "repro_breaker_transitions_total", "Circuit-breaker state transitions", ("to",)
)
_BREAKER_FAST_FAILS = get_registry().counter(
    "repro_breaker_fast_fails_total", "Requests failed locally by an open breaker"
)
_IDEMPOTENT_HITS = get_registry().counter(
    "repro_idempotent_hits_total",
    "Duplicate requests served from the idempotency cache",
)

#: Exception types a :class:`RetryPolicy` treats as safe to retry for
#: idempotent queries: the server shed the request before scoring it
#: (``OVERLOADED``), the deadline/read timeout fired, or the connection
#: reset mid-flight.  ``TimeoutError`` covers ``socket.timeout`` and
#: ``asyncio.TimeoutError`` on all supported Pythons.
RETRYABLE_ERRORS: Tuple[type, ...] = (
    ServiceOverloadedError,
    DeadlineExceededError,
    TimeoutError,
    ConnectionError,
    OSError,
)


# ---------------------------------------------------------------------- #
# deadlines
# ---------------------------------------------------------------------- #
class Deadline:
    """An absolute point on the monotonic clock by which work must finish.

    Built from a *relative* millisecond budget (what travels on the wire —
    client and server wall clocks are never compared), checked as an
    absolute instant everywhere inside one process so repeated checks
    cannot drift.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after_ms(cls, budget_ms: float, *, clock: Optional[float] = None) -> "Deadline":
        """Deadline ``budget_ms`` milliseconds from now (or from ``clock``)."""
        budget = float(budget_ms)
        if budget <= 0:
            raise ServiceError("deadline_ms must be a positive number of milliseconds")
        now = time.monotonic() if clock is None else clock
        return cls(now + budget / 1000.0)

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> float:
        """Milliseconds left before expiry (negative once expired)."""
        return self.remaining() * 1000.0

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:
        return f"<Deadline remaining={self.remaining_ms():.1f}ms>"


# ---------------------------------------------------------------------- #
# retries
# ---------------------------------------------------------------------- #
class RetryPolicy:
    """Capped exponential backoff with deterministic, seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (>= 1; 1 disables retries).
    base_delay_ms:
        Backoff before the first retry; doubles per retry.
    max_delay_ms:
        Cap on any single backoff.
    jitter:
        Fraction of each delay randomised away (``0.5`` → the delay is
        drawn uniformly from ``[0.5·d, d]``).  Seeded, so a chaos run's
        retry timing replays exactly.
    seed:
        Seed of the jitter stream (``None`` → nondeterministic).
    retry_on:
        Exception types that are safe to retry (defaults to
        :data:`RETRYABLE_ERRORS`).  Anything else propagates immediately.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 3,
        base_delay_ms: float = 10.0,
        max_delay_ms: float = 1000.0,
        jitter: float = 0.5,
        seed: Optional[int] = None,
        retry_on: Tuple[type, ...] = RETRYABLE_ERRORS,
    ) -> None:
        if max_attempts < 1:
            raise ServiceError("max_attempts must be >= 1")
        if base_delay_ms < 0 or max_delay_ms < 0:
            raise ServiceError("backoff delays must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ServiceError("jitter must be within [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay_ms) / 1000.0
        self.max_delay = float(max_delay_ms) / 1000.0
        self.jitter = float(jitter)
        self.retry_on = tuple(retry_on)
        self._rng = random.Random(seed)
        #: Lifetime counter surfaced in client stats.
        self.retries = 0

    def is_retryable(self, error: BaseException) -> bool:
        """True when ``error`` is transient for an idempotent query.

        :class:`CircuitOpenError` is deliberately *not* retryable even
        though it subclasses :class:`ServiceError`: the breaker exists to
        stop exactly this retry traffic.
        """
        if isinstance(error, CircuitOpenError):
            return False
        return isinstance(error, self.retry_on)

    def delay_for(self, attempt: int) -> float:
        """Backoff (seconds) after failed attempt number ``attempt`` (1-based)."""
        delay = min(self.base_delay * (2.0 ** (attempt - 1)), self.max_delay)
        if self.jitter and delay > 0:
            low = delay * (1.0 - self.jitter)
            delay = self._rng.uniform(low, delay)
        return delay

    def attempts(self) -> Iterator[int]:
        """Yield attempt numbers ``1..max_attempts``."""
        return iter(range(1, self.max_attempts + 1))

    def record_retry(self, error: BaseException) -> None:
        """Count one retry (labelled with the triggering error class)."""
        self.retries += 1
        _RETRIES.labels(reason=type(error).__name__).inc()

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.max_attempts} "
            f"base={self.base_delay * 1000:.0f}ms cap={self.max_delay * 1000:.0f}ms>"
        )


# ---------------------------------------------------------------------- #
# circuit breaker
# ---------------------------------------------------------------------- #
class CircuitBreaker:
    """Per-endpoint closed → open → half-open breaker.

    Thread-safe: the sync client calls it from arbitrary threads and the
    async client from the event loop; one lock covers the tiny state
    machine.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that open the circuit.
    reset_timeout_ms:
        How long an open circuit rejects before allowing one half-open
        probe.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self, *, failure_threshold: int = 5, reset_timeout_ms: float = 1000.0
    ) -> None:
        if failure_threshold < 1:
            raise ServiceError("failure_threshold must be >= 1")
        if reset_timeout_ms <= 0:
            raise ServiceError("reset_timeout_ms must be positive")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout_ms) / 1000.0
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        #: Lifetime counters surfaced in client stats.
        self.opened = 0
        self.fast_failures = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._effective_state()

    def _effective_state(self) -> str:
        if self._state == self.OPEN and (
            time.monotonic() - self._opened_at >= self.reset_timeout
        ):
            self._transition(self.HALF_OPEN)
        return self._state

    def _transition(self, state: str) -> None:
        if state != self._state:
            self._state = state
            _BREAKER_TRANSITIONS.labels(to=state).inc()
            if state == self.HALF_OPEN:
                self._probe_inflight = False

    def allow(self) -> bool:
        """True when a request may be sent now (claims the half-open probe)."""
        with self._lock:
            state = self._effective_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            self.fast_failures += 1
            _BREAKER_FAST_FAILS.inc()
            return False

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a request may be sent now."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit breaker is {self._state} "
                f"(after {self._failures} consecutive failures)"
            )

    def record_success(self) -> None:
        """A request completed: close the circuit and reset the count."""
        with self._lock:
            self._failures = 0
            self._probe_inflight = False
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        """A request failed: count it, open at the threshold, re-open a probe."""
        with self._lock:
            self._failures += 1
            state = self._effective_state()
            if state == self.HALF_OPEN or self._failures >= self.failure_threshold:
                if self._state != self.OPEN:
                    self.opened += 1
                self._opened_at = time.monotonic()
                self._transition(self.OPEN)

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "state": self._effective_state(),
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_ms": self.reset_timeout * 1000.0,
                "opened": self.opened,
                "fast_failures": self.fast_failures,
            }

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.state} failures={self._failures}>"


# ---------------------------------------------------------------------- #
# hedging
# ---------------------------------------------------------------------- #
class HedgePolicy:
    """Latency-percentile-driven request hedging (first response wins).

    Tracks a bounded window of observed request latencies; a request still
    unanswered after the ``percentile``-th of that window (or
    ``min_delay_ms`` until enough samples exist) gets a duplicate send.
    The duplicate carries the same idempotency key, so the server answers
    it from the completed-request cache when the primary already finished.

    Parameters
    ----------
    percentile:
        Latency percentile after which to hedge (e.g. ``95.0``).
    min_delay_ms:
        Hedge delay floor, and the delay used before ``min_samples``
        observations have been recorded.
    min_samples:
        Observations required before the percentile is trusted.
    window:
        Size of the latency ring.
    max_hedges:
        Duplicate sends per request (>= 1).
    """

    def __init__(
        self,
        *,
        percentile: float = 95.0,
        min_delay_ms: float = 10.0,
        min_samples: int = 16,
        window: int = 256,
        max_hedges: int = 1,
    ) -> None:
        if not 0.0 < percentile < 100.0:
            raise ServiceError("percentile must be within (0, 100)")
        if min_delay_ms < 0:
            raise ServiceError("min_delay_ms must be non-negative")
        if max_hedges < 1:
            raise ServiceError("max_hedges must be >= 1")
        self.percentile = float(percentile)
        self.min_delay = float(min_delay_ms) / 1000.0
        self.min_samples = int(min_samples)
        self.max_hedges = int(max_hedges)
        self._latencies: deque = deque(maxlen=int(window))
        self._lock = threading.Lock()
        #: Lifetime counters surfaced in client stats.
        self.hedges_sent = 0
        self.hedges_won = 0
        self.hedges_cancelled = 0

    def observe(self, latency_seconds: float) -> None:
        """Record one completed request's latency."""
        with self._lock:
            self._latencies.append(float(latency_seconds))

    def hedge_delay(self) -> float:
        """Seconds to wait for the primary before sending the duplicate."""
        with self._lock:
            samples = sorted(self._latencies)
        if len(samples) < self.min_samples:
            return self.min_delay
        rank = min(
            len(samples) - 1, int(len(samples) * self.percentile / 100.0)
        )
        return max(samples[rank], self.min_delay)

    def record_sent(self) -> None:
        self.hedges_sent += 1
        _HEDGES_SENT.inc()

    def record_won(self) -> None:
        """The hedged duplicate's response arrived before the primary's."""
        self.hedges_won += 1
        _HEDGES_WON.inc()

    def record_cancelled(self) -> None:
        """The primary answered first; the duplicate's response is discarded."""
        self.hedges_cancelled += 1
        _HEDGES_CANCELLED.inc()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "percentile": self.percentile,
            "min_delay_ms": self.min_delay * 1000.0,
            "current_delay_ms": self.hedge_delay() * 1000.0,
            "hedges_sent": self.hedges_sent,
            "hedges_won": self.hedges_won,
            "hedges_cancelled": self.hedges_cancelled,
        }

    def __repr__(self) -> str:
        return (
            f"<HedgePolicy p{self.percentile:g} sent={self.hedges_sent} "
            f"won={self.hedges_won}>"
        )


# ---------------------------------------------------------------------- #
# idempotent request ids (server side)
# ---------------------------------------------------------------------- #
class IdempotencyCache:
    """Bounded LRU of completed ``request_key`` → wire-encoded answer.

    Retried and hedged requests reuse their logical request key; when the
    original already completed, the duplicate is answered bit-identically
    from here without touching the engine.  Only *successful* answers are
    cached — errors are transient by definition and must re-execute.

    Event-loop confined (like the admission controller): the server calls
    it only from the asyncio loop thread.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 0:
            raise ServiceError("capacity must be >= 0 (0 disables the cache)")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Optional[str]) -> Optional[Dict[str, Any]]:
        """The cached wire answer for ``key``, or ``None``."""
        if not key or not self.capacity:
            return None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _IDEMPOTENT_HITS.inc()
        return entry

    def put(self, key: Optional[str], answer_payload: Dict[str, Any]) -> None:
        """Remember the wire-encoded answer of a completed request."""
        if not key or not self.capacity:
            return
        self._entries[key] = answer_payload
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }
