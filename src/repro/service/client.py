"""Clients of the similarity-search service (sync sockets and asyncio).

Both clients speak the length-prefixed JSON protocol of
:mod:`repro.service.protocol` and support *pipelining*: requests carry
client-assigned ids, so many queries can be on the wire at once and the
responses — which the server may complete out of order, batch by batch —
are matched back by id.  Pipelined submission is what lets even a single
connection feed the server's micro-batcher full batches.

* :class:`ServiceClient` — blocking sockets, no extra threads; the right
  tool for scripts, tests, and benchmark drivers.  ``query_many`` sends
  the whole stream before reading the first response.
* :class:`AsyncServiceClient` — an asyncio variant with a background
  reader task dispatching responses to per-request futures; concurrent
  ``await client.query(...)`` calls pipeline naturally.

Fault tolerance (see :mod:`repro.service.resilience`):

* **Timeouts always.**  Both clients bound connect and every frame read
  (``connect_timeout`` / ``read_timeout``, default 30 s) — a hung or
  stalled server can no longer block a caller forever.
* **Deadlines.**  ``query(..., deadline_ms=...)`` ships the budget to the
  server (which refuses/sheds expired work unscored) and bounds the local
  wait to the same budget.
* **Retries.**  Pass a :class:`~repro.service.resilience.RetryPolicy` and
  transient failures — ``OVERLOADED`` shedding, timeouts, connection
  resets, corrupt frames — are retried with capped exponential backoff
  and seeded jitter.  Only idempotent queries retry; every attempt of one
  logical request reuses its ``request_key``, so the server answers
  duplicates from its idempotency cache instead of re-scoring.
* **Hedging** (async client).  Pass a
  :class:`~repro.service.resilience.HedgePolicy` and a request still
  unanswered after the observed latency percentile gets a duplicate send;
  the first response wins and the loser is discarded.
* **Circuit breaking.**  Pass a
  :class:`~repro.service.resilience.CircuitBreaker` (shareable between
  clients of one endpoint) and repeated failures fail fast locally with
  :class:`~repro.exceptions.CircuitOpenError` instead of piling retries
  onto a struggling server.

Typed errors: an ``OVERLOADED`` response raises
:class:`~repro.exceptions.ServiceOverloadedError` (safe to retry after
backoff), ``DEADLINE_EXCEEDED`` raises
:class:`~repro.exceptions.DeadlineExceededError`, ``BAD_REQUEST`` raises
:class:`~repro.exceptions.ProtocolError`, a dead or poisoned connection
raises :class:`~repro.exceptions.ConnectionLostError`, anything else
:class:`~repro.exceptions.ServiceError`.

Distributed tracing: pass a :class:`~repro.obs.trace.Tracer` and each
*logical* query sampled by it becomes the **root span** of an end-to-end
distributed trace — the client propagates the context on the wire
(``trace`` frame field), the server joins it, and every retry / hedge
attempt is recorded as a tagged child span (attempt number + outcome:
``answered``, ``idempotency-cache-hit``, ``won``, ``cancelled``, or the
failure's exception name), so one trace id tells the whole story of a
flaky request.
"""

from __future__ import annotations

import asyncio
import os
import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import ConnectionLostError, ProtocolError, ServiceError
from repro.obs.trace import QueryTrace, Tracer
from repro.service.protocol import (
    decode_answer,
    encode_frame,
    exception_for_error,
    query_request,
    read_frame,
    recv_frame,
    send_frame,
)
from repro.service.resilience import CircuitBreaker, HedgePolicy, RetryPolicy

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _response_payload(message: Dict[str, Any]) -> Union[QueryAnswer, Dict[str, Any], ServiceError]:
    """Turn one response frame into an answer, an admin result, or an error."""
    kind = message.get("kind")
    if kind == "answer":
        return decode_answer(message["answer"])
    if kind == "admin":
        return message.get("result", {})
    if kind == "error":
        return exception_for_error(message)
    return ProtocolError(f"unexpected response kind {kind!r}")


def _new_key_prefix() -> str:
    """A globally-unique idempotency-key prefix for one client instance."""
    return os.urandom(8).hex()


def _future_outcome(future, won: str = "answered") -> str:
    """Trace-tag outcome of a completed request future.

    ``won`` is what a plain scored answer is called ("answered" for the
    primary send, "won" for a hedge duplicate); an answer the server
    marked ``cached`` is an idempotency-cache hit either way.
    """
    if getattr(future, "served_from_cache", False):
        return "idempotency-cache-hit"
    return won


class ServiceClient:
    """Blocking-socket client with pipelined requests and optional retries.

    Parameters
    ----------
    host, port:
        The service address (``ServiceHandle.address`` unpacks into both).
    timeout:
        Back-compat default for both ``connect_timeout`` and
        ``read_timeout``.
    connect_timeout:
        Seconds allowed for the TCP connect (hung/blackholed servers fail
        fast instead of blocking the caller).
    read_timeout:
        Seconds allowed for each frame read; a stalled server surfaces as
        a timeout error (retryable) instead of a forever-block.
    retry:
        Optional :class:`RetryPolicy` applied to queries (idempotent
        reads).  Transient failures reconnect and resend unanswered
        queries with their original ``request_key``.
    breaker:
        Optional :class:`CircuitBreaker` for this endpoint.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`: queries it samples
        become client-side root traces whose context is propagated to the
        server, with every retry attempt a tagged child span.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._host = host
        self._port = port
        self.connect_timeout = timeout if connect_timeout is None else float(connect_timeout)
        self.read_timeout = timeout if read_timeout is None else float(read_timeout)
        self.retry = retry
        self.breaker = breaker
        self.tracer = tracer
        self._key_prefix = _new_key_prefix()
        self._next_key = 0
        self._next_id = 0
        self._closed = False
        self._sock = self._connect()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        # ``create_connection``'s timeout sticks to the socket; pin the
        # steady-state one explicitly so every frame read is bounded.
        sock.settimeout(self.read_timeout)
        return sock

    def _reconnect(self) -> None:
        """Replace a poisoned connection (after a timeout/reset mid-stream)."""
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = self._connect()

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _new_request_key(self) -> str:
        self._next_key += 1
        return f"{self._key_prefix}-{self._next_key}"

    def _read_response(self) -> Dict[str, Any]:
        message = recv_frame(self._sock)
        if message is None:
            raise ConnectionLostError("server closed the connection")
        return message

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(
        self, query: SimilarityQuery, *, deadline_ms: Optional[float] = None
    ) -> QueryAnswer:
        """Answer one query (raises the typed error on rejection)."""
        result = self.query_many([query], return_errors=True, deadline_ms=deadline_ms)[0]
        if isinstance(result, Exception):
            raise result
        return result

    def query_many(
        self,
        queries: Iterable[SimilarityQuery],
        *,
        return_errors: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> List[Union[QueryAnswer, ServiceError]]:
        """Answer a stream of queries, pipelined, in input order.

        All requests are written before the first response is read, so the
        server sees them concurrently and can micro-batch them.  With
        ``return_errors=True`` per-query failures (e.g. ``OVERLOADED``)
        come back as exception objects in their slots; otherwise the first
        failure is raised after every response has been drained (the
        connection stays usable).

        With a :class:`RetryPolicy` configured, transient failures are
        retried: per-query typed errors (``OVERLOADED``, a missed
        deadline) back off and resend just the failed slots, while a
        poisoned stream (timeout, reset, corrupt frame) reconnects and
        resends everything unanswered.  Each slot keeps its
        ``request_key`` across attempts, so the server never re-scores a
        query it already answered.
        """
        stream = list(queries)
        if not stream:
            return []
        keys = [self._new_request_key() for _ in stream]
        traces: List[Optional[QueryTrace]] = [None] * len(stream)
        if self.tracer is not None:
            endpoint = f"{self._host}:{self._port}"
            traces = [
                self.tracer.sample({"endpoint": endpoint, "request_key": key})
                for key in keys
            ]
        results: List = [None] * len(stream)
        outstanding = list(range(len(stream)))
        attempt = 1
        try:
            while True:
                if self.breaker is not None:
                    self.breaker.check()
                round_started = time.perf_counter()
                try:
                    roundtrip = self._pipeline(
                        [stream[slot] for slot in outstanding],
                        [keys[slot] for slot in outstanding],
                        deadline_ms,
                        [traces[slot] for slot in outstanding],
                        attempt,
                    )
                except (ConnectionError, TimeoutError, OSError, ProtocolError) as exc:
                    # The stream is poisoned: responses can no longer be matched.
                    if isinstance(exc, ProtocolError):
                        exc = ConnectionLostError(f"response stream poisoned: {exc}")
                    for slot in outstanding:
                        trace = traces[slot]
                        if trace is not None:
                            trace.add(
                                "attempt",
                                time.perf_counter() - round_started,
                                depth=1,
                                offset=round_started - trace.started_at,
                                tags={"attempt": attempt, "outcome": type(exc).__name__},
                            )
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    if (
                        self.retry is None
                        or attempt >= self.retry.max_attempts
                        or not self.retry.is_retryable(exc)
                    ):
                        raise exc
                    self.retry.record_retry(exc)
                    time.sleep(self.retry.delay_for(attempt))
                    attempt += 1
                    self._reconnect()
                    continue
                if self.breaker is not None:
                    self.breaker.record_success()
                retryable_slots: List[int] = []
                for slot, result in zip(outstanding, roundtrip):
                    results[slot] = result
                    if (
                        isinstance(result, Exception)
                        and self.retry is not None
                        and self.retry.is_retryable(result)
                    ):
                        retryable_slots.append(slot)
                if (
                    retryable_slots
                    and self.retry is not None
                    and attempt < self.retry.max_attempts
                ):
                    self.retry.record_retry(results[retryable_slots[0]])
                    time.sleep(self.retry.delay_for(attempt))
                    attempt += 1
                    outstanding = retryable_slots
                    continue
                break
        finally:
            # One root trace per logical query, however many attempts it took
            # (and even when the whole call raises) — never an orphaned span.
            for trace in traces:
                if trace is not None:
                    trace.detail["attempts"] = attempt
                    trace.finish()
        if not return_errors:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    def _pipeline(
        self,
        queries: List[SimilarityQuery],
        keys: List[str],
        deadline_ms: Optional[float],
        traces: Optional[List[Optional[QueryTrace]]] = None,
        attempt: int = 1,
    ) -> List[Union[QueryAnswer, ServiceError]]:
        """One pipelined send-all-then-read-all pass (no retry logic)."""
        if traces is None:
            traces = [None] * len(queries)
        pending: Dict[int, int] = {}
        send_started: List[float] = [0.0] * len(queries)
        send_done: List[float] = [0.0] * len(queries)
        for position, (query, key, trace) in enumerate(zip(queries, keys, traces)):
            message_id = self._new_id()
            pending[message_id] = position
            send_started[position] = time.perf_counter()
            send_frame(
                self._sock,
                query_request(
                    message_id,
                    query,
                    deadline_ms=deadline_ms,
                    request_key=key,
                    trace=None if trace is None else trace.context().to_traceparent(),
                ),
            )
            send_done[position] = time.perf_counter()
            if trace is not None and attempt == 1:
                trace.add(
                    "send",
                    send_done[position] - send_started[position],
                    offset=send_started[position] - trace.started_at,
                )
        results: List = [None] * len(queries)
        while pending:
            message = self._read_response()
            message_id = message.get("id")
            if message_id not in pending:
                raise ProtocolError(f"response for unknown request id {message_id!r}")
            position = pending.pop(message_id)
            arrival = time.perf_counter()
            result = _response_payload(message)
            results[position] = result
            trace = traces[position]
            if trace is not None:
                if isinstance(result, Exception):
                    outcome = type(result).__name__
                elif message.get("cached"):
                    outcome = "idempotency-cache-hit"
                else:
                    outcome = "answered"
                trace.add(
                    "attempt",
                    arrival - send_started[position],
                    depth=1,
                    offset=send_started[position] - trace.started_at,
                    tags={"attempt": attempt, "outcome": outcome},
                )
                if not isinstance(result, Exception):
                    trace.add(
                        "reply",
                        arrival - send_done[position],
                        offset=send_done[position] - trace.started_at,
                    )
        return results

    # ------------------------------------------------------------------ #
    # admin
    # ------------------------------------------------------------------ #
    def _admin(self, command: str, **extra) -> Dict[str, Any]:
        message_id = self._new_id()
        send_frame(self._sock, {"id": message_id, "kind": "admin", "command": command, **extra})
        message = self._read_response()
        if message.get("id") != message_id:
            raise ProtocolError("admin response id mismatch (pipelined queries pending?)")
        result = _response_payload(message)
        if isinstance(result, Exception):
            raise result
        return result

    def ping(self) -> Dict[str, Any]:
        """Liveness probe."""
        return self._admin("ping")

    def stats(self) -> Dict[str, Any]:
        """Scrape the metrics endpoint (serving/engine/batcher/admission)."""
        return self._admin("stats")

    def slow(self) -> Dict[str, Any]:
        """Fetch the slow-query log (threshold, totals, entries + waterfalls)."""
        return self._admin("slow")

    def traces(self, limit: int = 16) -> Dict[str, Any]:
        """Fetch the tracer summary and the most recent sampled waterfalls."""
        return self._admin("traces", limit=int(limit))

    def prometheus(self) -> str:
        """Fetch the Prometheus text exposition of the server's metrics registry."""
        return self._admin("prometheus")["text"]

    def logs(self, limit: int = 64, **filters: str) -> Dict[str, Any]:
        """Fetch the structured event log (filters: logger=, level=, trace_id=)."""
        return self._admin("logs", limit=int(limit), **filters)

    def slo(self) -> Dict[str, Any]:
        """Evaluate the server's SLOs: burn rates and ok/warn/page states."""
        return self._admin("slo")

    def profile(self, action: str = "status") -> Dict[str, Any]:
        """Drive the server's sampling profiler (start/stop/dump/reset/status)."""
        return self._admin("profile", action=str(action))

    def reload(self, path=None) -> Dict[str, Any]:
        """Hot-swap the server's engine from a snapshot (its default path if None).

        Never retried: reload mutates server state and is not idempotent
        from the client's point of view.
        """
        extra = {} if path is None else {"path": str(path)}
        return self._admin("reload", **extra)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio client: concurrent ``query`` awaits pipeline on one connection.

    Build with :meth:`connect`; a background reader task dispatches
    responses to per-request futures, so any number of coroutines can have
    queries in flight simultaneously — exactly the traffic shape the
    server's micro-batcher coalesces.

    Resilience: every await is bounded by ``read_timeout`` (or the
    query's ``deadline_ms``, whichever is tighter); a
    :class:`RetryPolicy` retries transient failures (reconnecting when
    the connection died); a :class:`HedgePolicy` sends a duplicate of a
    slow request after the observed latency percentile with
    first-response-wins demux; a :class:`CircuitBreaker` fails fast while
    the endpoint is struggling.
    """

    def __init__(
        self,
        reader,
        writer,
        *,
        read_timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        tracer: Optional[Tracer] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.read_timeout = float(read_timeout)
        self.retry = retry
        self.hedge = hedge
        self.breaker = breaker
        self.tracer = tracer
        self._host: Optional[str] = None
        self._port: Optional[int] = None
        self._connect_timeout: float = 30.0
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._key_prefix = _new_key_prefix()
        self._next_key = 0
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        connect_timeout: float = 30.0,
        read_timeout: float = 30.0,
        retry: Optional[RetryPolicy] = None,
        hedge: Optional[HedgePolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        tracer: Optional[Tracer] = None,
    ) -> "AsyncServiceClient":
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), connect_timeout
        )
        client = cls(
            reader,
            writer,
            read_timeout=read_timeout,
            retry=retry,
            hedge=hedge,
            breaker=breaker,
            tracer=tracer,
        )
        # Remember the endpoint so retries can re-dial a dead connection.
        client._host, client._port = host, port
        client._connect_timeout = float(connect_timeout)
        return client

    # ------------------------------------------------------------------ #
    # connection plumbing
    # ------------------------------------------------------------------ #
    async def _read_loop(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is None or future.done():
                    continue  # late hedge loser / abandoned timeout — discard
                result = _response_payload(message)
                if message.get("cached"):
                    # Served from the server's idempotency cache (a retry or
                    # hedge duplicate) — the trace tags the attempt outcome.
                    future.served_from_cache = True
                if isinstance(result, Exception):
                    future.set_exception(result)
                else:
                    future.set_result(result)
        except Exception as exc:  # connection torn down mid-frame
            error = exc
        finally:
            # Whatever killed the read loop, the connection is unusable:
            # surface it as a (retryable) connection loss to every waiter.
            failure = ConnectionLostError(
                f"service connection lost: {error}"
                if error
                else "server closed the connection"
            )
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    @property
    def connection_lost(self) -> bool:
        """True when the background reader has exited (connection unusable)."""
        return self._reader_task.done()

    async def _ensure_connection(self) -> None:
        """Re-dial a dead connection when the endpoint is known (retry path)."""
        if not self.connection_lost or self._closed:
            return
        if self._host is None:
            raise ConnectionLostError(
                "service connection lost (no endpoint configured to re-dial)"
            )
        try:
            self._writer.close()
        except Exception:
            pass
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self._connect_timeout
        )
        self._reader = reader
        self._writer = writer
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    def _new_request_key(self) -> str:
        self._next_key += 1
        return f"{self._key_prefix}-{self._next_key}"

    def _register(self, message: Dict[str, Any]) -> "asyncio.Future":
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        message["id"] = self._next_id
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self._pending[self._next_id] = future
        self._writer.write(encode_frame(message))
        return future

    def _abandon(self, future: "asyncio.Future") -> None:
        """Unregister a future whose response we no longer want."""
        for message_id, pending in list(self._pending.items()):
            if pending is future:
                self._pending.pop(message_id, None)
        if not future.done():
            future.cancel()

    async def _request(self, message: Dict[str, Any], timeout: Optional[float] = None):
        future = self._register(message)
        await self._writer.drain()
        wait = self.read_timeout if timeout is None else timeout
        try:
            return await asyncio.wait_for(asyncio.shield(future), wait)
        except asyncio.TimeoutError:
            self._abandon(future)
            raise TimeoutError(f"no response within {wait:.3f}s") from None

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    async def query(
        self, query: SimilarityQuery, *, deadline_ms: Optional[float] = None
    ) -> QueryAnswer:
        """Answer one query (concurrent callers share the connection).

        Applies, in order: circuit breaker → hedging → retry policy.
        With a ``tracer``, the logical query is one root trace: every
        retry attempt (and its hedge duplicate, when sent) is a tagged
        depth-1 child span.
        """
        attempt = 1
        request_key = self._new_request_key()
        trace = None
        if self.tracer is not None:
            trace = self.tracer.sample(
                {"endpoint": f"{self._host}:{self._port}", "request_key": request_key}
            )
        try:
            while True:
                if self.breaker is not None:
                    self.breaker.check()
                attempt_started = time.perf_counter()
                try:
                    if self.retry is not None:
                        await self._ensure_connection()
                    answer = await self._query_once(
                        query, deadline_ms, request_key, trace, attempt
                    )
                except Exception as exc:
                    if trace is not None:
                        trace.add(
                            "attempt",
                            time.perf_counter() - attempt_started,
                            depth=1,
                            offset=attempt_started - trace.started_at,
                            tags={"attempt": attempt, "outcome": type(exc).__name__},
                        )
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    if (
                        self.retry is None
                        or attempt >= self.retry.max_attempts
                        or not self.retry.is_retryable(exc)
                    ):
                        raise
                    self.retry.record_retry(exc)
                    await asyncio.sleep(self.retry.delay_for(attempt))
                    attempt += 1
                    continue
                if self.breaker is not None:
                    self.breaker.record_success()
                return answer
        finally:
            if trace is not None:
                trace.detail["attempts"] = attempt
                trace.finish()

    async def _query_once(
        self,
        query: SimilarityQuery,
        deadline_ms: Optional[float],
        request_key: str,
        trace: Optional[QueryTrace] = None,
        attempt: int = 1,
    ) -> QueryAnswer:
        """One attempt: send (and possibly hedge) a single query request."""
        wait = self.read_timeout
        if deadline_ms is not None:
            wait = min(wait, float(deadline_ms) / 1000.0)
        started = time.perf_counter()
        message = query_request(
            None,
            query,
            deadline_ms=deadline_ms,
            request_key=request_key,
            trace=None if trace is None else trace.context().to_traceparent(),
        )
        primary = self._register(dict(message))
        await self._writer.drain()
        send_done = time.perf_counter()
        if trace is not None and attempt == 1:
            trace.add("send", send_done - started, offset=started - trace.started_at)
        if self.hedge is None:
            try:
                answer = await asyncio.wait_for(asyncio.shield(primary), wait)
            except asyncio.TimeoutError:
                self._abandon(primary)
                raise TimeoutError(f"no response within {wait:.3f}s") from None
            self._observe_latency(started)
            if trace is not None:
                arrival = time.perf_counter()
                trace.add(
                    "attempt",
                    arrival - started,
                    depth=1,
                    offset=started - trace.started_at,
                    tags={"attempt": attempt, "outcome": _future_outcome(primary)},
                )
                trace.add("reply", arrival - send_done, offset=send_done - trace.started_at)
            return answer

        hedge_delay = min(self.hedge.hedge_delay(), wait)
        futures = [primary]
        hedged = None
        hedge_sent_at = 0.0
        try:
            done, _ = await asyncio.wait({primary}, timeout=hedge_delay)
            if not done:
                # Primary is slow: send the duplicate (same request_key, so
                # the server can answer from its idempotency cache) and let
                # the first response win.
                self.hedge.record_sent()
                hedge_sent_at = time.perf_counter()
                hedged = self._register(dict(message))
                futures.append(hedged)
                await self._writer.drain()
                remaining = max(wait - (time.perf_counter() - started), 0.001)
                done, _ = await asyncio.wait(
                    set(futures), timeout=remaining, return_when=asyncio.FIRST_COMPLETED
                )
                if not done:
                    raise TimeoutError(f"no response within {wait:.3f}s")
                winner = primary if primary in done else next(iter(done))
                if winner is primary:
                    self.hedge.record_cancelled()
                else:
                    self.hedge.record_won()
            else:
                winner = primary
            self._observe_latency(started)
            answer = winner.result()
            if trace is not None:
                arrival = time.perf_counter()
                primary_outcome = (
                    "cancelled"
                    if hedged is not None and winner is hedged
                    else _future_outcome(primary)
                )
                trace.add(
                    "attempt",
                    arrival - started,
                    depth=1,
                    offset=started - trace.started_at,
                    tags={"attempt": attempt, "outcome": primary_outcome},
                )
                if hedged is not None:
                    hedge_outcome = (
                        _future_outcome(hedged, won="won")
                        if winner is hedged
                        else "cancelled"
                    )
                    trace.add(
                        "hedge",
                        arrival - hedge_sent_at,
                        depth=1,
                        offset=hedge_sent_at - trace.started_at,
                        tags={"attempt": attempt, "outcome": hedge_outcome},
                    )
                trace.add("reply", arrival - send_done, offset=send_done - trace.started_at)
            return answer
        finally:
            for future in futures:
                if not future.done():
                    self._abandon(future)

    def _observe_latency(self, started: float) -> None:
        if self.hedge is not None:
            self.hedge.observe(time.perf_counter() - started)

    async def query_many(
        self,
        queries: Iterable[SimilarityQuery],
        *,
        return_errors: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> List[Union[QueryAnswer, ServiceError]]:
        """Pipeline a stream of queries; answers return in input order."""
        results = await asyncio.gather(
            *(self.query(query, deadline_ms=deadline_ms) for query in queries),
            return_exceptions=True,
        )
        if not return_errors:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return list(results)

    # ------------------------------------------------------------------ #
    # admin
    # ------------------------------------------------------------------ #
    async def ping(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "ping"})

    async def stats(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "stats"})

    async def slow(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "slow"})

    async def traces(self, limit: int = 16) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "traces", "limit": int(limit)})

    async def prometheus(self) -> str:
        result = await self._request({"kind": "admin", "command": "prometheus"})
        return result["text"]

    async def logs(self, limit: int = 64, **filters: str) -> Dict[str, Any]:
        return await self._request(
            {"kind": "admin", "command": "logs", "limit": int(limit), **filters}
        )

    async def slo(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "slo"})

    async def profile(self, action: str = "status") -> Dict[str, Any]:
        return await self._request(
            {"kind": "admin", "command": "profile", "action": str(action)}
        )

    async def reload(self, path=None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"kind": "admin", "command": "reload"}
        if path is not None:
            message["path"] = str(path)
        return await self._request(message)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await asyncio.gather(self._reader_task, return_exceptions=True)

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
