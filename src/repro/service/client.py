"""Clients of the similarity-search service (sync sockets and asyncio).

Both clients speak the length-prefixed JSON protocol of
:mod:`repro.service.protocol` and support *pipelining*: requests carry
client-assigned ids, so many queries can be on the wire at once and the
responses — which the server may complete out of order, batch by batch —
are matched back by id.  Pipelined submission is what lets even a single
connection feed the server's micro-batcher full batches.

* :class:`ServiceClient` — blocking sockets, no extra threads; the right
  tool for scripts, tests, and benchmark drivers.  ``query_many`` sends
  the whole stream before reading the first response.
* :class:`AsyncServiceClient` — an asyncio variant with a background
  reader task dispatching responses to per-request futures; concurrent
  ``await client.query(...)`` calls pipeline naturally.

Typed errors: an ``OVERLOADED`` response raises
:class:`~repro.exceptions.ServiceOverloadedError` (safe to retry after
backoff), ``BAD_REQUEST`` raises :class:`~repro.exceptions.ProtocolError`,
anything else :class:`~repro.exceptions.ServiceError`.
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import ProtocolError, ServiceError
from repro.service.protocol import (
    decode_answer,
    encode_frame,
    encode_query,
    exception_for_error,
    read_frame,
    recv_frame,
    send_frame,
)

__all__ = ["ServiceClient", "AsyncServiceClient"]


def _response_payload(message: Dict[str, Any]) -> Union[QueryAnswer, Dict[str, Any], ServiceError]:
    """Turn one response frame into an answer, an admin result, or an error."""
    kind = message.get("kind")
    if kind == "answer":
        return decode_answer(message["answer"])
    if kind == "admin":
        return message.get("result", {})
    if kind == "error":
        return exception_for_error(message)
    return ProtocolError(f"unexpected response kind {kind!r}")


class ServiceClient:
    """Blocking-socket client with pipelined requests.

    Parameters
    ----------
    host, port:
        The service address (``ServiceHandle.address`` unpacks into both).
    timeout:
        Socket timeout in seconds for connect and each frame read.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 30.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _read_response(self) -> Dict[str, Any]:
        message = recv_frame(self._sock)
        if message is None:
            raise ServiceError("server closed the connection")
        return message

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, query: SimilarityQuery) -> QueryAnswer:
        """Answer one query (raises the typed error on rejection)."""
        result = self.query_many([query], return_errors=True)[0]
        if isinstance(result, Exception):
            raise result
        return result

    def query_many(
        self, queries: Iterable[SimilarityQuery], *, return_errors: bool = False
    ) -> List[Union[QueryAnswer, ServiceError]]:
        """Answer a stream of queries, pipelined, in input order.

        All requests are written before the first response is read, so the
        server sees them concurrently and can micro-batch them.  With
        ``return_errors=True`` per-query failures (e.g. ``OVERLOADED``)
        come back as exception objects in their slots; otherwise the first
        failure is raised after every response has been drained (the
        connection stays usable).
        """
        stream = list(queries)
        if not stream:
            return []
        pending: Dict[int, int] = {}
        for position, query in enumerate(stream):
            message_id = self._new_id()
            pending[message_id] = position
            send_frame(
                self._sock, {"id": message_id, "kind": "query", "query": encode_query(query)}
            )
        results: List = [None] * len(stream)
        while pending:
            message = self._read_response()
            message_id = message.get("id")
            if message_id not in pending:
                raise ProtocolError(f"response for unknown request id {message_id!r}")
            results[pending.pop(message_id)] = _response_payload(message)
        if not return_errors:
            for result in results:
                if isinstance(result, Exception):
                    raise result
        return results

    # ------------------------------------------------------------------ #
    # admin
    # ------------------------------------------------------------------ #
    def _admin(self, command: str, **extra) -> Dict[str, Any]:
        message_id = self._new_id()
        send_frame(self._sock, {"id": message_id, "kind": "admin", "command": command, **extra})
        message = self._read_response()
        if message.get("id") != message_id:
            raise ProtocolError("admin response id mismatch (pipelined queries pending?)")
        result = _response_payload(message)
        if isinstance(result, Exception):
            raise result
        return result

    def ping(self) -> Dict[str, Any]:
        """Liveness probe."""
        return self._admin("ping")

    def stats(self) -> Dict[str, Any]:
        """Scrape the metrics endpoint (serving/engine/batcher/admission)."""
        return self._admin("stats")

    def slow(self) -> Dict[str, Any]:
        """Fetch the slow-query log (threshold, totals, entries + waterfalls)."""
        return self._admin("slow")

    def traces(self, limit: int = 16) -> Dict[str, Any]:
        """Fetch the tracer summary and the most recent sampled waterfalls."""
        return self._admin("traces", limit=int(limit))

    def prometheus(self) -> str:
        """Fetch the Prometheus text exposition of the server's metrics registry."""
        return self._admin("prometheus")["text"]

    def reload(self, path=None) -> Dict[str, Any]:
        """Hot-swap the server's engine from a snapshot (its default path if None)."""
        extra = {} if path is None else {"path": str(path)}
        return self._admin("reload", **extra)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AsyncServiceClient:
    """Asyncio client: concurrent ``query`` awaits pipeline on one connection.

    Build with :meth:`connect`; a background reader task dispatches
    responses to per-request futures, so any number of coroutines can have
    queries in flight simultaneously — exactly the traffic shape the
    server's micro-batcher coalesces.
    """

    def __init__(self, reader, writer):
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._next_id = 0
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                future = self._pending.pop(message.get("id"), None)
                if future is None or future.done():
                    continue
                result = _response_payload(message)
                if isinstance(result, Exception):
                    future.set_exception(result)
                else:
                    future.set_result(result)
        except Exception as exc:  # connection torn down mid-frame
            error = exc
        finally:
            failure = error or ServiceError("server closed the connection")
            for future in self._pending.values():
                if not future.done():
                    future.set_exception(failure)
            self._pending.clear()

    async def _request(self, message: Dict[str, Any]):
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        message_id = self._next_id
        message["id"] = message_id
        future: "asyncio.Future" = asyncio.get_running_loop().create_future()
        self._pending[message_id] = future
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        return await future

    async def query(self, query: SimilarityQuery) -> QueryAnswer:
        """Answer one query (concurrent callers share the connection)."""
        return await self._request({"kind": "query", "query": encode_query(query)})

    async def query_many(
        self, queries: Iterable[SimilarityQuery], *, return_errors: bool = False
    ) -> List[Union[QueryAnswer, ServiceError]]:
        """Pipeline a stream of queries; answers return in input order."""
        results = await asyncio.gather(
            *(self.query(query) for query in queries), return_exceptions=True
        )
        if not return_errors:
            for result in results:
                if isinstance(result, BaseException):
                    raise result
        return list(results)

    async def ping(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "ping"})

    async def stats(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "stats"})

    async def slow(self) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "slow"})

    async def traces(self, limit: int = 16) -> Dict[str, Any]:
        return await self._request({"kind": "admin", "command": "traces", "limit": int(limit)})

    async def prometheus(self) -> str:
        result = await self._request({"kind": "admin", "command": "prometheus"})
        return result["text"]

    async def reload(self, path=None) -> Dict[str, Any]:
        message: Dict[str, Any] = {"kind": "admin", "command": "reload"}
        if path is not None:
            message["path"] = str(path)
        return await self._request(message)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await self._reader_task

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()
