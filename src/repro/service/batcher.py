"""Dynamic micro-batching: coalesce concurrent queries into one batch call.

The serving engine's :meth:`~repro.serving.engine.BatchQueryEngine.query_batch`
is several times faster per query than the per-query path — one ``(Q, D)``
columnar intersection pass and shared posterior tables for the whole batch
— but a network server naively answering each request as it arrives never
hands the engine more than a batch of one.  :class:`MicroBatcher` closes
that gap the way production model servers do: concurrently-arriving
queries wait at most ``max_delay_ms`` for company, then the whole group is
scored in a single batch call.

Mechanics: a single worker task pops the first waiting query, then keeps
collecting until the batch is full (``max_batch`` — *flush-on-full*, no
added latency under heavy load) or the tick deadline expires
(``max_delay_ms`` — bounded added latency under light load).  While a
batch is executing, new arrivals simply accumulate in the queue and form
the next batch, so batch size adapts to instantaneous load with no tuning.

The batch runner is an ``async`` callable supplied by the server (which
offloads the numpy scoring to a thread so the event loop keeps accepting
traffic).  Because the runner resolves the engine *per flush*, an engine
hot-swap between batches is atomic: every answer comes entirely from one
engine, never from a torn mixture.

Shutdown is graceful: :meth:`stop` refuses new submissions, then the
worker drains every query already queued before exiting — in-flight
queries are answered, not dropped.

Deadlines: a submission may carry a
:class:`~repro.service.resilience.Deadline`; entries whose deadline passed
while queueing are shed at flush-assembly time — before the runner's
thread-offload — with a typed
:class:`~repro.exceptions.DeadlineExceededError`, so expired work never
costs a scoring cycle.
"""

from __future__ import annotations

import asyncio
import inspect
import time
from typing import Any, Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import DeadlineExceededError, ServiceError
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, get_registry
from repro.obs.trace import QueryTrace
from repro.service.resilience import Deadline

__all__ = ["MicroBatcher"]

#: Queue sentinel marking the end of the stream (posted once by stop()).
_SHUTDOWN = object()

BatchRunner = Callable[[Sequence[SimilarityQuery]], Awaitable[List[QueryAnswer]]]

_BATCH_SIZE = get_registry().histogram(
    "repro_batcher_batch_size",
    "Coalesced queries per micro-batch flush",
    buckets=DEFAULT_SIZE_BUCKETS,
)
_QUEUE_DEPTH = get_registry().gauge(
    "repro_batcher_queue_depth", "Queries waiting for the next micro-batch flush"
)
_FLUSHES = get_registry().counter(
    "repro_batcher_flushes_total", "Micro-batch flushes by trigger", ("kind",)
)
_FLUSHES_FULL = _FLUSHES.labels(kind="full")
_FLUSHES_TIMER = _FLUSHES.labels(kind="timer")
_DEADLINE_DROPPED_BATCHER = get_registry().counter(
    "repro_deadline_drops_total",
    "Queries dropped because their deadline expired, by pipeline stage",
    ("stage",),
).labels(stage="batcher")


class MicroBatcher:
    """Coalesce concurrently-submitted queries into batched engine calls.

    Parameters
    ----------
    run_batch:
        Async callable scoring one list of queries into the same-length,
        same-order list of answers (typically an executor offload of
        ``engine.query_batch``).
    max_batch:
        Flush as soon as this many queries are waiting (>= 1).
    max_delay_ms:
        Longest time the first query of a batch waits for company before
        the batch is flushed anyway (>= 0; 0 batches only what is already
        queued).
    """

    def __init__(
        self,
        run_batch: BatchRunner,
        *,
        max_batch: int = 32,
        max_delay_ms: float = 2.0,
    ) -> None:
        if max_batch < 1:
            raise ServiceError("max_batch must be a positive integer")
        if max_delay_ms < 0:
            raise ServiceError("max_delay_ms must be non-negative")
        self._run_batch = run_batch
        # Trace plumbing is opt-in per runner: a runner declaring a ``trace``
        # parameter receives the batch-level QueryTrace; plain
        # ``(queries) -> answers`` runners keep working unchanged.
        try:
            self._runner_takes_trace = "trace" in inspect.signature(run_batch).parameters
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._runner_takes_trace = False
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay_ms) / 1000.0
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._worker: "asyncio.Task | None" = None
        self._closed = False
        # Occupancy / coalescing counters for the metrics endpoint.
        self.batches_flushed = 0
        self.queries_batched = 0
        self.full_flushes = 0
        self.largest_batch = 0
        self.deadline_dropped = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Spawn the worker task (idempotent; requires a running loop)."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(self._work())

    async def stop(self) -> None:
        """Refuse new queries, drain everything queued, and stop the worker."""
        if self._closed:
            if self._worker is not None:
                await self._worker
            return
        self._closed = True
        self._queue.put_nowait(_SHUTDOWN)
        if self._worker is not None:
            await self._worker

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        query: SimilarityQuery,
        trace: Optional[QueryTrace] = None,
        deadline: Optional[Deadline] = None,
    ) -> "asyncio.Future[QueryAnswer]":
        """Enqueue one query; the returned future resolves to its answer.

        Must be called from the event loop.  Raises
        :class:`~repro.exceptions.ServiceError` once :meth:`stop` began —
        the server maps that to a typed ``SHUTTING_DOWN`` response.

        ``trace`` optionally attaches a sampled :class:`QueryTrace`: the
        flush records the query's queue wait and scoring time into it and
        grafts the batch-level engine waterfall below them.

        ``deadline`` optionally bounds the query's time in the queue: an
        entry whose deadline has passed when its batch is assembled is
        dropped with :class:`~repro.exceptions.DeadlineExceededError`
        instead of being scored (see :meth:`_flush`).
        """
        if self._closed:
            raise ServiceError("micro-batcher is shutting down; query not accepted")
        if self._worker is None:
            raise ServiceError("micro-batcher is not started")
        future: "asyncio.Future[QueryAnswer]" = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((query, future, trace, time.perf_counter(), deadline))
        _QUEUE_DEPTH.set(self._queue.qsize())
        return future

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def queue_depth(self) -> int:
        """Queries waiting for the next flush (excludes the executing batch)."""
        depth = self._queue.qsize()
        return depth - 1 if self._closed and depth else depth

    @property
    def mean_batch_size(self) -> float:
        """Average coalesced batch size over the batcher's lifetime."""
        if not self.batches_flushed:
            return 0.0
        return self.queries_batched / self.batches_flushed

    def as_dict(self) -> Dict[str, float]:
        """Flat summary for the metrics endpoint."""
        return {
            "max_batch": self.max_batch,
            "max_delay_ms": self.max_delay * 1000.0,
            "queue_depth": self.queue_depth,
            "batches_flushed": self.batches_flushed,
            "queries_batched": self.queries_batched,
            "full_flushes": self.full_flushes,
            "largest_batch": self.largest_batch,
            "mean_batch_size": self.mean_batch_size,
            "deadline_dropped": self.deadline_dropped,
        }

    # ------------------------------------------------------------------ #
    # worker
    # ------------------------------------------------------------------ #
    async def _work(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _SHUTDOWN:
                break
            batch: List[Tuple[SimilarityQuery, Any]] = [item]
            deadline = loop.time() + self.max_delay
            while len(batch) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(), remaining)
                    except asyncio.TimeoutError:
                        break
                if nxt is _SHUTDOWN:
                    stopping = True
                    break
                batch.append(nxt)
            await self._flush(batch)

    def _drop_expired(self, batch: List[Tuple]) -> List[Tuple]:
        """Shed entries whose deadline passed while they waited in the queue.

        Runs at flush-assembly time, immediately before the runner call —
        i.e. *before the thread-offload to the scoring engine* — so an
        expired query never occupies a scoring thread.  Each dropped entry
        resolves to a typed :class:`DeadlineExceededError`.
        """
        live: List[Tuple] = []
        for item in batch:
            deadline: Optional[Deadline] = item[4]
            if deadline is not None and deadline.expired:
                self.deadline_dropped += 1
                _DEADLINE_DROPPED_BATCHER.inc()
                future = item[1]
                if not future.done():
                    future.set_exception(
                        DeadlineExceededError(
                            "deadline expired while the query waited for its batch "
                            f"(by {-deadline.remaining_ms():.1f}ms)"
                        )
                    )
            else:
                live.append(item)
        return live

    async def _flush(self, batch: List[Tuple[SimilarityQuery, Any, Any, float, Any]]) -> None:
        batch = self._drop_expired(batch)
        if not batch:
            _QUEUE_DEPTH.set(self._queue.qsize())
            return
        queries = [item[0] for item in batch]
        # One batch-level trace serves every sampled query of the flush: the
        # engine activates it in the scoring thread (cache probe + core
        # stages land in it), and each sampled query grafts a copy below its
        # own queue_wait/score spans.
        sampled_ids = [item[2].trace_id for item in batch if item[2] is not None]
        batch_trace = (
            QueryTrace(detail={"batch_size": len(batch), "trace_ids": sampled_ids})
            if sampled_ids and self._runner_takes_trace
            else None
        )
        flush_started = time.perf_counter()
        try:
            if self._runner_takes_trace:
                answers = await self._run_batch(queries, trace=batch_trace)
            else:
                answers = await self._run_batch(queries)
            if len(answers) != len(batch):
                raise ServiceError(
                    f"batch runner returned {len(answers)} answers for {len(batch)} queries"
                )
        except Exception as exc:
            for item in batch:
                future = item[1]
                if not future.done():
                    future.set_exception(exc)
            return
        finally:
            score_seconds = time.perf_counter() - flush_started
            self.batches_flushed += 1
            self.queries_batched += len(batch)
            self.largest_batch = max(self.largest_batch, len(batch))
            if len(batch) >= self.max_batch:
                self.full_flushes += 1
                _FLUSHES_FULL.inc()
            else:
                _FLUSHES_TIMER.inc()
            _BATCH_SIZE.observe(len(batch))
            _QUEUE_DEPTH.set(self._queue.qsize())
        if batch_trace is not None:
            batch_trace.total_seconds = score_seconds
        for (_query, future, trace, enqueued_at, _deadline), answer in zip(batch, answers):
            if trace is not None:
                trace.add("queue_wait", max(flush_started - enqueued_at, 0.0), depth=1)
                trace.add("score", score_seconds, depth=1)
                if batch_trace is not None:
                    trace.graft(batch_trace, depth_shift=2)
            if not future.done():
                future.set_result(answer)
