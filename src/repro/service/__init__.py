"""repro.service — the network serving layer of the reproduction.

The fifth layer of the stack: an asyncio TCP server that exposes a
:class:`~repro.serving.engine.BatchQueryEngine` to concurrent remote
clients and converts the engine's batched-execution speedup into real
concurrent throughput by *dynamic micro-batching* — independent in-flight
requests are coalesced into single ``query_batch`` calls.

* :mod:`~repro.service.protocol` — length-prefixed JSON wire protocol;
  exact codecs for queries (including the graph) and answers (including
  top-k rankings): answers received over the wire are bit-identical to
  direct engine calls.
* :class:`~repro.service.batcher.MicroBatcher` — flush-on-full /
  bounded-delay coalescing of concurrently-arriving queries.
* :class:`~repro.service.admission.AdmissionController` — bounded queue
  depth + per-connection backpressure; sheds load with a typed
  ``OVERLOADED`` response instead of stalling.
* :class:`~repro.service.server.SimilarityService` — the server: pipelined
  connections, thread-offloaded scoring, zero-downtime snapshot hot swap
  (``SIGHUP`` / ``reload`` admin command), graceful drain on shutdown, and
  a ``stats`` metrics endpoint.
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.client.AsyncServiceClient` — pipelined sync and
  asyncio clients with typed error mapping, configurable timeouts,
  retries, hedging, and circuit breaking.
* :mod:`~repro.service.resilience` — the fault-tolerance primitives:
  :class:`~repro.service.resilience.Deadline` (end-to-end budgets),
  :class:`~repro.service.resilience.RetryPolicy` (capped exponential
  backoff + jitter for idempotent queries),
  :class:`~repro.service.resilience.CircuitBreaker`,
  :class:`~repro.service.resilience.HedgePolicy` (tail-latency hedged
  sends), and :class:`~repro.service.resilience.IdempotencyCache`
  (server-side duplicate suppression).

Quickstart
----------
>>> from repro.service import start_service_thread, ServiceClient
>>> handle = start_service_thread(engine, max_batch=32)     # doctest: +SKIP
>>> with ServiceClient(*handle.address) as client:          # doctest: +SKIP
...     answer = client.query(SimilarityQuery(graph, 1, 0.9))
...     metrics = client.stats()
>>> handle.stop()                                           # doctest: +SKIP
"""

from repro.service.admission import AdmissionController
from repro.service.batcher import MicroBatcher
from repro.service.client import AsyncServiceClient, ServiceClient
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    decode_answer,
    decode_query,
    encode_answer,
    encode_query,
)
from repro.service.resilience import (
    Deadline,
    CircuitBreaker,
    HedgePolicy,
    IdempotencyCache,
    RetryPolicy,
)
from repro.service.server import ServiceHandle, SimilarityService, start_service_thread

__all__ = [
    "AdmissionController",
    "AsyncServiceClient",
    "CircuitBreaker",
    "Deadline",
    "HedgePolicy",
    "IdempotencyCache",
    "MicroBatcher",
    "MAX_FRAME_BYTES",
    "RetryPolicy",
    "ServiceClient",
    "ServiceHandle",
    "SimilarityService",
    "start_service_thread",
    "encode_query",
    "decode_query",
    "encode_answer",
    "decode_answer",
]
