"""Admission control: bounded queue depth + per-connection backpressure.

A serving process protects itself from overload by *shedding* work it
cannot finish in time instead of queueing it without bound: unbounded
queues convert a transient burst into unbounded latency for every later
query (the classic queueing collapse).  :class:`AdmissionController`
enforces two budgets before a query may enter the micro-batcher:

* ``max_pending`` — server-wide cap on admitted-but-unanswered queries
  (micro-batcher queue plus the batch currently executing);
* ``max_per_connection`` — cap on one connection's in-flight queries, so a
  single pipelining client cannot monopolise the pending budget and starve
  the others.

A rejected query gets a typed ``OVERLOADED`` response immediately — the
client learns within one round-trip that it must back off, rather than
watching its socket stall.

The controller is *event-loop confined*: the server calls it only from the
asyncio loop thread, so plain integer arithmetic is already atomic and no
lock is needed (the engine's thread-offloaded scoring never touches it).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exceptions import ServiceError
from repro.obs.metrics import get_registry
from repro.service.resilience import Deadline

__all__ = ["AdmissionController"]

_ADMITTED = get_registry().counter(
    "repro_admission_admitted_total", "Queries admitted into the micro-batcher"
)
_REJECTED = get_registry().counter(
    "repro_admission_rejected_total", "Queries shed by admission control", ("reason",)
)
_REJECTED_PENDING = _REJECTED.labels(reason="max_pending")
_REJECTED_CONNECTION = _REJECTED.labels(reason="per_connection")
_DEADLINE_DROPS = get_registry().counter(
    "repro_deadline_drops_total",
    "Queries dropped because their deadline expired, by pipeline stage",
    ("stage",),
)
_DEADLINE_DROPPED_ADMISSION = _DEADLINE_DROPS.labels(stage="admission")
_PENDING_GAUGE = get_registry().gauge(
    "repro_admission_pending", "Admitted, not-yet-answered queries"
)


class AdmissionController:
    """Token-style admission over a shared pending budget.

    Parameters
    ----------
    max_pending:
        Server-wide bound on admitted, not-yet-answered queries (>= 1).
    max_per_connection:
        Per-connection bound on in-flight queries (>= 1).  Defaults to the
        whole pending budget, i.e. no per-connection limit beyond the
        global one.
    """

    def __init__(self, max_pending: int = 256, max_per_connection: int = 0) -> None:
        if max_pending < 1:
            raise ServiceError("max_pending must be a positive integer")
        if max_per_connection < 0:
            raise ServiceError("max_per_connection must be >= 0 (0 = no per-connection cap)")
        self.max_pending = int(max_pending)
        self.max_per_connection = int(max_per_connection) or self.max_pending
        self._pending = 0
        self._per_connection: Dict[int, int] = {}
        #: Lifetime counters surfaced by the metrics endpoint.
        self.admitted = 0
        self.rejected = 0
        self.deadline_expired = 0

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def deadline_expired_on_arrival(self, deadline: Optional[Deadline]) -> bool:
        """True (and counted) when a query's deadline passed before admission.

        Already-expired work is refused outright: admitting it would burn a
        pending-budget slot and engine cycles on an answer whose client has
        stopped waiting.  The caller sheds with ``DEADLINE_EXCEEDED``.
        """
        if deadline is None or not deadline.expired:
            return False
        self.deadline_expired += 1
        _DEADLINE_DROPPED_ADMISSION.inc()
        return True

    def try_admit(self, connection_id: int) -> bool:
        """Admit one query from ``connection_id`` if both budgets allow it."""
        if self._pending >= self.max_pending:
            self.rejected += 1
            _REJECTED_PENDING.inc()
            return False
        if self._per_connection.get(connection_id, 0) >= self.max_per_connection:
            self.rejected += 1
            _REJECTED_CONNECTION.inc()
            return False
        self._pending += 1
        self._per_connection[connection_id] = self._per_connection.get(connection_id, 0) + 1
        self.admitted += 1
        _ADMITTED.inc()
        _PENDING_GAUGE.set(self._pending)
        return True

    def release(self, connection_id: int) -> None:
        """Return one admitted query's budget (response written or failed)."""
        if self._pending <= 0:  # pragma: no cover - defensive
            raise ServiceError("release() without a matching try_admit()")
        self._pending -= 1
        _PENDING_GAUGE.set(self._pending)
        held = self._per_connection.get(connection_id, 0)
        if held <= 1:
            self._per_connection.pop(connection_id, None)
        else:
            self._per_connection[connection_id] = held - 1

    def forget_connection(self, connection_id: int) -> None:
        """Drop a closed connection's bookkeeping (its queries already released)."""
        self._per_connection.pop(connection_id, None)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Currently admitted, not-yet-answered queries."""
        return self._pending

    def as_dict(self) -> Dict[str, float]:
        """Flat summary for the metrics endpoint."""
        total = self.admitted + self.rejected
        return {
            "pending": self._pending,
            "max_pending": self.max_pending,
            "max_per_connection": self.max_per_connection,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejection_rate": self.rejected / total if total else 0.0,
            "deadline_expired": self.deadline_expired,
        }

    def __repr__(self) -> str:
        return (
            f"<AdmissionController pending={self._pending}/{self.max_pending} "
            f"admitted={self.admitted} rejected={self.rejected}>"
        )
