"""Structural validation and statistics helpers for labeled graphs.

Used by the dataset registry to sanity-check generated data (connectivity,
degree regime, scale-free-ness) and by the Table III reproduction which
reports per-dataset statistics.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from typing import Iterable, List, Sequence

from repro.exceptions import GraphError
from repro.graphs.graph import Graph, VIRTUAL_LABEL, union_label_alphabets


def validate_graph(graph: Graph, *, require_connected: bool = False) -> None:
    """Raise :class:`GraphError` when the graph violates simple-graph invariants.

    Checks performed:

    * every edge endpoint is a known vertex;
    * no vertex or edge carries the reserved virtual label;
    * adjacency structure and edge map agree on every edge;
    * optionally, the graph is connected.
    """
    for vertex, label in graph.vertex_items():
        if label == VIRTUAL_LABEL:
            raise GraphError(f"vertex {vertex!r} carries the reserved virtual label")
    for u, v, label in graph.edges():
        if label == VIRTUAL_LABEL:
            raise GraphError(f"edge {u!r}-{v!r} carries the reserved virtual label")
        if not graph.has_vertex(u) or not graph.has_vertex(v):
            raise GraphError(f"edge {u!r}-{v!r} references an unknown vertex")
        if graph.edge_label(u, v) != label:
            raise GraphError(f"edge {u!r}-{v!r} label mismatch between edge map and adjacency")
    for vertex in graph.vertices():
        for neighbour in graph.neighbors(vertex):
            if not graph.has_edge(vertex, neighbour):
                raise GraphError(
                    f"adjacency lists {vertex!r}-{neighbour!r} but the edge map does not"
                )
    if require_connected and not graph.is_connected():
        raise GraphError(f"graph {graph.name!r} is not connected")


def degree_histogram(graph: Graph) -> Counter:
    """Return a ``Counter`` mapping degree -> number of vertices with that degree."""
    return Counter(graph.degree(v) for v in graph.vertices())


def degree_sequence(graph: Graph) -> List[int]:
    """Return the sorted (descending) degree sequence of the graph."""
    return sorted((graph.degree(v) for v in graph.vertices()), reverse=True)


def powerlaw_exponent_estimate(graphs: Iterable[Graph], *, k_min: int = 2) -> float:
    """Estimate the power-law exponent of the pooled degree distribution.

    Uses the standard maximum-likelihood (Hill) estimator
    ``1 + n / sum(ln(k_i / (k_min - 0.5)))`` over all degrees ``>= k_min``.
    Returns ``nan`` when there are not enough qualifying vertices.
    """
    degrees: List[int] = []
    for graph in graphs:
        degrees.extend(d for d in (graph.degree(v) for v in graph.vertices()) if d >= k_min)
    if len(degrees) < 10:
        return float("nan")
    log_sum = sum(math.log(degree / (k_min - 0.5)) for degree in degrees)
    if log_sum <= 0.0:
        return float("nan")
    return 1.0 + len(degrees) / log_sum


def looks_scale_free(graphs: Sequence[Graph], *, exponent_range=(1.5, 3.5)) -> bool:
    """Heuristically decide whether a collection of graphs is scale-free.

    The paper (Table III) tags datasets as scale-free when their pooled
    degree distribution follows a power law; we accept an MLE exponent in a
    generous range and require a heavy tail (maximum degree well above the
    average degree).
    """
    exponent = powerlaw_exponent_estimate(graphs)
    if math.isnan(exponent):
        return False
    low, high = exponent_range
    if not low <= exponent <= high:
        return False
    max_deg = max((g.max_degree() for g in graphs), default=0)
    avg_deg = collection_statistics(graphs).average_degree
    return max_deg >= 2.0 * max(avg_deg, 1.0)


@dataclasses.dataclass(frozen=True)
class CollectionStatistics:
    """Summary statistics of a graph collection (one row of Table III)."""

    num_graphs: int
    max_vertices: int
    max_edges: int
    average_vertices: float
    average_edges: float
    average_degree: float
    num_vertex_labels: int
    num_edge_labels: int

    def as_row(self) -> dict:
        """Return the statistics as a plain dictionary for reporting."""
        return dataclasses.asdict(self)


def collection_statistics(graphs: Sequence[Graph]) -> CollectionStatistics:
    """Compute Table III-style statistics over a collection of graphs."""
    graphs = list(graphs)
    if not graphs:
        return CollectionStatistics(0, 0, 0, 0.0, 0.0, 0.0, 0, 0)
    vertex_counts = [g.num_vertices for g in graphs]
    edge_counts = [g.num_edges for g in graphs]
    total_vertices = sum(vertex_counts)
    total_edges = sum(edge_counts)
    vertex_labels, edge_labels = union_label_alphabets(graphs)
    average_degree = (2.0 * total_edges / total_vertices) if total_vertices else 0.0
    return CollectionStatistics(
        num_graphs=len(graphs),
        max_vertices=max(vertex_counts),
        max_edges=max(edge_counts),
        average_vertices=total_vertices / len(graphs),
        average_edges=total_edges / len(graphs),
        average_degree=average_degree,
        num_vertex_labels=len(vertex_labels),
        num_edge_labels=len(edge_labels),
    )
