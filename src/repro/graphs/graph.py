"""Labeled simple undirected graph data structure.

The paper (Section II) restricts attention to simple labeled undirected
graphs ``G = {V, E, L}`` where both vertices and edges carry labels drawn
from finite alphabets ``LV`` and ``LE``.  A reserved *virtual label*
``epsilon`` marks vertices/edges that "do not actually exist" and is used by
the extended-graph construction of Section IV; it is therefore not allowed
on ordinary vertices or edges.

The implementation favours dictionary-based adjacency so that the branch
extraction of Section III runs in ``O(sum of degrees)`` time, matching the
``O(nd)`` bound claimed for GBD computation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Mapping, Optional, Tuple

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateVertexError,
    InvalidLabelError,
    MissingEdgeError,
    MissingVertexError,
    SelfLoopError,
)

#: The reserved virtual label ``epsilon`` of Section II.  It is not a member
#: of either label alphabet and may only appear on virtual vertices/edges of
#: extended graphs (Definition 5).
VIRTUAL_LABEL = "ε"

VertexId = Hashable
Label = Hashable
EdgeKey = FrozenSet


def edge_key(u: VertexId, v: VertexId) -> EdgeKey:
    """Return the canonical (unordered) key of the edge between ``u`` and ``v``."""
    return frozenset((u, v))


class Graph:
    """A simple labeled undirected graph.

    Parameters
    ----------
    name:
        Optional identifier of the graph (used by datasets and the database).

    Notes
    -----
    * Vertices are identified by hashable ids; each carries exactly one label.
    * Edges are unordered pairs of distinct vertices; each carries one label.
    * Multi-edges and self-loops are rejected, matching the paper's "simple
      labeled undirected graphs" restriction.
    """

    __slots__ = ("name", "_vertex_labels", "_adjacency", "_edge_labels")

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name
        self._vertex_labels: Dict[VertexId, Label] = {}
        # adjacency maps vertex -> {neighbour: edge label}
        self._adjacency: Dict[VertexId, Dict[VertexId, Label]] = {}
        self._edge_labels: Dict[EdgeKey, Label] = {}

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dicts(
        cls,
        vertices: Mapping[VertexId, Label],
        edges: Mapping[Tuple[VertexId, VertexId], Label],
        name: Optional[str] = None,
    ) -> "Graph":
        """Build a graph from ``{vertex: label}`` and ``{(u, v): label}`` mappings."""
        graph = cls(name=name)
        for vertex, label in vertices.items():
            graph.add_vertex(vertex, label)
        for (u, v), label in edges.items():
            graph.add_edge(u, v, label)
        return graph

    def copy(self, name: Optional[str] = None) -> "Graph":
        """Return a deep copy of this graph (labels are shared, structure copied)."""
        clone = Graph(name=self.name if name is None else name)
        clone._vertex_labels = dict(self._vertex_labels)
        clone._adjacency = {v: dict(nbrs) for v, nbrs in self._adjacency.items()}
        clone._edge_labels = dict(self._edge_labels)
        return clone

    # ------------------------------------------------------------------ #
    # vertices
    # ------------------------------------------------------------------ #
    def add_vertex(self, vertex: VertexId, label: Label, *, allow_virtual: bool = False) -> None:
        """Add an isolated vertex with the given non-virtual label.

        ``allow_virtual`` is used internally by the extended-graph machinery
        and must stay ``False`` for ordinary graphs.
        """
        if vertex in self._vertex_labels:
            raise DuplicateVertexError(f"vertex {vertex!r} already exists")
        if label == VIRTUAL_LABEL and not allow_virtual:
            raise InvalidLabelError(
                "the virtual label is reserved for extended graphs (Definition 5)"
            )
        self._vertex_labels[vertex] = label
        self._adjacency[vertex] = {}

    def remove_vertex(self, vertex: VertexId) -> None:
        """Delete an isolated vertex.  Deleting a non-isolated vertex is an error.

        The DV edit operation of Definition 1 only deletes *isolated*
        vertices; enforcing this here keeps the edit semantics faithful.
        """
        if vertex not in self._vertex_labels:
            raise MissingVertexError(f"vertex {vertex!r} does not exist")
        if self._adjacency[vertex]:
            raise SelfLoopError(
                f"vertex {vertex!r} is not isolated; delete its edges first (DV semantics)"
            )
        del self._vertex_labels[vertex]
        del self._adjacency[vertex]

    def relabel_vertex(self, vertex: VertexId, label: Label, *, allow_virtual: bool = False) -> None:
        """Change the label of an existing vertex (RV operation)."""
        if vertex not in self._vertex_labels:
            raise MissingVertexError(f"vertex {vertex!r} does not exist")
        if label == VIRTUAL_LABEL and not allow_virtual:
            raise InvalidLabelError("cannot relabel a vertex to the virtual label")
        self._vertex_labels[vertex] = label

    def has_vertex(self, vertex: VertexId) -> bool:
        """Return whether the vertex exists."""
        return vertex in self._vertex_labels

    def vertex_label(self, vertex: VertexId) -> Label:
        """Return the label of a vertex."""
        try:
            return self._vertex_labels[vertex]
        except KeyError as exc:
            raise MissingVertexError(f"vertex {vertex!r} does not exist") from exc

    def vertices(self) -> Iterator[VertexId]:
        """Iterate over vertex identifiers."""
        return iter(self._vertex_labels)

    def vertex_items(self) -> Iterator[Tuple[VertexId, Label]]:
        """Iterate over ``(vertex, label)`` pairs."""
        return iter(self._vertex_labels.items())

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._vertex_labels)

    # ------------------------------------------------------------------ #
    # edges
    # ------------------------------------------------------------------ #
    def add_edge(self, u: VertexId, v: VertexId, label: Label, *, allow_virtual: bool = False) -> None:
        """Add an edge with a non-virtual label between two existing vertices."""
        if u == v:
            raise SelfLoopError(f"self-loop on vertex {u!r} is not allowed in simple graphs")
        if u not in self._vertex_labels:
            raise MissingVertexError(f"vertex {u!r} does not exist")
        if v not in self._vertex_labels:
            raise MissingVertexError(f"vertex {v!r} does not exist")
        if label == VIRTUAL_LABEL and not allow_virtual:
            raise InvalidLabelError("the virtual label is reserved for extended graphs")
        key = edge_key(u, v)
        if key in self._edge_labels:
            raise DuplicateEdgeError(f"edge {u!r}-{v!r} already exists")
        self._edge_labels[key] = label
        self._adjacency[u][v] = label
        self._adjacency[v][u] = label

    def remove_edge(self, u: VertexId, v: VertexId) -> None:
        """Delete an existing edge (DE operation)."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise MissingEdgeError(f"edge {u!r}-{v!r} does not exist")
        del self._edge_labels[key]
        del self._adjacency[u][v]
        del self._adjacency[v][u]

    def relabel_edge(self, u: VertexId, v: VertexId, label: Label, *, allow_virtual: bool = False) -> None:
        """Change the label of an existing edge (RE operation)."""
        key = edge_key(u, v)
        if key not in self._edge_labels:
            raise MissingEdgeError(f"edge {u!r}-{v!r} does not exist")
        if label == VIRTUAL_LABEL and not allow_virtual:
            raise InvalidLabelError("cannot relabel an edge to the virtual label")
        self._edge_labels[key] = label
        self._adjacency[u][v] = label
        self._adjacency[v][u] = label

    def has_edge(self, u: VertexId, v: VertexId) -> bool:
        """Return whether an edge between ``u`` and ``v`` exists."""
        return edge_key(u, v) in self._edge_labels

    def edge_label(self, u: VertexId, v: VertexId) -> Label:
        """Return the label of an edge."""
        try:
            return self._edge_labels[edge_key(u, v)]
        except KeyError as exc:
            raise MissingEdgeError(f"edge {u!r}-{v!r} does not exist") from exc

    def edges(self) -> Iterator[Tuple[VertexId, VertexId, Label]]:
        """Iterate over ``(u, v, label)`` triples with an arbitrary endpoint order."""
        for key, label in self._edge_labels.items():
            u, v = tuple(key)
            yield u, v, label

    @property
    def num_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self._edge_labels)

    # ------------------------------------------------------------------ #
    # neighbourhood / degree
    # ------------------------------------------------------------------ #
    def neighbors(self, vertex: VertexId) -> Iterator[VertexId]:
        """Iterate over the neighbours of a vertex."""
        if vertex not in self._adjacency:
            raise MissingVertexError(f"vertex {vertex!r} does not exist")
        return iter(self._adjacency[vertex])

    def incident_edge_labels(self, vertex: VertexId) -> Iterator[Label]:
        """Iterate over the labels of edges incident to ``vertex``.

        This is the raw material of the branch multiset ``N(v)`` of
        Definition 2.
        """
        if vertex not in self._adjacency:
            raise MissingVertexError(f"vertex {vertex!r} does not exist")
        return iter(self._adjacency[vertex].values())

    def degree(self, vertex: VertexId) -> int:
        """Return the degree of a vertex."""
        if vertex not in self._adjacency:
            raise MissingVertexError(f"vertex {vertex!r} does not exist")
        return len(self._adjacency[vertex])

    def average_degree(self) -> float:
        """Return the average degree ``2|E| / |V|`` (0.0 for empty graphs)."""
        if not self._vertex_labels:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def max_degree(self) -> int:
        """Return the maximum vertex degree (0 for an empty graph)."""
        if not self._adjacency:
            return 0
        return max(len(nbrs) for nbrs in self._adjacency.values())

    # ------------------------------------------------------------------ #
    # label alphabets
    # ------------------------------------------------------------------ #
    def vertex_label_set(self) -> FrozenSet[Label]:
        """Return the set of vertex labels used in this graph."""
        return frozenset(self._vertex_labels.values())

    def edge_label_set(self) -> FrozenSet[Label]:
        """Return the set of edge labels used in this graph."""
        return frozenset(self._edge_labels.values())

    # ------------------------------------------------------------------ #
    # comparison helpers
    # ------------------------------------------------------------------ #
    def is_identical(self, other: "Graph") -> bool:
        """Return whether both graphs have exactly the same vertices/edges/labels.

        This is identity of the labelled structure under the *same* vertex
        identifiers — a much stronger property than isomorphism, used mainly
        in tests and in edit-path verification.
        """
        return (
            self._vertex_labels == other._vertex_labels
            and self._edge_labels == other._edge_labels
        )

    def connected_components(self) -> list:
        """Return the vertex sets of the connected components of the graph."""
        seen: set = set()
        components = []
        for start in self._vertex_labels:
            if start in seen:
                continue
            stack = [start]
            component = set()
            while stack:
                node = stack.pop()
                if node in component:
                    continue
                component.add(node)
                stack.extend(nbr for nbr in self._adjacency[node] if nbr not in component)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return whether the graph is connected (empty graphs count as connected)."""
        if self.num_vertices == 0:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------------ #
    # dunder methods
    # ------------------------------------------------------------------ #
    def __contains__(self, vertex: VertexId) -> bool:
        return vertex in self._vertex_labels

    def __len__(self) -> int:
        return len(self._vertex_labels)

    def __iter__(self) -> Iterator[VertexId]:
        return iter(self._vertex_labels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self.is_identical(other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} |V|={self.num_vertices} |E|={self.num_edges}>"


def union_label_alphabets(graphs: Iterable[Graph]) -> Tuple[FrozenSet[Label], FrozenSet[Label]]:
    """Return the union vertex-label and edge-label alphabets across ``graphs``.

    The alphabets ``LV`` and ``LE`` of Section II are properties of the whole
    database, not of an individual graph; this helper computes them.
    """
    vertex_labels: set = set()
    edge_labels: set = set()
    for graph in graphs:
        vertex_labels |= graph.vertex_label_set()
        edge_labels |= graph.edge_label_set()
    return frozenset(vertex_labels), frozenset(edge_labels)
