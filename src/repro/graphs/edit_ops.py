"""Graph edit operations (GEO) and edit paths.

Definition 1 of the paper restricts graph edit operations to six types:

* ``AV`` — add one isolated vertex with a non-virtual label;
* ``DV`` — delete one isolated vertex;
* ``RV`` — relabel one vertex;
* ``AE`` — add one edge with a non-virtual label;
* ``DE`` — delete one edge;
* ``RE`` — relabel one edge.

An *edit path* (``seq`` in the paper) is a sequence of such operations; the
Graph Edit Distance is the length of the shortest edit path transforming one
graph into another.  This module provides concrete operation objects that can
be applied to :class:`~repro.graphs.graph.Graph` instances, inverted, and
verified — used by the exact GED baseline, the synthetic known-GED dataset
generator, and the tests.
"""

from __future__ import annotations

import dataclasses
from typing import Hashable, List, Sequence

from repro.exceptions import EditOperationError
from repro.graphs.graph import Graph, VIRTUAL_LABEL

VertexId = Hashable
Label = Hashable


class EditOperation:
    """Abstract base class for a single graph edit operation."""

    #: Two-letter code matching the paper's Definition 1 (AV/DV/RV/AE/DE/RE).
    code: str = "??"

    def apply(self, graph: Graph) -> None:
        """Apply the operation to ``graph`` in place."""
        raise NotImplementedError

    def inverse(self, graph: Graph) -> "EditOperation":
        """Return the operation that undoes this one on the *current* ``graph``.

        The inverse is computed against the graph state *before* ``apply`` is
        called because relabel operations need to remember the old label.
        """
        raise NotImplementedError

    @property
    def is_vertex_operation(self) -> bool:
        """Whether the operation touches a vertex (AV/DV/RV)."""
        return self.code in ("AV", "DV", "RV")

    @property
    def is_edge_operation(self) -> bool:
        """Whether the operation touches an edge (AE/DE/RE)."""
        return self.code in ("AE", "DE", "RE")


@dataclasses.dataclass(frozen=True)
class AddVertex(EditOperation):
    """AV: add one isolated vertex with a non-virtual label."""

    vertex: VertexId
    label: Label
    code = "AV"

    def apply(self, graph: Graph) -> None:
        if self.label == VIRTUAL_LABEL:
            raise EditOperationError("AV must add a vertex with a non-virtual label")
        graph.add_vertex(self.vertex, self.label)

    def inverse(self, graph: Graph) -> EditOperation:
        return DeleteVertex(self.vertex)


@dataclasses.dataclass(frozen=True)
class DeleteVertex(EditOperation):
    """DV: delete one isolated vertex."""

    vertex: VertexId
    code = "DV"

    def apply(self, graph: Graph) -> None:
        if graph.degree(self.vertex) != 0:
            raise EditOperationError(
                f"DV may only delete isolated vertices; {self.vertex!r} has degree "
                f"{graph.degree(self.vertex)}"
            )
        graph.remove_vertex(self.vertex)

    def inverse(self, graph: Graph) -> EditOperation:
        return AddVertex(self.vertex, graph.vertex_label(self.vertex))


@dataclasses.dataclass(frozen=True)
class RelabelVertex(EditOperation):
    """RV: relabel one vertex."""

    vertex: VertexId
    label: Label
    code = "RV"

    def apply(self, graph: Graph) -> None:
        if graph.vertex_label(self.vertex) == self.label:
            raise EditOperationError(
                f"RV on {self.vertex!r} must change the label ({self.label!r} is unchanged)"
            )
        graph.relabel_vertex(self.vertex, self.label)

    def inverse(self, graph: Graph) -> EditOperation:
        return RelabelVertex(self.vertex, graph.vertex_label(self.vertex))


@dataclasses.dataclass(frozen=True)
class AddEdge(EditOperation):
    """AE: add one edge with a non-virtual label."""

    u: VertexId
    v: VertexId
    label: Label
    code = "AE"

    def apply(self, graph: Graph) -> None:
        if self.label == VIRTUAL_LABEL:
            raise EditOperationError("AE must add an edge with a non-virtual label")
        graph.add_edge(self.u, self.v, self.label)

    def inverse(self, graph: Graph) -> EditOperation:
        return DeleteEdge(self.u, self.v)


@dataclasses.dataclass(frozen=True)
class DeleteEdge(EditOperation):
    """DE: delete one edge."""

    u: VertexId
    v: VertexId
    code = "DE"

    def apply(self, graph: Graph) -> None:
        graph.remove_edge(self.u, self.v)

    def inverse(self, graph: Graph) -> EditOperation:
        return AddEdge(self.u, self.v, graph.edge_label(self.u, self.v))


@dataclasses.dataclass(frozen=True)
class RelabelEdge(EditOperation):
    """RE: relabel one edge."""

    u: VertexId
    v: VertexId
    label: Label
    code = "RE"

    def apply(self, graph: Graph) -> None:
        if graph.edge_label(self.u, self.v) == self.label:
            raise EditOperationError(
                f"RE on {self.u!r}-{self.v!r} must change the label "
                f"({self.label!r} is unchanged)"
            )
        graph.relabel_edge(self.u, self.v, self.label)

    def inverse(self, graph: Graph) -> EditOperation:
        return RelabelEdge(self.u, self.v, graph.edge_label(self.u, self.v))


class EditPath:
    """A sequence of graph edit operations (``seq`` in the paper).

    The length of an edit path is the number of operations it contains; an
    optimal edit path between two graphs has length equal to their GED.
    """

    def __init__(self, operations: Sequence[EditOperation] = ()) -> None:
        self._operations: List[EditOperation] = list(operations)

    def append(self, operation: EditOperation) -> None:
        """Append one operation to the path."""
        self._operations.append(operation)

    def extend(self, operations: Sequence[EditOperation]) -> None:
        """Append several operations to the path."""
        self._operations.extend(operations)

    @property
    def operations(self) -> List[EditOperation]:
        """The list of operations (a copy is not made; treat as read-only)."""
        return self._operations

    def __len__(self) -> int:
        return len(self._operations)

    def __iter__(self):
        return iter(self._operations)

    def __getitem__(self, index):
        return self._operations[index]

    def __repr__(self) -> str:
        codes = ",".join(op.code for op in self._operations)
        return f"<EditPath len={len(self)} [{codes}]>"

    def count(self, code: str) -> int:
        """Return the number of operations with the given two-letter code."""
        return sum(1 for op in self._operations if op.code == code)

    def apply_to(self, graph: Graph, *, in_place: bool = False) -> Graph:
        """Apply the whole path to ``graph`` and return the transformed graph."""
        target = graph if in_place else graph.copy()
        for operation in self._operations:
            operation.apply(target)
        return target

    def verify(self, source: Graph, target: Graph) -> bool:
        """Return whether applying this path to ``source`` yields ``target`` exactly."""
        try:
            result = self.apply_to(source)
        except Exception:
            return False
        return result.is_identical(target)


def apply_edit_path(graph: Graph, operations: Sequence[EditOperation]) -> Graph:
    """Apply a sequence of edit operations to a copy of ``graph`` and return it."""
    return EditPath(operations).apply_to(graph)
