"""Random labeled graph generators and networkx interoperability.

Two generators are provided:

* :func:`random_labeled_graph` — an Erdős–Rényi-style generator that first
  builds a random spanning structure to guarantee connectivity (when asked)
  and then adds edges uniformly at random.  Used for Syn-2-style
  non-scale-free graphs and for test fixtures.
* :func:`scale_free_labeled_graph` — a preferential-attachment generator
  matching the construction in Appendix I: every vertex ``v_i`` (``i > 0``)
  connects to an earlier vertex, then a constant number of extra edges per
  vertex are attached to earlier vertices with probability proportional to
  their current degree.  Used for Syn-1-style scale-free graphs.

Both generators label vertices and edges uniformly at random from
user-provided alphabets and accept either an integer seed or a
``random.Random`` instance, so every experiment in the repository is
reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

import networkx as nx

from repro.graphs.graph import Graph

RandomState = Union[int, random.Random, None]

#: Default label alphabets used when a caller does not supply any.
DEFAULT_VERTEX_LABELS: Sequence[str] = ("A", "B", "C", "D", "E")
DEFAULT_EDGE_LABELS: Sequence[str] = ("x", "y", "z")


def _as_rng(seed: RandomState) -> random.Random:
    """Normalise ``seed`` into a ``random.Random`` instance."""
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_labeled_graph(
    num_vertices: int,
    num_edges: int,
    vertex_labels: Sequence = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence = DEFAULT_EDGE_LABELS,
    *,
    connected: bool = True,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Graph:
    """Generate a uniformly random simple labeled graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  Vertex ids are ``0 .. num_vertices - 1``.
    num_edges:
        Target number of edges.  Clamped to the maximum possible for a
        simple graph; when ``connected`` is true at least ``n - 1`` edges are
        produced.
    vertex_labels, edge_labels:
        Alphabets to draw labels from uniformly at random.
    connected:
        When true (default) the generator first wires every vertex ``i > 0``
        to a uniformly chosen earlier vertex, guaranteeing connectivity —
        the same trick used by the paper's Appendix I generator.
    seed:
        Integer seed or ``random.Random`` instance for reproducibility.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    rng = _as_rng(seed)
    graph = Graph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(list(vertex_labels)))

    if num_vertices <= 1:
        return graph

    max_edges = num_vertices * (num_vertices - 1) // 2
    num_edges = min(num_edges, max_edges)

    if connected:
        for vertex in range(1, num_vertices):
            anchor = rng.randrange(vertex)
            graph.add_edge(vertex, anchor, rng.choice(list(edge_labels)))

    attempts = 0
    max_attempts = 50 * max(num_edges, 1) + 100
    while graph.num_edges < num_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, rng.choice(list(edge_labels)))
    return graph


def scale_free_labeled_graph(
    num_vertices: int,
    edges_per_vertex: int = 2,
    vertex_labels: Sequence = DEFAULT_VERTEX_LABELS,
    edge_labels: Sequence = DEFAULT_EDGE_LABELS,
    *,
    seed: RandomState = None,
    name: Optional[str] = None,
) -> Graph:
    """Generate a connected scale-free labeled graph via preferential attachment.

    Follows the Appendix I recipe for Syn-1: each new vertex ``v_i`` first
    connects to one uniformly chosen earlier vertex (ensuring connectivity)
    and then attaches up to ``edges_per_vertex - 1`` additional edges to
    earlier vertices picked with probability proportional to their degree.
    """
    if num_vertices < 0:
        raise ValueError("num_vertices must be non-negative")
    if edges_per_vertex < 1:
        raise ValueError("edges_per_vertex must be at least 1")
    rng = _as_rng(seed)
    graph = Graph(name=name)
    for vertex in range(num_vertices):
        graph.add_vertex(vertex, rng.choice(list(vertex_labels)))

    if num_vertices <= 1:
        return graph

    # repeated-vertex list for degree-proportional sampling (Barabási–Albert style)
    degree_pool = [0]
    for vertex in range(1, num_vertices):
        anchor = rng.randrange(vertex)
        graph.add_edge(vertex, anchor, rng.choice(list(edge_labels)))
        degree_pool.extend((vertex, anchor))

        extra = min(edges_per_vertex - 1, vertex - 1)
        added = 0
        attempts = 0
        while added < extra and attempts < 20 * (extra + 1):
            attempts += 1
            target = rng.choice(degree_pool)
            if target == vertex or graph.has_edge(vertex, target):
                continue
            graph.add_edge(vertex, target, rng.choice(list(edge_labels)))
            degree_pool.extend((vertex, target))
            added += 1
    return graph


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert a :class:`Graph` into a ``networkx.Graph`` with label attributes."""
    nx_graph = nx.Graph(name=graph.name or "")
    for vertex, label in graph.vertex_items():
        nx_graph.add_node(vertex, label=label)
    for u, v, label in graph.edges():
        nx_graph.add_edge(u, v, label=label)
    return nx_graph


def from_networkx(nx_graph: nx.Graph, *, default_vertex_label: str = "A",
                  default_edge_label: str = "x", name: Optional[str] = None) -> Graph:
    """Convert a ``networkx.Graph`` into a :class:`Graph`.

    Node/edge attributes named ``label`` are used; missing labels fall back to
    the provided defaults, so plain unlabeled networkx graphs can be imported.
    """
    graph = Graph(name=name or (nx_graph.name or None))
    for node, data in nx_graph.nodes(data=True):
        graph.add_vertex(node, data.get("label", default_vertex_label))
    for u, v, data in nx_graph.edges(data=True):
        if u == v:
            continue  # simple graphs: drop self-loops on import
        graph.add_edge(u, v, data.get("label", default_edge_label))
    return graph
