"""Graph substrate: labeled simple undirected graphs and edit operations.

This subpackage implements the data model of the paper's Section II: simple
labeled undirected graphs with a shared labelling function, the six graph
edit operations of Definition 1, extended graphs of Definition 5, plus
generators, serialisation, and validation helpers.
"""

from repro.graphs.graph import Graph, VIRTUAL_LABEL
from repro.graphs.edit_ops import (
    AddEdge,
    AddVertex,
    DeleteEdge,
    DeleteVertex,
    EditOperation,
    EditPath,
    RelabelEdge,
    RelabelVertex,
    apply_edit_path,
)
from repro.graphs.extended import ExtendedGraphView, extend_pair
from repro.graphs.generators import (
    random_labeled_graph,
    scale_free_labeled_graph,
    to_networkx,
    from_networkx,
)

__all__ = [
    "Graph",
    "VIRTUAL_LABEL",
    "EditOperation",
    "AddVertex",
    "DeleteVertex",
    "RelabelVertex",
    "AddEdge",
    "DeleteEdge",
    "RelabelEdge",
    "EditPath",
    "apply_edit_path",
    "ExtendedGraphView",
    "extend_pair",
    "random_labeled_graph",
    "scale_free_labeled_graph",
    "to_networkx",
    "from_networkx",
]
