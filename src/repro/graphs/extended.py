"""Extended graphs (Definition 5) and the pairing convention of Section IV.

For a graph ``G`` and an extension factor ``k``, the extended graph ``G{k}``
is obtained by (1) inserting ``k`` isolated *virtual* vertices (labelled with
the reserved virtual label ``epsilon``) and then (2) inserting a virtual edge
between every pair of non-adjacent vertices, so that the extended graph is a
complete graph on ``|V| + k`` vertices.

For a pair ``(G1, G2)`` with ``|V1| <= |V2|`` the paper defines
``G1' = G1^{|V2| - |V1|}`` and ``G2' = G2^{0}``; on these extended graphs
every minimal edit script consists solely of relabelling operations (RV/RE),
which is what makes the probabilistic model of Section V tractable.

The paper stresses (end of Section IV) that the extension is *conceptual*:
GED and GBD are preserved (Theorems 1 and 2), so implementations never need
to materialise the virtual vertices/edges.  We honour that: the model code
works on the original graphs and only needs the *size* ``|V1'|`` of the
extended graph, which :func:`extended_order` provides.  A materialised
:class:`ExtendedGraphView` is still offered for tests, examples, and the
exact verification of Theorems 1 and 2 on small graphs.
"""

from __future__ import annotations

import itertools
from typing import Tuple

from repro.graphs.graph import Graph, VIRTUAL_LABEL


def extended_order(g1: Graph, g2: Graph) -> int:
    """Return ``|V1'| = |V2'| = max(|V1|, |V2|)`` for the extended pair.

    This is the only quantity the probabilistic model needs from the
    extended graphs (it appears in the closed forms of Ω1, Ω2, Ω4 and in the
    Jeffreys prior).
    """
    return max(g1.num_vertices, g2.num_vertices)


def virtual_vertex_id(index: int) -> str:
    """Return the identifier used for the ``index``-th inserted virtual vertex."""
    return f"__virtual_{index}"


class ExtendedGraphView(Graph):
    """A materialised extended graph ``G{k}``.

    The view is itself a :class:`Graph` whose virtual vertices carry the
    reserved label and whose virtual edges carry the reserved label, so the
    branch/GBD machinery can be run on it directly when verifying Theorems 1
    and 2 in the test-suite.
    """

    def __init__(self, base: Graph, extension_factor: int) -> None:
        if extension_factor < 0:
            raise ValueError("extension factor must be non-negative")
        super().__init__(name=f"{base.name or 'G'}{{{extension_factor}}}")
        self.extension_factor = extension_factor

        for vertex, label in base.vertex_items():
            self.add_vertex(vertex, label, allow_virtual=True)
        for index in range(extension_factor):
            self.add_vertex(virtual_vertex_id(index), VIRTUAL_LABEL, allow_virtual=True)
        for u, v, label in base.edges():
            self.add_edge(u, v, label, allow_virtual=True)
        # complete the graph with virtual edges between non-adjacent pairs
        all_vertices = list(self.vertices())
        for u, v in itertools.combinations(all_vertices, 2):
            if not self.has_edge(u, v):
                self.add_edge(u, v, VIRTUAL_LABEL, allow_virtual=True)

    def real_vertices(self):
        """Iterate over the non-virtual vertices of the view."""
        return (v for v, label in self.vertex_items() if label != VIRTUAL_LABEL)

    def virtual_vertices(self):
        """Iterate over the virtual vertices of the view."""
        return (v for v, label in self.vertex_items() if label == VIRTUAL_LABEL)

    def real_edges(self):
        """Iterate over the non-virtual edges of the view."""
        return ((u, v, label) for u, v, label in self.edges() if label != VIRTUAL_LABEL)

    def virtual_edges(self):
        """Iterate over the virtual edges of the view."""
        return ((u, v, label) for u, v, label in self.edges() if label == VIRTUAL_LABEL)


def extend_pair(g1: Graph, g2: Graph) -> Tuple[ExtendedGraphView, ExtendedGraphView]:
    """Return the extended pair ``(G1', G2')`` following the paper's convention.

    The smaller graph receives extension factor ``abs(|V1| - |V2|)`` and the
    larger graph receives factor 0, so both extended graphs have the same
    number of vertices.  When the two graphs already have the same order both
    factors are 0.
    """
    if g1.num_vertices <= g2.num_vertices:
        k1, k2 = g2.num_vertices - g1.num_vertices, 0
    else:
        k1, k2 = 0, g1.num_vertices - g2.num_vertices
    return ExtendedGraphView(g1, k1), ExtendedGraphView(g2, k2)
