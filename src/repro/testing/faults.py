"""Deterministic fault injection for the service layer.

The resilience primitives of :mod:`repro.service.resilience` are proven
against *injected* failure, not hoped correct: a seeded
:class:`FaultInjector` decides — deterministically, and with a replayable
event log — when the wire drops, corrupts, truncates, delays, or resets a
frame, and when the engine raises or stalls mid-batch.  A chaos test run
that fails can dump ``injector.schedule`` and be replayed exactly from
its seed.

Three injection sites cover the failure surface of the service stack:

* **the wire** — :class:`FaultProxy`, a frame-aware TCP proxy between
  client and server (runs on its own thread + event loop, like
  :func:`~repro.service.server.start_service_thread`).  It understands
  the length-prefixed framing, so faults land on *message* boundaries
  the way real network failures do: a dropped response (client must time
  out and retry), corrupted payload bytes (receiver sees unframeable
  JSON and must poison the connection), a truncated frame followed by a
  reset (the classic partial write), injected latency (stalls), and
  abrupt resets.
* **the engine** — :class:`FaultyEngine`, a transparent wrapper whose
  ``query_batch`` raises or sleeps per the schedule; the batcher must
  fail the whole flush with a typed error and keep serving later
  batches.
* **the process** — :class:`ChaosService`, kill-and-restart of the
  service thread on a stable port: clients with retry policies must
  reconnect and converge after the "crash".

Everything here is test infrastructure, but it ships in the package
(like ``numpy.testing``) so downstream deployments can chaos-test their
own configurations.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import random
import struct
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ServiceError
from repro.service.server import ServiceHandle, start_service_thread

__all__ = [
    "FaultInjector",
    "FaultProxy",
    "FaultProxyHandle",
    "start_fault_proxy",
    "FaultyEngine",
    "ChaosService",
]

_LENGTH = struct.Struct(">I")

#: Wire fault kinds, in the priority order probabilities are consumed —
#: fixed so one seed always yields one decision sequence.
_WIRE_FAULTS = ("drop", "corrupt", "truncate", "reset", "delay")
_ENGINE_FAULTS = ("raise", "stall")


class FaultInjector:
    """Seeded, deterministic fault decisions with a replayable event log.

    Parameters
    ----------
    seed:
        Seed of the decision stream.  The same seed and the same sequence
        of consultations yields the same decisions — chaos runs replay.
    drop, corrupt, truncate, reset, delay:
        Per-frame probabilities of each wire fault (checked in that fixed
        order; at most one fault per frame).
    delay_ms:
        ``(low, high)`` range of injected wire delays.
    engine_fault, engine_stall:
        Per-batch probabilities of a mid-batch scoring exception / stall.
    stall_ms:
        ``(low, high)`` range of injected engine stalls.

    The injector is consulted from the proxy's event loop *and* the
    scoring thread; a lock keeps the decision stream single-file so the
    sequence is well-defined.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        drop: float = 0.0,
        corrupt: float = 0.0,
        truncate: float = 0.0,
        reset: float = 0.0,
        delay: float = 0.0,
        delay_ms: Tuple[float, float] = (1.0, 25.0),
        engine_fault: float = 0.0,
        engine_stall: float = 0.0,
        stall_ms: Tuple[float, float] = (5.0, 50.0),
    ) -> None:
        for name, value in (
            ("drop", drop),
            ("corrupt", corrupt),
            ("truncate", truncate),
            ("reset", reset),
            ("delay", delay),
            ("engine_fault", engine_fault),
            ("engine_stall", engine_stall),
        ):
            if not 0.0 <= value <= 1.0:
                raise ServiceError(f"{name} must be a probability in [0, 1]")
        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._wire_probs = {
            "drop": drop,
            "corrupt": corrupt,
            "truncate": truncate,
            "reset": reset,
            "delay": delay,
        }
        self._delay_ms = delay_ms
        self._engine_probs = {"raise": engine_fault, "stall": engine_stall}
        self._stall_ms = stall_ms
        #: Replayable event log: one entry per *injected* fault, in
        #: injection order (consulted-but-clean frames are not logged).
        self.schedule: List[Dict[str, Any]] = []
        self._sequence = 0

    # ------------------------------------------------------------------ #
    # decisions
    # ------------------------------------------------------------------ #
    def _record(self, site: str, action: str, **detail) -> None:
        self._sequence += 1
        entry = {"seq": self._sequence, "site": site, "action": action}
        entry.update(detail)
        self.schedule.append(entry)

    def wire_action(self, direction: str) -> Tuple[str, float]:
        """Decide the fate of one frame: ``(action, delay_seconds)``.

        ``direction`` is ``"request"`` or ``"response"`` — logged so a
        failing schedule shows which leg was hit.
        """
        with self._lock:
            roll = self._rng.random()
            cumulative = 0.0
            for fault in _WIRE_FAULTS:
                cumulative += self._wire_probs[fault]
                if roll < cumulative:
                    delay = 0.0
                    if fault == "delay":
                        delay = self._rng.uniform(*self._delay_ms) / 1000.0
                        self._record(
                            "wire", fault, direction=direction, delay_ms=delay * 1000.0
                        )
                    else:
                        self._record("wire", fault, direction=direction)
                    return fault, delay
            return "pass", 0.0

    def engine_action(self) -> Tuple[str, float]:
        """Decide the fate of one engine batch: ``(action, stall_seconds)``."""
        with self._lock:
            roll = self._rng.random()
            cumulative = 0.0
            for fault in _ENGINE_FAULTS:
                cumulative += self._engine_probs[fault]
                if roll < cumulative:
                    stall = 0.0
                    if fault == "stall":
                        stall = self._rng.uniform(*self._stall_ms) / 1000.0
                        self._record("engine", fault, stall_ms=stall * 1000.0)
                    else:
                        self._record("engine", fault)
                    return fault, stall
            return "pass", 0.0

    # ------------------------------------------------------------------ #
    # replay / reporting
    # ------------------------------------------------------------------ #
    @property
    def injected(self) -> int:
        """Number of faults injected so far."""
        return len(self.schedule)

    def counts(self) -> Dict[str, int]:
        """Injected-fault totals by ``site:action`` (for test reporting)."""
        totals: Dict[str, int] = {}
        for entry in self.schedule:
            key = f"{entry['site']}:{entry['action']}"
            totals[key] = totals.get(key, 0) + 1
        return totals

    def as_dict(self) -> Dict[str, Any]:
        """Seed + config + full schedule — the CI failure artifact."""
        return {
            "seed": self.seed,
            "wire_probabilities": dict(self._wire_probs),
            "engine_probabilities": dict(self._engine_probs),
            "injected": self.injected,
            "counts": self.counts(),
            "schedule": list(self.schedule),
        }

    def __repr__(self) -> str:
        return f"<FaultInjector seed={self.seed} injected={self.injected}>"


# ---------------------------------------------------------------------- #
# the wire: frame-aware fault proxy
# ---------------------------------------------------------------------- #
async def _read_raw_frame(reader) -> Optional[bytes]:
    """Read one complete frame (prefix + payload) as raw bytes; None on EOF."""
    try:
        prefix = await reader.readexactly(_LENGTH.size)
        (length,) = _LENGTH.unpack(prefix)
        payload = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        return None
    return prefix + payload


class FaultProxy:
    """Frame-aware TCP proxy injecting wire faults between client and service.

    Forwards length-prefixed frames in both directions, consulting the
    :class:`FaultInjector` per frame on the configured legs.  Faults are
    applied on message boundaries:

    * ``drop`` — the frame silently vanishes (the client's read/deadline
      machinery must notice);
    * ``corrupt`` — payload bytes are flipped (the receiver must treat the
      connection as poisoned, never act on garbage);
    * ``truncate`` — a partial write followed by closing both legs (torn
      frame);
    * ``reset`` — both legs close immediately;
    * ``delay`` — the frame is stalled before forwarding.

    Parameters
    ----------
    upstream:
        ``(host, port)`` of the real service.
    injector:
        The seeded decision source.
    host, port:
        Listen address of the proxy (port 0 picks a free port).
    faulty_directions:
        Which legs faults apply to: subset of ``{"request", "response"}``
        (default: responses only, the leg that exercises client-side
        timeout/retry machinery hardest; clean legs still forward).
    """

    def __init__(
        self,
        upstream: Tuple[str, int],
        injector: FaultInjector,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        faulty_directions: Tuple[str, ...] = ("response",),
    ) -> None:
        self.upstream = upstream
        self.injector = injector
        self.host = host
        self._requested_port = int(port)
        self.faulty_directions = tuple(faulty_directions)
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: set = set()

    async def start(self) -> None:
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self._requested_port
            )

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise ServiceError("the fault proxy is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def _handle_client(self, client_reader, client_writer) -> None:
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                *self.upstream
            )
        except OSError:
            client_writer.close()
            return
        alive = {"open": True}
        loop = asyncio.get_running_loop()
        pumps = [
            loop.create_task(
                self._pump("request", client_reader, upstream_writer, alive)
            ),
            loop.create_task(
                self._pump("response", upstream_reader, client_writer, alive)
            ),
        ]
        for pump in pumps:
            self._tasks.add(pump)
            pump.add_done_callback(self._tasks.discard)
        try:
            await asyncio.gather(*pumps, return_exceptions=True)
        finally:
            for writer in (client_writer, upstream_writer):
                try:
                    writer.close()
                except Exception:
                    pass

    async def _pump(self, direction, reader, writer, alive) -> None:
        """Forward frames one way, applying the injector's decisions."""
        while alive["open"]:
            frame = await _read_raw_frame(reader)
            if frame is None:
                break
            if direction in self.faulty_directions:
                action, delay = self.injector.wire_action(direction)
            else:
                action, delay = "pass", 0.0
            if action == "drop":
                continue
            if action == "corrupt":
                # Flip bytes inside the payload; the length prefix stays
                # valid so the receiver reads a full frame of garbage.
                body = bytearray(frame)
                for offset in range(_LENGTH.size, min(len(body), _LENGTH.size + 8)):
                    body[offset] ^= 0xFF
                frame = bytes(body)
            elif action == "truncate":
                # Torn write: forward a strict prefix, then kill the
                # connection — the receiver must detect the partial frame.
                writer.write(frame[: max(_LENGTH.size + 1, len(frame) // 2)])
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass
                alive["open"] = False
                break
            elif action == "reset":
                alive["open"] = False
                break
            elif action == "delay":
                await asyncio.sleep(delay)
            try:
                writer.write(frame)
                await writer.drain()
            except (ConnectionError, OSError):
                break
        try:
            writer.close()
        except Exception:
            pass


class FaultProxyHandle:
    """Handle on a :class:`FaultProxy` running on its own thread."""

    def __init__(self, proxy: FaultProxy, loop, thread: threading.Thread, port: int):
        self.proxy = proxy
        self._loop = loop
        self._thread = thread
        self.host = proxy.host
        self.port = port

    @property
    def address(self) -> Tuple[str, int]:
        """``(host, port)`` clients should dial instead of the service."""
        return (self.host, self.port)

    def stop(self, timeout: float = 10.0) -> None:
        if self._thread.is_alive():
            try:
                future = asyncio.run_coroutine_threadsafe(self.proxy.stop(), self._loop)
                future.result(timeout)
            # concurrent.futures.TimeoutError is not the builtin on 3.9.
            except (RuntimeError, TimeoutError, concurrent.futures.TimeoutError):
                pass
            try:
                self._loop.call_soon_threadsafe(self._loop.stop)
            except RuntimeError:
                pass
        self._thread.join(timeout)

    def __enter__(self) -> "FaultProxyHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_fault_proxy(
    upstream: Tuple[str, int],
    injector: FaultInjector,
    *,
    timeout: float = 10.0,
    **kwargs,
) -> FaultProxyHandle:
    """Run a :class:`FaultProxy` on a dedicated daemon thread; return its handle."""
    proxy = FaultProxy(upstream, injector, **kwargs)
    started = threading.Event()
    holder: Dict[str, Any] = {}

    async def _main() -> None:
        try:
            await proxy.start()
            holder["port"] = proxy.port
            holder["loop"] = asyncio.get_running_loop()
        except BaseException as exc:
            holder["error"] = exc
            started.set()
            raise
        started.set()
        await asyncio.Event().wait()  # run until the loop is stopped

    def _runner() -> None:
        try:
            asyncio.run(_main())
        except Exception:
            if not started.is_set():  # pragma: no cover - defensive
                started.set()

    thread = threading.Thread(target=_runner, name="repro-fault-proxy", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise ServiceError("fault proxy failed to start within the timeout")
    if "error" in holder:
        raise ServiceError(f"fault proxy failed to start: {holder['error']}")
    return FaultProxyHandle(proxy, holder["loop"], thread, holder["port"])


# ---------------------------------------------------------------------- #
# the engine: mid-batch scoring faults
# ---------------------------------------------------------------------- #
class FaultyEngine:
    """Transparent engine wrapper injecting mid-batch scoring failures.

    ``query_batch`` consults the injector per flush: ``raise`` makes the
    whole batch fail with a ``RuntimeError`` *after* the queries were
    accepted (exactly the mid-batch failure the batcher must convert into
    typed per-query errors), ``stall`` sleeps in the scoring thread
    before delegating (exercising deadline drops and hedging).  Every
    other attribute — model version, database, cache, prune counters —
    passes through, so the server cannot tell it is being sabotaged.
    """

    def __init__(self, engine, injector: FaultInjector) -> None:
        self._engine = engine
        self._injector = injector

    def query_batch(self, queries, **kwargs):
        action, stall = self._injector.engine_action()
        if action == "raise":
            raise RuntimeError(
                f"injected engine fault: batch of {len(list(queries))} abandoned mid-score"
            )
        if action == "stall":
            time.sleep(stall)
        return self._engine.query_batch(queries, **kwargs)

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def __repr__(self) -> str:
        return f"<FaultyEngine {self._injector!r} wrapping {self._engine!r}>"


# ---------------------------------------------------------------------- #
# the process: kill-and-restart
# ---------------------------------------------------------------------- #
class ChaosService:
    """Service lifecycle with crash simulation on a stable port.

    Starts a :func:`start_service_thread` service, remembers the bound
    port, and can :meth:`kill` it abruptly (no drain — in-flight queries
    are abandoned, connections reset) and :meth:`restart` a fresh service
    thread *on the same port*, so retrying clients reconnect to the same
    address, exactly like a supervised process coming back after a crash.
    """

    def __init__(self, engine=None, **service_kwargs) -> None:
        self._engine = engine
        self._kwargs = dict(service_kwargs)
        self._handle: Optional[ServiceHandle] = None
        self._port: Optional[int] = None
        self.restarts = 0

    def start(self) -> ServiceHandle:
        if self._handle is not None:
            raise ServiceError("chaos service already running")
        kwargs = dict(self._kwargs)
        if self._port is not None:
            kwargs["port"] = self._port
        self._handle = start_service_thread(self._engine, **kwargs)
        self._port = self._handle.port
        return self._handle

    @property
    def handle(self) -> ServiceHandle:
        if self._handle is None:
            raise ServiceError("chaos service is not running")
        return self._handle

    @property
    def address(self) -> Tuple[str, int]:
        return self.handle.address

    def kill(self) -> None:
        """Crash the service: stop its loop without draining anything."""
        self.handle.kill()
        self._handle = None

    def restart(self, wait_seconds: float = 5.0) -> ServiceHandle:
        """Bring a killed service back on the same port.

        The dead listener's socket may linger briefly after the crash;
        rebinding retries for up to ``wait_seconds``.
        """
        if self._handle is not None:
            raise ServiceError("restart() after kill(); the service is still running")
        deadline = time.monotonic() + wait_seconds
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                handle = self.start()
            except ServiceError as exc:
                self._handle = None
                last_error = exc
                time.sleep(0.05)
                continue
            self.restarts += 1
            return handle
        raise ServiceError(f"could not rebind port {self._port} after kill: {last_error}")

    def stop(self) -> None:
        if self._handle is not None:
            self._handle.stop()
            self._handle = None

    def __enter__(self) -> "ChaosService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
