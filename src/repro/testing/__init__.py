"""repro.testing — fault injection and chaos-testing harnesses.

Production-facing resilience claims are only as good as the failures they
were tested against.  This package holds the *correctness engine* of the
service layer's fault tolerance:

* :class:`~repro.testing.faults.FaultInjector` — a seeded, deterministic
  source of fault decisions (drop / corrupt / truncate / delay / reset on
  the wire, raise / stall in the engine) that records every injected
  fault in a replayable schedule.
* :class:`~repro.testing.faults.FaultProxy` /
  :func:`~repro.testing.faults.start_fault_proxy` — a frame-aware TCP
  proxy between client and service that applies wire faults.
* :class:`~repro.testing.faults.FaultyEngine` — an engine wrapper that
  injects mid-batch scoring failures and stalls.
* :class:`~repro.testing.faults.ChaosService` — service lifecycle with
  kill-and-restart (crash simulation on a stable port).

See ``tests/test_chaos.py`` for the invariant the harness enforces:
*every query either returns the bit-identical correct answer or a typed
error, and the service returns to healthy.*
"""

from repro.testing.faults import (
    ChaosService,
    FaultInjector,
    FaultProxy,
    FaultyEngine,
    start_fault_proxy,
)

__all__ = [
    "ChaosService",
    "FaultInjector",
    "FaultProxy",
    "FaultyEngine",
    "start_fault_proxy",
]
