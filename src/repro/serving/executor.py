"""Concurrent serving driver: shard queries — or the database — across workers.

:class:`ServingExecutor` spreads a stream of similarity queries over a pool
of workers and merges the per-worker :class:`~repro.db.query.QueryAnswer`
lists back into input order.

Four execution modes are supported:

* ``"serial"`` — answer everything inline (baseline / debugging);
* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor` sharing
  one engine: the result cache and posterior tables are shared, and the
  numpy scoring kernels release little of the GIL, so this mode mostly
  overlaps the Python-side bookkeeping — it is the default because it is
  cheap to start and preserves cache counters;
* ``"process"`` — a :class:`~concurrent.futures.ProcessPoolExecutor` that
  ships a pickled copy of the engine to every worker once (pool
  initializer) and partitions the *query stream*.  True parallelism at the
  cost of start-up and per-worker caches; each worker returns its cache /
  filter-counter deltas (and its metric-registry delta) alongside the
  answers, and the parent folds them into the merged stats;
* ``"data-parallel"`` — partitions the *database* instead: the engine is
  split into id-preserving shard engines
  (:meth:`~repro.serving.engine.BatchQueryEngine.shard_engines`), each
  process worker scores **every** query against its shard through the
  batched matrix path, and the per-shard answers are merged by union
  (:meth:`BatchQueryEngine.merge_answers`).  Workers ship one shard each
  instead of the full engine, so memory per worker scales down with the
  shard — the mode to reach databases too large (or too slow) to score in
  one process.

Every run produces a :class:`~repro.serving.stats.ServingStats` with
wall-clock throughput, per-query latency percentiles, and cache counters.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import ServingError
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.serving.engine import BatchQueryEngine
from repro.serving.stats import ServingStats

__all__ = ["ServingExecutor"]

_MODES = ("serial", "thread", "process", "data-parallel")

#: Per-process engine installed by the process-pool initializer.
_WORKER_ENGINE: Optional[BatchQueryEngine] = None


def _init_process_worker(engine: BatchQueryEngine) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = engine


def _worker_stats_begin(engine: BatchQueryEngine) -> Tuple:
    """Snapshot a worker's cache / filter / metric state before its task."""
    cache = engine.cache
    return (
        cache.hits if cache is not None else 0,
        cache.misses if cache is not None else 0,
        engine.prune_counters,
        get_registry().dump(),
    )


def _worker_stats_end(engine: BatchQueryEngine, before: Tuple, *, include_metrics: bool) -> Dict:
    """The worker's per-task observability delta, as plain picklable data.

    ``include_metrics`` controls whether the worker-registry delta rides
    along: true for pool workers (the parent merges it into its own
    registry), false when the task ran in the parent's process — its
    increments already landed in the parent registry and merging the delta
    would double-count them.
    """
    hits_before, misses_before, prune_before, dump_before = before
    cache = engine.cache
    prune_after = engine.prune_counters
    return {
        "cache_hits": (cache.hits - hits_before) if cache is not None else 0,
        "cache_misses": (cache.misses - misses_before) if cache is not None else 0,
        "candidates_generated": int(
            prune_after["candidates_generated"] - prune_before["candidates_generated"]
        ),
        "candidates_pruned": int(
            prune_after["candidates_pruned"] - prune_before["candidates_pruned"]
        ),
        "candidates_verified": int(
            prune_after["candidates_verified"] - prune_before["candidates_verified"]
        ),
        "metrics": (
            MetricsRegistry.diff(dump_before, get_registry().dump())
            if include_metrics
            else None
        ),
    }


def _serve_shard_in_process(
    shard: Sequence[Tuple[int, SimilarityQuery]]
) -> Tuple[List[Tuple[int, QueryAnswer]], Dict]:
    """Process-pool worker body: answer one stream shard on the worker engine.

    Returns the answers plus the worker's observability delta (cache
    hits/misses, filter counters, metric-registry diff) so the parent can
    fold them into the merged :class:`ServingStats` instead of dropping
    them with the worker process.
    """
    if _WORKER_ENGINE is None:  # pragma: no cover - defensive
        raise ServingError("process worker was not initialised with an engine")
    before = _worker_stats_begin(_WORKER_ENGINE)
    answers = [(position, _WORKER_ENGINE.query(query)) for position, query in shard]
    return answers, _worker_stats_end(_WORKER_ENGINE, before, include_metrics=True)


def _serve_stream_on_shard(
    engine: BatchQueryEngine,
    queries: Sequence[SimilarityQuery],
    include_metrics: bool = True,
) -> Tuple[List[QueryAnswer], Dict]:
    """Data-parallel worker body: batch-score the whole stream on one shard.

    Shard engines are separate objects from the executor's engine, so their
    counters are invisible to the parent unless returned — the worker-stats
    delta travels back with the answers (``include_metrics=False`` for the
    single-shard in-process fast path, whose metric increments already
    landed in the parent registry).
    """
    before = _worker_stats_begin(engine)
    answers = engine.query_batch(queries)
    return answers, _worker_stats_end(engine, before, include_metrics=include_metrics)


class ServingExecutor:
    """Shard query streams (or the database) across a worker pool.

    Parameters
    ----------
    engine:
        The serving engine answering the queries.
    num_workers:
        Number of shards/workers (>= 1).  ``1`` degenerates to serial (for
        ``"data-parallel"``: a single database shard).
    mode:
        ``"serial"``, ``"thread"`` (default), ``"process"``, or
        ``"data-parallel"``.
    """

    def __init__(
        self,
        engine: BatchQueryEngine,
        *,
        num_workers: int = 4,
        mode: str = "thread",
    ) -> None:
        if mode not in _MODES:
            raise ServingError(f"mode must be one of {_MODES}, got {mode!r}")
        if num_workers < 1:
            raise ServingError("num_workers must be at least 1")
        self.engine = engine
        self.num_workers = int(num_workers)
        self.mode = mode
        self.last_stats: Optional[ServingStats] = None
        self.total_stats = ServingStats()
        # Data-parallel shard engines, built lazily and rebuilt when the
        # database grows (shard views are snapshots).
        self._shard_engines: Optional[List[BatchQueryEngine]] = None
        self._shard_revision: Optional[int] = None

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def map(self, queries: Iterable[SimilarityQuery]) -> List[QueryAnswer]:
        """Answer ``queries`` and return their answers in input order.

        The run's measurements are exposed as :attr:`last_stats` and folded
        into the lifetime :attr:`total_stats`.
        """
        stream = list(queries)
        if self.mode == "data-parallel":
            shards: List = []
            num_batches = len(self._shards_for_run()) if stream else 0
        else:
            shards = self._shard(stream)
            num_batches = len(shards)
        cache = self.engine.cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        # Filter-effectiveness counters live in the shared execution core;
        # in-process modes read their deltas directly, pool modes receive
        # them back from the workers (see _worker_stats_end).
        prune_before = self.engine.prune_counters

        worker_stats: List[Dict] = []
        start = time.perf_counter()
        if self.mode == "data-parallel":
            indexed, worker_stats = self._run_data_parallel(stream)
        elif self.mode == "serial" or len(shards) <= 1:
            indexed = [
                (position, self.engine.query(query))
                for shard in shards
                for position, query in shard
            ]
        elif self.mode == "thread":
            indexed = self._run_threads(shards)
        else:
            indexed, worker_stats = self._run_processes(shards)
        elapsed = time.perf_counter() - start

        answers: List[Optional[QueryAnswer]] = [None] * len(stream)
        for position, answer in indexed:
            answers[position] = answer

        stats = ServingStats(
            num_queries=len(stream),
            num_batches=num_batches,
            elapsed_seconds=elapsed,
            latencies=[answer.elapsed_seconds for answer in answers if answer is not None],
        )
        if self.mode in ("process", "data-parallel"):
            # Fold the per-worker deltas back in: counters add into the
            # merged stats, and each pool worker's metric-registry diff
            # merges into the parent registry (in-process fast paths return
            # metrics=None — their increments already landed here).
            registry = get_registry()
            for delta in worker_stats:
                stats.cache_hits += delta["cache_hits"]
                stats.cache_misses += delta["cache_misses"]
                stats.candidates_generated += delta["candidates_generated"]
                stats.candidates_pruned += delta["candidates_pruned"]
                stats.candidates_verified += delta["candidates_verified"]
                if delta["metrics"] is not None:
                    registry.merge(delta["metrics"])
        else:
            if cache is not None:
                stats.cache_hits = cache.hits - hits_before
                stats.cache_misses = cache.misses - misses_before
            prune_after = self.engine.prune_counters
            stats.candidates_generated = int(
                prune_after["candidates_generated"] - prune_before["candidates_generated"]
            )
            stats.candidates_pruned = int(
                prune_after["candidates_pruned"] - prune_before["candidates_pruned"]
            )
            stats.candidates_verified = int(
                prune_after["candidates_verified"] - prune_before["candidates_verified"]
            )
        self.last_stats = stats
        self.total_stats.merge(stats)
        return answers  # type: ignore[return-value]

    def _shard(self, stream: Sequence[SimilarityQuery]):
        """Round-robin the stream into at most ``num_workers`` shards."""
        num_shards = min(self.num_workers, max(len(stream), 1))
        shards: List[List[Tuple[int, SimilarityQuery]]] = [[] for _ in range(num_shards)]
        for position, query in enumerate(stream):
            shards[position % num_shards].append((position, query))
        return [shard for shard in shards if shard] or [[]]

    def _run_threads(self, shards) -> List[Tuple[int, QueryAnswer]]:
        engine = self.engine

        def serve(shard):
            return [(position, engine.query(query)) for position, query in shard]

        merged: List[Tuple[int, QueryAnswer]] = []
        with ThreadPoolExecutor(max_workers=len(shards)) as pool:
            for result in pool.map(serve, shards):
                merged.extend(result)
        return merged

    def _run_processes(self, shards) -> Tuple[List[Tuple[int, QueryAnswer]], List[Dict]]:
        merged: List[Tuple[int, QueryAnswer]] = []
        worker_stats: List[Dict] = []
        with ProcessPoolExecutor(
            max_workers=len(shards),
            initializer=_init_process_worker,
            initargs=(self.engine,),
        ) as pool:
            for result, delta in pool.map(_serve_shard_in_process, shards):
                merged.extend(result)
                worker_stats.append(delta)
        return merged, worker_stats

    # ------------------------------------------------------------------ #
    # data-parallel mode: partition the database, not the stream
    # ------------------------------------------------------------------ #
    def _shards_for_run(self) -> List[BatchQueryEngine]:
        """Return (building or rebuilding as needed) the shard engines."""
        revision = self.engine.database.revision
        if self._shard_engines is None or self._shard_revision != revision:
            num_shards = min(self.num_workers, len(self.engine.database))
            self._shard_engines = self.engine.shard_engines(num_shards)
            self._shard_revision = revision
        return self._shard_engines

    def _run_data_parallel(
        self, stream
    ) -> Tuple[List[Tuple[int, QueryAnswer]], List[Dict]]:
        if not stream:
            return [], []
        shard_engines = self._shards_for_run()
        if len(shard_engines) == 1:
            results = [_serve_stream_on_shard(shard_engines[0], stream, False)]
        else:
            with ProcessPoolExecutor(max_workers=len(shard_engines)) as pool:
                futures = [
                    pool.submit(_serve_stream_on_shard, engine, stream)
                    for engine in shard_engines
                ]
                results = [future.result() for future in futures]
        partial_lists = [answers for answers, _delta in results]
        worker_stats = [delta for _answers, delta in results]
        indexed = [
            (
                position,
                # merge_for honours per-query top-k mode: thresholded answers
                # merge by union, rankings by re-sorting the shard top-k's.
                BatchQueryEngine.merge_for(
                    stream[position], [plist[position] for plist in partial_lists]
                ),
            )
            for position in range(len(stream))
        ]
        return indexed, worker_stats

    def __repr__(self) -> str:
        return (
            f"<ServingExecutor mode={self.mode!r} workers={self.num_workers} "
            f"served={self.total_stats.num_queries}>"
        )
