"""Serving-side latency/throughput accounting.

:class:`ServingStats` aggregates per-query latencies and cache counters
across batches.  The executor produces one instance per run and merges the
per-shard measurements back into it; benchmarks and operators read the
derived QPS / percentile properties.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

__all__ = ["ServingStats"]


@dataclass
class ServingStats:
    """Aggregated statistics of one (or several merged) serving runs.

    Attributes
    ----------
    num_queries:
        Total number of queries answered.
    num_batches:
        Number of batches (shards) the queries were served in.
    elapsed_seconds:
        Wall-clock time of the whole run (not the sum of per-query times —
        batches may run concurrently).
    latencies:
        Per-query online latencies in seconds, in completion order — a
        *bounded* ring of the most recent ``latency_window`` samples.  A
        long-running server records millions of queries; an unbounded list
        would leak memory and make every percentile call slower forever,
        so the ring keeps ``p50/p95/p99`` accurate on recent traffic at
        fixed memory and fixed sort cost.  ``num_queries`` still counts
        every query ever recorded.
    latency_window:
        Capacity of the latency ring (>= 1); defaults to
        :data:`DEFAULT_LATENCY_WINDOW`.
    cache_hits, cache_misses:
        Result-cache counters accumulated during the run (0 when the engine
        runs without a cache).
    candidates_generated, candidates_pruned, candidates_verified:
        Filter-effectiveness counters of the pruned execution layer,
        accumulated over the run's queries: (query, graph) pairs considered,
        eliminated by bound arithmetic before scoring, and actually scored.
        An unpruned engine reports every pair as generated *and* verified
        (prune_rate 0).  Pool modes (process / data-parallel) fold the
        workers' counter deltas back in, so the merged stats cover them too.
    """

    #: Default capacity of the recent-latency ring: large enough that p99
    #: over the window is statistically meaningful, small enough that a
    #: server holding one of these per process stays O(100 KiB).
    DEFAULT_LATENCY_WINDOW = 8192

    num_queries: int = 0
    num_batches: int = 0
    elapsed_seconds: float = 0.0
    latencies: Deque[float] = field(default_factory=deque)
    cache_hits: int = 0
    cache_misses: int = 0
    candidates_generated: int = 0
    candidates_pruned: int = 0
    candidates_verified: int = 0
    latency_window: int = DEFAULT_LATENCY_WINDOW

    def __post_init__(self) -> None:
        if self.latency_window < 1:
            raise ValueError("latency_window must be a positive integer")
        # Accept any iterable (tests/callers pass plain lists) and re-home
        # it in a ring of the configured capacity.
        self.latencies = deque(self.latencies, maxlen=int(self.latency_window))

    def record_latency(self, latency: float) -> None:
        """Record one served query (count + ring) in one call."""
        self.num_queries += 1
        self.latencies.append(float(latency))

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #
    @property
    def queries_per_second(self) -> float:
        """Throughput of the run (0.0 before anything was served)."""
        if self.elapsed_seconds <= 0.0 or self.num_queries == 0:
            return 0.0
        return self.num_queries / self.elapsed_seconds

    @property
    def mean_latency(self) -> float:
        """Mean per-query latency in seconds."""
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    def percentile(self, q: float) -> float:
        """Return the ``q``-th latency percentile (``q`` in ``[0, 100]``).

        Uses the nearest-rank method on the sorted latencies; returns 0.0
        when nothing has been recorded yet.
        """
        if not self.latencies:
            return 0.0
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile q must lie in [0, 100]")
        ordered = sorted(self.latencies)
        rank = max(math.ceil(q / 100.0 * len(ordered)), 1) - 1
        return ordered[rank]

    @property
    def p50_latency(self) -> float:
        """Median per-query latency in seconds."""
        return self.percentile(50.0)

    @property
    def p95_latency(self) -> float:
        """95th-percentile per-query latency in seconds."""
        return self.percentile(95.0)

    @property
    def p99_latency(self) -> float:
        """99th-percentile per-query latency in seconds (tail SLO metric)."""
        return self.percentile(99.0)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of queries answered from the result cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def prune_rate(self) -> float:
        """Fraction of generated candidates eliminated without scoring."""
        if self.candidates_generated <= 0:
            return 0.0
        return self.candidates_pruned / self.candidates_generated

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def merge(self, other: "ServingStats") -> "ServingStats":
        """Fold another stats object into this one (in place) and return self.

        Elapsed times are summed, which is correct for sequential runs; the
        executor instead stamps the true wall-clock time of a concurrent run
        after merging the per-shard latency lists.
        """
        self.num_queries += other.num_queries
        self.num_batches += other.num_batches
        self.elapsed_seconds += other.elapsed_seconds
        self.latencies.extend(other.latencies)  # ring drops the oldest samples
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.candidates_generated += other.candidates_generated
        self.candidates_pruned += other.candidates_pruned
        self.candidates_verified += other.candidates_verified
        return self

    def as_dict(self) -> Dict[str, float]:
        """Return a flat summary dict (for logging / result files)."""
        return {
            "num_queries": self.num_queries,
            "num_batches": self.num_batches,
            "elapsed_seconds": self.elapsed_seconds,
            "queries_per_second": self.queries_per_second,
            "mean_latency": self.mean_latency,
            "p50_latency": self.p50_latency,
            "p95_latency": self.p95_latency,
            "p99_latency": self.p99_latency,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "candidates_generated": self.candidates_generated,
            "candidates_pruned": self.candidates_pruned,
            "candidates_verified": self.candidates_verified,
            "prune_rate": self.prune_rate,
            "latency_samples": len(self.latencies),
            "latency_window": self.latency_window,
        }

    def __repr__(self) -> str:
        return (
            f"<ServingStats n={self.num_queries} qps={self.queries_per_second:.1f} "
            f"p50={self.p50_latency * 1e3:.2f}ms p95={self.p95_latency * 1e3:.2f}ms "
            f"hit_rate={self.cache_hit_rate:.0%}>"
        )
