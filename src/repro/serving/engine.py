"""Batched, vectorized GBDA query engine.

:class:`BatchQueryEngine` answers batches of
:class:`~repro.db.query.SimilarityQuery` against a fitted GBDA model.  It
exploits the key structural fact of the posterior: ``Φ = Pr[GED <= τ̂ |
GBD = ϕ]`` depends only on the integer triple ``(ϕ, τ̂, |V'1|)``.  For a
fixed τ̂ the engine therefore pre-computes (lazily, on first use) a dense
posterior lookup vector per extended order — see
:meth:`~repro.core.estimator.GBDAEstimator.posterior_table` — after which
scoring the *whole* database is:

1. one pass over the query's branches through the
   :class:`~repro.db.index.BranchInvertedIndex` (the ``gbd_all`` /
   :meth:`~repro.db.index.BranchInvertedIndex.gbd_array` path) to obtain
   every GBD at once,
2. a vectorized numpy table lookup mapping GBDs to posteriors, and
3. a single threshold comparison against γ,

instead of the per-graph Python loop of :meth:`GBDASearch.query`.  Answers
are bit-identical to the loop path because the tables are filled by the very
same :meth:`GBDAEstimator.posterior` evaluations.

Repeated queries are served from an optional LRU result cache
(:class:`~repro.serving.cache.QueryResultCache`), and the engine stays
consistent with incremental database additions through the database's
subscription hook.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.branches import branch_multiset
from repro.core.estimator import GBDAEstimator
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import ServingError
from repro.serving.cache import QueryResultCache, query_cache_key

__all__ = ["BatchQueryEngine"]

#: Allowed values of the ``keep_scores`` engine option.
_KEEP_SCORES_MODES = ("accepted", "all", "none")


class BatchQueryEngine:
    """Serve batches of similarity queries against a fitted GBDA model.

    Parameters
    ----------
    database:
        The graph database ``D`` to serve (non-empty).
    estimator:
        A :class:`GBDAEstimator` built from fitted Λ2/Λ3 priors.
    max_tau:
        Largest similarity threshold supported by the priors.
    cache_size:
        Capacity of the LRU result cache; ``None`` or ``0`` disables caching.
    keep_scores:
        Which posterior scores to retain in each answer: ``"accepted"``
        (default — scores of accepted graphs only, keeps serving cheap),
        ``"all"`` (every database graph, matches ``GBDASearch.query``), or
        ``"none"``.
    use_index_pruning:
        Mirror of the :class:`GBDASearch` option: when true, graphs whose
        GBD already certifies ``GED > τ̂`` (``GBD > 2 τ̂``) are rejected
        without scoring, exactly as the pruning search variant does —
        :meth:`from_search` propagates the search's setting so engine
        answers stay identical to the wrapped search either way.
    """

    method_name = "GBDA"

    def __init__(
        self,
        database: GraphDatabase,
        estimator: GBDAEstimator,
        *,
        max_tau: int,
        cache_size: Optional[int] = 256,
        keep_scores: str = "accepted",
        use_index_pruning: bool = False,
    ) -> None:
        if len(database) == 0:
            raise ServingError("cannot serve queries over an empty database")
        if max_tau < 0:
            raise ServingError("max_tau must be non-negative")
        if keep_scores not in _KEEP_SCORES_MODES:
            raise ServingError(f"keep_scores must be one of {_KEEP_SCORES_MODES}")
        self.database = database
        self.estimator = estimator
        self.max_tau = int(max_tau)
        self.keep_scores = keep_scores
        self.use_index_pruning = bool(use_index_pruning)
        self.cache_size = int(cache_size) if cache_size else 0
        self.cache: Optional[QueryResultCache] = (
            QueryResultCache(self.cache_size) if self.cache_size else None
        )
        # The index subscribes to the database's add-hook, so both the
        # postings and the dense order vector track incremental additions.
        self._index = BranchInvertedIndex(database)
        self._tables: Dict[Tuple[int, int], np.ndarray] = {}
        #: Version of the offline model serving the answers.  0 for an
        #: engine built directly from a search; the incremental
        #: OfflineFitter bumps it on every refit so snapshots are ordered.
        self.model_version: int = 0
        # Cached answers are scoped to the database contents: adding a graph
        # must drop them or the cache would keep serving pre-add result sets.
        database.subscribe(self._on_graph_added)

    def _on_graph_added(self, entry) -> None:
        if self.cache is not None:
            self.cache.clear()

    def __setstate__(self, state):
        # Mirror BranchInvertedIndex.__setstate__: the database sheds its
        # weakly held subscribers on pickling, so re-register the cache
        # invalidation hook in the unpickled copy.
        self.__dict__.update(state)
        self.database.subscribe(self._on_graph_added)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_search(cls, search, **kwargs) -> "BatchQueryEngine":
        """Build an engine from a fitted :class:`~repro.core.search.GBDASearch`."""
        if not getattr(search, "is_fitted", False):
            raise ServingError("the search must be fitted before building a serving engine")
        kwargs.setdefault("use_index_pruning", getattr(search, "use_index_pruning", False))
        return cls(
            search.database,
            search.estimator,
            max_tau=search.max_tau,
            **kwargs,
        )

    # ------------------------------------------------------------------ #
    # posterior lookup tables
    # ------------------------------------------------------------------ #
    def posterior_vector(self, tau_hat: int, extended_order: int) -> np.ndarray:
        """Return the dense posterior vector for one ``(τ̂, |V'1|)`` pair.

        ``vector[ϕ] = Pr[GED <= τ̂ | GBD = ϕ]`` for ``ϕ in 0..|V'1|``;
        computed on first use via :meth:`GBDAEstimator.posterior_row` and
        cached for the lifetime of the engine.
        """
        key = (int(tau_hat), max(int(extended_order), 1))
        vector = self._tables.get(key)
        if vector is None:
            vector = np.asarray(self.estimator.posterior_row(key[0], key[1]), dtype=np.float64)
            self._tables[key] = vector
        return vector

    def warm(self, tau_hats: Iterable[int], extended_orders: Optional[Iterable[int]] = None) -> int:
        """Pre-compute posterior vectors ahead of traffic; return the table count.

        ``extended_orders`` defaults to the distinct vertex counts present in
        the database — the exact orders hit by queries no larger than the
        largest stored graph; larger queries extend the tables lazily.
        """
        if extended_orders is None:
            extended_orders = sorted({entry.num_vertices for entry in self.database})
        orders = list(extended_orders)
        for tau_hat in tau_hats:
            if tau_hat > self.max_tau:
                raise ServingError(
                    f"τ̂={tau_hat} exceeds the pre-computed maximum {self.max_tau}"
                )
            for order in orders:
                self.posterior_vector(tau_hat, order)
        return len(self._tables)

    @property
    def num_cached_tables(self) -> int:
        """Number of ``(τ̂, |V'1|)`` posterior vectors currently materialised."""
        return len(self._tables)

    def tables_state(self) -> List[Tuple[int, int, List[float]]]:
        """Export the materialised posterior vectors (snapshot layer)."""
        return [
            (tau_hat, order, vector.tolist())
            for (tau_hat, order), vector in sorted(self._tables.items())
        ]

    def load_tables(self, state: Iterable[Tuple[int, int, Sequence[float]]]) -> None:
        """Restore posterior vectors exported by :meth:`tables_state`."""
        for tau_hat, order, values in state:
            self._tables[(int(tau_hat), int(order))] = np.asarray(values, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def query(self, query: SimilarityQuery) -> QueryAnswer:
        """Answer one similarity query (cache-backed, vectorized scoring)."""
        if query.tau_hat > self.max_tau:
            raise ServingError(
                f"τ̂={query.tau_hat} exceeds the pre-computed maximum {self.max_tau}; "
                "re-fit the offline stage with a larger max_tau"
            )
        start = time.perf_counter()
        query_branches = branch_multiset(query.query_graph)
        cache_key = None
        if self.cache is not None:
            cache_key = query_cache_key(query_branches, query.tau_hat, query.gamma)
            cached = self.cache.get(cache_key)
            if cached is not None:
                # Hand out a copy: the serve time of *this* lookup replaces
                # the cold-path latency, and the scores dict is duplicated so
                # a caller mutating its answer cannot corrupt the cache.
                return dataclasses.replace(
                    cached,
                    scores=dict(cached.scores),
                    elapsed_seconds=time.perf_counter() - start,
                )
        answer = self._score(query, query_branches, start)
        if self.cache is not None:
            # Cache a private copy for the same reason.
            self.cache.put(cache_key, dataclasses.replace(answer, scores=dict(answer.scores)))
        return answer

    def query_batch(self, queries: Iterable[SimilarityQuery]) -> List[QueryAnswer]:
        """Answer a batch of queries, sharing posterior tables and the cache.

        Answers are returned in input order.  The lazily built ``(τ̂, |V'1|)``
        tables are shared across the whole batch (and across batches), so the
        amortised per-query cost is the vectorized scoring alone.
        """
        return [self.query(query) for query in queries]

    def _score(self, query: SimilarityQuery, query_branches, start: float) -> QueryAnswer:
        """Vectorized Steps 2–4 of Algorithm 1 over the whole database."""
        num_query_vertices = query.query_graph.num_vertices
        gbds = self._index.gbd_array(query.query_graph, query_branches=query_branches)
        orders = self._index.extended_orders_array(num_query_vertices)

        posteriors = np.empty(len(gbds), dtype=np.float64)
        for order in np.unique(orders):
            mask = orders == order
            vector = self.posterior_vector(query.tau_hat, int(order))
            posteriors[mask] = vector[gbds[mask]]

        accepted_mask = posteriors >= query.gamma
        if self.use_index_pruning:
            # Same candidate set as candidates_by_gbd_bound: one edit changes
            # at most two branches, so GBD > 2τ̂ certifies GED > τ̂.
            eligible = gbds <= 2 * query.tau_hat
            accepted_mask &= eligible
        else:
            eligible = None
        accepted_ids = frozenset(int(graph_id) for graph_id in np.nonzero(accepted_mask)[0])

        if self.keep_scores == "all":
            # With pruning, mirror the loop: pruned graphs are never scored.
            candidates = np.nonzero(eligible)[0] if eligible is not None else range(len(posteriors))
            scores = {int(i): float(posteriors[i]) for i in candidates}
        elif self.keep_scores == "accepted":
            scores = {graph_id: float(posteriors[graph_id]) for graph_id in accepted_ids}
        else:
            scores = {}

        return QueryAnswer(
            method=self.method_name,
            accepted_ids=accepted_ids,
            scores=scores,
            elapsed_seconds=time.perf_counter() - start,
        )

    def search(self, query_graph, tau_hat: int, gamma: float = 0.9) -> QueryAnswer:
        """Convenience wrapper mirroring :meth:`GBDASearch.search`."""
        return self.query(SimilarityQuery(query_graph, tau_hat, gamma))

    # ------------------------------------------------------------------ #
    # persistence (delegates to repro.serving.snapshot)
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Serialize the fitted engine to a versioned on-disk snapshot."""
        from repro.serving.snapshot import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path) -> "BatchQueryEngine":
        """Restore an engine from :meth:`save` output without re-fitting."""
        from repro.serving.snapshot import load_engine

        return load_engine(path)

    def __repr__(self) -> str:
        return (
            f"<BatchQueryEngine |D|={len(self.database)} max_tau={self.max_tau} "
            f"tables={self.num_cached_tables} cache={self.cache_size or 'off'}>"
        )
