"""Batched, vectorized GBDA query engine.

:class:`BatchQueryEngine` answers batches of
:class:`~repro.db.query.SimilarityQuery` against a fitted GBDA model.  It
is a vectorized caller of the shared
:class:`~repro.core.plan.ExecutionCore` — the single implementation of
Algorithm 1's online steps also behind :meth:`GBDASearch.query` — and
exploits the key structural fact of the posterior: ``Φ = Pr[GED <= τ̂ |
GBD = ϕ]`` depends only on the integer triple ``(ϕ, τ̂, |V'1|)``.  Scoring
the whole database is therefore:

1. one pass over the query's branches through the columnar branch index
   (:class:`~repro.db.columnar.ColumnarBranchStore` — CSR postings, one
   ``bincount`` scatter-add) to obtain every GBD at once,
2. a vectorized numpy table lookup mapping GBDs to posteriors, and
3. a single threshold comparison against γ.

:meth:`query_batch` goes one step further: the whole batch's GBDs come
from **one** ``(Q, D)`` columnar intersection pass
(:meth:`~repro.db.index.BranchInvertedIndex.gbd_matrix`), and τ̂/γ-sorted
groups share one posterior (or boolean acceptance) lookup table each —
true batching instead of a per-query loop, with answers identical to the
loop path in input order.

Answers are bit-identical to :meth:`GBDASearch.query` (and its scalar
:meth:`~repro.core.search.GBDASearch.query_reference` loop) because the
tables are filled by the very same :meth:`GBDAEstimator.posterior`
evaluations.

For shard-parallel scoring, :meth:`shard_engines` splits the engine into
engines over id-preserving database shards
(:meth:`~repro.db.database.GraphDatabase.shard`) whose per-query answers
:meth:`merge_answers` unions back — the building block of the serving
executor's ``"data-parallel"`` mode.

Repeated queries are served from an optional LRU result cache
(:class:`~repro.serving.cache.QueryResultCache`), and the engine stays
consistent with incremental database additions through the database's
subscription hook.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.estimator import GBDAEstimator
from repro.core.plan import CandidateScores, ExecutionCore
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import ServingError
from repro.obs.metrics import get_registry
from repro.obs.trace import activated
from repro.serving.cache import QueryResultCache, query_cache_key

__all__ = ["BatchQueryEngine"]

#: Allowed values of the ``keep_scores`` engine option.
_KEEP_SCORES_MODES = ("accepted", "all", "none")

# Children bound once at import time; never stored on engine instances —
# engines are pickled into pool workers (see repro.core.plan for the
# worker-delta protocol).
_ENGINE_QUERIES = get_registry().counter(
    "repro_engine_queries_total", "Queries answered by the serving engine", ("path",)
)
_ENGINE_SECONDS = get_registry().histogram(
    "repro_engine_query_seconds", "Engine-side serve time in seconds", ("path",)
)
_CACHE_EVENTS = get_registry().counter(
    "repro_engine_cache_events_total", "Result-cache probe outcomes", ("outcome",)
)
_QUERIES_SINGLE = _ENGINE_QUERIES.labels(path="single")
_QUERIES_TOPK = _ENGINE_QUERIES.labels(path="topk")
_QUERIES_BATCH = _ENGINE_QUERIES.labels(path="batch")
_SECONDS_SINGLE = _ENGINE_SECONDS.labels(path="single")
_SECONDS_TOPK = _ENGINE_SECONDS.labels(path="topk")
_SECONDS_BATCH = _ENGINE_SECONDS.labels(path="batch")
_CACHE_HITS = _CACHE_EVENTS.labels(outcome="hit")
_CACHE_MISSES = _CACHE_EVENTS.labels(outcome="miss")


class BatchQueryEngine:
    """Serve batches of similarity queries against a fitted GBDA model.

    Parameters
    ----------
    database:
        The graph database ``D`` to serve (non-empty).  An id-preserving
        shard view (:meth:`GraphDatabase.shard`) works too; answers then
        cover the shard's graphs under their global ids.
    estimator:
        A :class:`GBDAEstimator` built from fitted Λ2/Λ3 priors.
    max_tau:
        Largest similarity threshold supported by the priors.
    cache_size:
        Capacity of the LRU result cache; ``None`` or ``0`` disables caching.
    keep_scores:
        Which posterior scores to retain in each answer: ``"accepted"``
        (default — scores of accepted graphs only, keeps serving cheap),
        ``"all"`` (every database graph, matches ``GBDASearch.query``), or
        ``"none"``.
    use_index_pruning:
        Mirror of the :class:`GBDASearch` option: when true, graphs whose
        GBD already certifies ``GED > τ̂`` (``GBD > 2 τ̂``) are rejected
        without scoring, exactly as the pruning search variant does —
        :meth:`from_search` propagates the search's setting so engine
        answers stay identical to the wrapped search either way.
    pruned_execution:
        When true (default) and the engine does not need every candidate's
        posterior (``keep_scores != "all"``), queries run through the
        filter-and-verify path of
        :meth:`~repro.core.plan.ExecutionCore.execute_pruned`: the ``(τ̂,
        γ)`` acceptance rule is inverted into a max-acceptable-GBD
        threshold and candidates are eliminated by O(1) GBD-lower-bound
        arithmetic before any postings traversal.  Answers are bit-identical
        either way; set to false to benchmark the unpruned engine.
    kernel_backend:
        Columnar kernel backend of the engine's branch index: ``"auto"``
        (default — the compiled backend when buildable, numpy otherwise),
        ``"numpy"``, or ``"native"`` (hard error when unbuildable).  See
        :mod:`repro.db.kernels`; answers are bit-identical across backends.
    """

    method_name = "GBDA"

    def __init__(
        self,
        database: GraphDatabase,
        estimator: GBDAEstimator,
        *,
        max_tau: int,
        cache_size: Optional[int] = 256,
        keep_scores: str = "accepted",
        use_index_pruning: bool = False,
        pruned_execution: bool = True,
        kernel_backend: str = "auto",
    ) -> None:
        if len(database) == 0:
            raise ServingError("cannot serve queries over an empty database")
        if max_tau < 0:
            raise ServingError("max_tau must be non-negative")
        if keep_scores not in _KEEP_SCORES_MODES:
            raise ServingError(f"keep_scores must be one of {_KEEP_SCORES_MODES}")
        self.database = database
        self.estimator = estimator
        self.max_tau = int(max_tau)
        self.keep_scores = keep_scores
        self.use_index_pruning = bool(use_index_pruning)
        self.pruned_execution = bool(pruned_execution)
        self.kernel_backend = str(kernel_backend)
        self.cache_size = int(cache_size) if cache_size else 0
        self.cache: Optional[QueryResultCache] = (
            QueryResultCache(self.cache_size) if self.cache_size else None
        )
        # The shared execution core: columnar branch index (subscribed to
        # the database's add-hook) plus the (τ̂, |V'1|) posterior tables.
        self._core = ExecutionCore(
            database,
            estimator,
            max_tau=self.max_tau,
            error_class=ServingError,
            kernel_backend=self.kernel_backend,
        )
        self._core.ensure_index()
        #: Version of the offline model serving the answers.  0 for an
        #: engine built directly from a search; the incremental
        #: OfflineFitter bumps it on every refit so snapshots are ordered.
        self.model_version: int = 0
        # Cached answers are scoped to the database contents: adding graphs
        # must drop them or the cache would keep serving pre-add result
        # sets.  The batched hook clears once per bulk load.
        database.subscribe(self._on_graphs_added, batched=True)

    def _on_graphs_added(self, entries) -> None:
        if self.cache is not None:
            self.cache.clear()

    def __setstate__(self, state):
        # Mirror BranchInvertedIndex.__setstate__: the database sheds its
        # weakly held subscribers on pickling, so re-register the cache
        # invalidation hook in the unpickled copy.
        self.__dict__.update(state)
        self.database.subscribe(self._on_graphs_added, batched=True)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_search(cls, search, **kwargs) -> "BatchQueryEngine":
        """Build an engine from a fitted :class:`~repro.core.search.GBDASearch`."""
        if not getattr(search, "is_fitted", False):
            raise ServingError("the search must be fitted before building a serving engine")
        kwargs.setdefault("use_index_pruning", getattr(search, "use_index_pruning", False))
        return cls(
            search.database,
            search.estimator,
            max_tau=search.max_tau,
            **kwargs,
        )

    @property
    def _index(self) -> BranchInvertedIndex:
        """The columnar branch index owned by the execution core."""
        return self._core.ensure_index()

    @property
    def active_kernel_backend(self) -> str:
        """The *resolved* kernel backend name (``"numpy"`` or ``"native"``).

        May differ from the configured :attr:`kernel_backend` when that is
        ``"auto"``, or when a snapshot configured for the native backend is
        restored on a machine that cannot build it.
        """
        return self._core.ensure_index().store.backend

    # ------------------------------------------------------------------ #
    # posterior lookup tables (delegated to the execution core)
    # ------------------------------------------------------------------ #
    def posterior_vector(self, tau_hat: int, extended_order: int) -> np.ndarray:
        """Return the dense posterior vector for one ``(τ̂, |V'1|)`` pair.

        ``vector[ϕ] = Pr[GED <= τ̂ | GBD = ϕ]`` for ``ϕ in 0..|V'1|``;
        computed on first use via :meth:`GBDAEstimator.posterior_row` and
        cached in the shared execution core for the lifetime of the engine.
        """
        return self._core.posterior_vector(tau_hat, extended_order)

    def warm(self, tau_hats: Iterable[int], extended_orders: Optional[Iterable[int]] = None) -> int:
        """Pre-compute posterior vectors ahead of traffic; return the table count.

        ``extended_orders`` defaults to the distinct vertex counts present in
        the database — the exact orders hit by queries no larger than the
        largest stored graph; larger queries extend the tables lazily.
        """
        return self._core.warm(tau_hats, extended_orders)

    @property
    def num_cached_tables(self) -> int:
        """Number of ``(τ̂, |V'1|)`` posterior vectors currently materialised."""
        return len(self._core.tables)

    def tables_state(self) -> List[Tuple[int, int, List[float]]]:
        """Export the materialised posterior vectors (snapshot layer)."""
        return [
            (tau_hat, order, vector.tolist())
            for (tau_hat, order), vector in sorted(self._core.tables.items())
        ]

    def load_tables(self, state: Iterable[Tuple[int, int, Sequence[float]]]) -> None:
        """Restore posterior vectors exported by :meth:`tables_state`."""
        for tau_hat, order, values in state:
            self._core.tables[(int(tau_hat), int(order))] = np.asarray(
                values, dtype=np.float64
            )

    # ------------------------------------------------------------------ #
    # serving
    # ------------------------------------------------------------------ #
    def _validate_tau(self, tau_hat: int) -> None:
        # Single source of truth: the core raises ServingError (its
        # configured error_class) with the canonical message.
        self._core.validate_tau(tau_hat)

    def _cache_key(self, query_branches, query: SimilarityQuery, top_k: Optional[int] = None):
        """Cache key scoped to the current database revision and model version."""
        return query_cache_key(
            query_branches,
            query.tau_hat,
            query.gamma,
            revision=self.database.revision,
            model_version=self.model_version,
            top_k=top_k,
        )

    @staticmethod
    def _copy_answer(answer: QueryAnswer, elapsed: float) -> QueryAnswer:
        """Private copy of a cached answer (fresh latency, unshared containers)."""
        return dataclasses.replace(
            answer,
            scores=dict(answer.scores),
            ranking=None if answer.ranking is None else list(answer.ranking),
            elapsed_seconds=elapsed,
        )

    @property
    def _pruned_path(self) -> bool:
        """Whether filter-and-verify applies: ``keep_scores="all"`` needs every posterior."""
        return self.pruned_execution and self.keep_scores != "all"

    def query(self, query: SimilarityQuery) -> QueryAnswer:
        """Answer one similarity query (cache-backed, vectorized scoring).

        Queries carrying ``top_k`` are routed to :meth:`query_topk`; the
        rest run through the pruned filter-and-verify path when the engine
        configuration allows it (see ``pruned_execution``).
        """
        if query.top_k is not None:
            return self.query_topk(query)
        self._validate_tau(query.tau_hat)
        _QUERIES_SINGLE.inc()
        start = time.perf_counter()
        query_branches = query.branches()
        cache_key = None
        if self.cache is not None:
            cache_key = self._cache_key(query_branches, query)
            cached = self.cache.get(cache_key)
            if cached is not None:
                # Hand out a copy: the serve time of *this* lookup replaces
                # the cold-path latency, and the containers are duplicated so
                # a caller mutating its answer cannot corrupt the cache.
                _CACHE_HITS.inc()
                return self._copy_answer(cached, time.perf_counter() - start)
            _CACHE_MISSES.inc()
        if self._pruned_path:
            scored = self._core.execute_pruned(
                query, query_branches=query_branches, use_pruning=self.use_index_pruning
            )
        else:
            scored = self._core.execute(
                query, query_branches=query_branches, use_pruning=self.use_index_pruning
            )
        answer = self._answer_from_scores(scored, time.perf_counter() - start)
        _SECONDS_SINGLE.observe(answer.elapsed_seconds)
        if self.cache is not None:
            # Cache a private copy for the same reason.
            self.cache.put(cache_key, self._copy_answer(answer, answer.elapsed_seconds))
        return answer

    def query_topk(self, query: SimilarityQuery, k: Optional[int] = None) -> QueryAnswer:
        """Answer a top-k query: the ``k`` best graphs ranked by posterior.

        ``k`` defaults to ``query.top_k``.  The returned answer's
        :attr:`~repro.db.query.QueryAnswer.ranking` lists ``(graph id,
        posterior)`` pairs by descending posterior (ascending id under ties
        — deterministic), ``accepted_ids``/``scores`` cover the same graphs.
        Ranking uses bound-based early termination
        (:meth:`~repro.core.plan.ExecutionCore.execute_topk`) and is exactly
        the first ``k`` of the full γ=0 scoring.
        """
        if k is None:
            k = query.top_k
        if k is None:
            raise ServingError(
                "query_topk needs top_k on the query or an explicit k argument"
            )
        k = int(k)
        if k < 1:
            raise ServingError("top_k must be a positive integer")
        self._validate_tau(query.tau_hat)
        _QUERIES_TOPK.inc()
        start = time.perf_counter()
        query_branches = query.branches()
        cache_key = None
        if self.cache is not None:
            # Rankings are γ-independent, so the key canonicalises γ to 0.0
            # — queries differing only in γ share one cache entry.
            cache_key = query_cache_key(
                query_branches,
                query.tau_hat,
                0.0,
                revision=self.database.revision,
                model_version=self.model_version,
                top_k=k,
            )
            cached = self.cache.get(cache_key)
            if cached is not None:
                _CACHE_HITS.inc()
                return self._copy_answer(cached, time.perf_counter() - start)
            _CACHE_MISSES.inc()
        ranking = self._core.execute_topk(
            query, k, query_branches=query_branches, use_pruning=self.use_index_pruning
        )
        answer = QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(graph_id for graph_id, _score in ranking),
            scores=dict(ranking),
            elapsed_seconds=time.perf_counter() - start,
            ranking=ranking,
        )
        _SECONDS_TOPK.observe(answer.elapsed_seconds)
        if self.cache is not None:
            self.cache.put(cache_key, self._copy_answer(answer, answer.elapsed_seconds))
        return answer

    def query_batch(
        self, queries: Iterable[SimilarityQuery], *, trace=None
    ) -> List[QueryAnswer]:
        """Answer a batch of queries with true batched scoring, in input order.

        Cached queries are served from the LRU; the remainder go through the
        execution core's matrix path — one ``(Q, D)`` columnar intersection
        pass for the whole batch, then one shared lookup table per τ̂/γ
        group, reusing the lazily built ``(τ̂, |V'1|)`` tables across
        batches.  Answers are identical to calling :meth:`query` per query;
        each scored answer's latency is the batch scoring time amortised
        over the queries it was scored with.

        ``trace`` optionally carries a batch-level
        :class:`~repro.obs.trace.QueryTrace`: it is activated thread-locally
        for the duration of the call, so the engine's cache probe and the
        execution core's stage spans record into it — the micro-batcher
        grafts the result into each sampled query's waterfall.
        """
        queries = list(queries)
        if not queries:
            return []
        for query in queries:
            self._validate_tau(query.tau_hat)
        _QUERIES_BATCH.inc(len(queries))
        batch_started = time.perf_counter()
        with activated(trace):
            answers: List[Optional[QueryAnswer]] = [None] * len(queries)
            pending = []
            pending_branches = []
            pending_keys: List = []
            probe_started = time.perf_counter()
            for position, query in enumerate(queries):
                if query.top_k is not None:
                    # Top-k queries rank instead of thresholding; answer them
                    # through the dedicated (cache-aware) path.
                    answers[position] = self.query_topk(query)
                    continue
                if self.cache is None:
                    pending.append(position)
                    pending_branches.append(query.branches())
                    pending_keys.append(None)
                    continue
                start = time.perf_counter()
                query_branches = query.branches()
                cache_key = self._cache_key(query_branches, query)
                cached = self.cache.get(cache_key)
                if cached is not None:
                    _CACHE_HITS.inc()
                    answers[position] = self._copy_answer(
                        cached, time.perf_counter() - start
                    )
                    continue
                _CACHE_MISSES.inc()
                pending.append(position)
                pending_branches.append(query_branches)
                pending_keys.append(cache_key)
            if trace is not None:
                trace.add("cache_probe", time.perf_counter() - probe_started, depth=0)

            if pending:
                start = time.perf_counter()
                scored_list = self._core.execute_batch(
                    [queries[position] for position in pending],
                    query_branches=pending_branches,
                    use_pruning=self.use_index_pruning,
                    # keep_scores="all" needs every candidate's posterior; the
                    # other modes let the core classify through the boolean
                    # acceptance tables and materialise only accepted scores.
                    need="full" if self.keep_scores == "all" else "accepted",
                    pruned=self._pruned_path,
                )
                elapsed = time.perf_counter() - start
                if trace is not None:
                    trace.add("score", elapsed, depth=0)
                per_query_elapsed = elapsed / len(pending)
                for position, scored, cache_key in zip(pending, scored_list, pending_keys):
                    answer = self._answer_from_scores(scored, per_query_elapsed)
                    answers[position] = answer
                    if self.cache is not None:
                        self.cache.put(
                            cache_key, self._copy_answer(answer, per_query_elapsed)
                        )
        _SECONDS_BATCH.observe(time.perf_counter() - batch_started)
        return answers  # type: ignore[return-value]

    def _answer_from_scores(self, scored: CandidateScores, elapsed: float) -> QueryAnswer:
        """Assemble a :class:`QueryAnswer` from the core's dense results."""
        accepted_ids = scored.accepted_id_set()
        if self.keep_scores == "all":
            # With pruning, mirror the loop: pruned graphs are never scored.
            scores = scored.scores_dict("candidates")
        elif self.keep_scores == "accepted":
            scores = scored.scores_dict("accepted")
        else:
            scores = {}
        return QueryAnswer(
            method=self.method_name,
            accepted_ids=accepted_ids,
            scores=scores,
            elapsed_seconds=elapsed,
        )

    def search(self, query_graph, tau_hat: int, gamma: float = 0.9) -> QueryAnswer:
        """Convenience wrapper mirroring :meth:`GBDASearch.search`."""
        return self.query(SimilarityQuery(query_graph, tau_hat, gamma))

    # ------------------------------------------------------------------ #
    # shard-parallel scoring
    # ------------------------------------------------------------------ #
    def shard_engines(self, num_shards: int) -> List["BatchQueryEngine"]:
        """Split into engines over id-preserving database shards.

        Each returned engine scores one contiguous shard of the database
        (same estimator, same τ̂ limit, same pruning setting; result caches
        are disabled — merged answers are cached by the caller if at all).
        Because shard views keep global graph ids, the per-shard answers for
        one query merge back with :meth:`merge_answers` into exactly the
        full engine's answer.
        """
        shards = self.database.shard(num_shards)
        engines = []
        for shard in shards:
            engine = BatchQueryEngine(
                shard,
                self.estimator,
                max_tau=self.max_tau,
                cache_size=None,
                keep_scores=self.keep_scores,
                use_index_pruning=self.use_index_pruning,
                pruned_execution=self.pruned_execution,
                kernel_backend=self.kernel_backend,
            )
            engine.model_version = self.model_version
            engines.append(engine)
        return engines

    @staticmethod
    def merge_answers(partials: Sequence[QueryAnswer]) -> QueryAnswer:
        """Union per-shard answers for one query into the full-database answer.

        Acceptance is decided per graph, so the union of the shards'
        accepted sets (and score dicts) is exactly the unsharded answer.
        The merged latency is the slowest shard's — the critical path of a
        parallel execution.
        """
        if not partials:
            raise ServingError("cannot merge an empty list of partial answers")
        accepted: frozenset = frozenset()
        scores: Dict[int, float] = {}
        for partial in partials:
            accepted |= partial.accepted_ids
            scores.update(partial.scores)
        return QueryAnswer(
            method=partials[0].method,
            accepted_ids=accepted,
            scores=scores,
            elapsed_seconds=max(partial.elapsed_seconds for partial in partials),
        )

    @staticmethod
    def merge_topk_answers(partials: Sequence[QueryAnswer], k: int) -> QueryAnswer:
        """Merge per-shard top-k answers into the full-database top-k.

        Each shard's top-k is a superset of the shard's contribution to the
        global top-k, so re-ranking the union of the partial rankings by
        ``(-posterior, graph id)`` and keeping the first ``k`` reproduces
        exactly the unsharded ranking.
        """
        if not partials:
            raise ServingError("cannot merge an empty list of partial answers")
        merged: List[Tuple[int, float]] = []
        for partial in partials:
            merged.extend(partial.ranking or partial.scores.items())
        merged.sort(key=lambda item: (-item[1], item[0]))
        ranking = merged[: int(k)]
        return QueryAnswer(
            method=partials[0].method,
            accepted_ids=frozenset(graph_id for graph_id, _score in ranking),
            scores=dict(ranking),
            elapsed_seconds=max(partial.elapsed_seconds for partial in partials),
            ranking=ranking,
        )

    @staticmethod
    def merge_for(query: SimilarityQuery, partials: Sequence[QueryAnswer]) -> QueryAnswer:
        """Merge per-shard answers of one query, honouring its top-k mode."""
        if query.top_k is not None:
            return BatchQueryEngine.merge_topk_answers(partials, query.top_k)
        return BatchQueryEngine.merge_answers(partials)

    # ------------------------------------------------------------------ #
    # filter effectiveness
    # ------------------------------------------------------------------ #
    @property
    def prune_counters(self) -> Dict[str, float]:
        """Cumulative filter-effectiveness counters of the execution core.

        Keys: ``candidates_generated`` / ``candidates_pruned`` /
        ``candidates_verified`` (plus the cost model's ``dense_passes`` /
        ``sparse_passes`` and the derived ``prune_rate``) — see
        :class:`~repro.core.plan.FilterCounters`.
        """
        return self._core.filter_counters.as_dict()

    def query_sharded(self, query: SimilarityQuery, num_shards: int) -> QueryAnswer:
        """Score ``query`` shard-by-shard in process and merge (parity helper).

        The serving executor's ``"data-parallel"`` mode runs the same
        per-shard scoring across process workers; this in-process form
        exists for tests and diagnostics — it verifies shard decomposition
        without pool overhead.
        """
        partials = [engine.query(query) for engine in self.shard_engines(num_shards)]
        return self.merge_for(query, partials)

    # ------------------------------------------------------------------ #
    # persistence (delegates to repro.serving.snapshot)
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Serialize the fitted engine to a versioned on-disk snapshot."""
        from repro.serving.snapshot import save_engine

        save_engine(self, path)

    @classmethod
    def load(cls, path) -> "BatchQueryEngine":
        """Restore an engine from :meth:`save` output without re-fitting."""
        from repro.serving.snapshot import load_engine

        return load_engine(path)

    def __repr__(self) -> str:
        return (
            f"<BatchQueryEngine |D|={len(self.database)} max_tau={self.max_tau} "
            f"tables={self.num_cached_tables} cache={self.cache_size or 'off'}>"
        )
