"""LRU result cache for repeated/hot similarity queries.

Serving workloads are heavily skewed: the same query graph is typically
asked with the same thresholds many times (monitoring probes, popular
molecules, retry storms).  Because a GBDA answer is fully determined by the
triple *(canonical query branches, τ̂, γ)* — the branch multiset determines
both the GBDs against every database graph and the query's vertex count
(one branch per vertex) — answers can be cached on that key without ever
touching the query graph again.

The cache is a plain ``OrderedDict``-based LRU with hit/miss counters that
the serving statistics surface.  A lock makes it safe to share across the
thread-pool executor; the lock is dropped when pickling so engines remain
process-pool friendly.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.exceptions import ServingError

__all__ = ["QueryResultCache", "query_cache_key"]


def query_cache_key(
    query_branches: Counter,
    tau_hat: int,
    gamma: float,
    *,
    revision: int = 0,
    model_version: int = 0,
    top_k: Optional[int] = None,
) -> Tuple:
    """Build the canonical cache key of one similarity query.

    The branch multiset is canonicalised as a frozenset of
    ``(branch_key, count)`` items — order-free and hashable regardless of
    the label types — and combined with the two thresholds, the top-k mode
    (``None`` for thresholded answers), and the *state* the answer was
    computed against: the database ``revision`` and the offline
    ``model_version``.  A GBDA answer is only determined by the query triple
    *given* those two; keying them in means an engine copy that lost its
    add-hook (e.g. an unpickled process-pool worker whose database grew via
    ``add_many``) can never serve a stale pre-add result set — the key
    simply stops matching.
    """
    return (
        frozenset(query_branches.items()),
        int(tau_hat),
        float(gamma),
        None if top_k is None else int(top_k),
        int(revision),
        int(model_version),
    )


class QueryResultCache:
    """A bounded LRU mapping query keys to :class:`~repro.db.query.QueryAnswer`.

    Parameters
    ----------
    capacity:
        Maximum number of answers retained; the least-recently-used entry is
        evicted when the cache is full.  Must be positive — use ``None`` for
        the engine's ``cache_size`` to disable caching entirely.
    """

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ServingError("cache capacity must be a positive integer")
        self.capacity = int(capacity)
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------ #
    # lookup / insertion
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable):
        """Return the cached answer for ``key`` (None on miss); counts the access."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value) -> None:
        """Insert ``value`` under ``key``, evicting the LRU entry if needed."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (the hit/miss counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def reset_counters(self) -> None:
        """Zero the hit/miss counters (entries are preserved)."""
        with self._lock:
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, float]:
        """Return a *consistent* snapshot of counters and occupancy.

        Taken under the cache lock: the asyncio server scrapes this from
        the event loop while the thread-offloaded scoring path is
        hitting/evicting concurrently, so hits/misses/size must be read in
        one critical section — unlocked reads could pair a pre-increment
        ``hits`` with a post-increment ``misses`` and report an impossible
        hit rate.
        """
        with self._lock:
            hits, misses, size = self.hits, self.misses, len(self._entries)
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / total if total else 0.0,
            "size": size,
            "capacity": self.capacity,
        }

    # ------------------------------------------------------------------ #
    # pickling (the lock is not picklable; recreate it on load)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"<QueryResultCache size={len(self)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
