"""Versioned on-disk snapshots of a fitted serving engine.

A snapshot captures everything the online stage needs — the database graphs
with their pre-computed branch multisets, the GMM parameters of the GBD
prior (Λ2), the Jeffreys GED-prior grid (Λ3), and any posterior lookup
tables already materialised — so a server process can
:func:`load_engine` in milliseconds instead of re-running the offline
``fit()`` (pair sampling + EM + Jeffreys grid).

The payload is a plain dict of built-in types serialized with :mod:`pickle`
behind a ``(format, version)`` header; :func:`load_engine` refuses files
with an unknown format or a newer version with a clear
:class:`~repro.exceptions.SnapshotError`.  As with any pickle-based format,
only load snapshots you produced yourself or otherwise trust.

Crash safety
------------
:func:`save_engine` is atomic and torn-write-proof: the payload is written
to a temporary file in the destination directory, flushed and ``fsync``-ed,
then moved into place with ``os.replace`` — a crash mid-write leaves the
previous snapshot intact, never a half-written file under the final name.
Every snapshot ends in a fixed-size integrity footer (sha256 of the
payload + payload length + magic); :func:`load_engine` verifies it and
raises :class:`~repro.exceptions.SnapshotCorruptError` on truncation or
bit corruption *before* any of the payload is trusted.  Footer-less files
written by older builds still load (their integrity is unverified).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from collections import Counter
from pathlib import Path
from typing import Union

from repro.core.branches import branch_multiset
from repro.core.estimator import GBDAEstimator
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.db.database import GraphDatabase
from repro.exceptions import SnapshotCorruptError, SnapshotError
from repro.graphs.graph import Graph
from repro.serving.engine import BatchQueryEngine

__all__ = ["save_engine", "load_engine", "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION"]

SNAPSHOT_FORMAT = "repro.serving.engine-snapshot"
#: Format version 2 adds the offline ``model_version`` and the priors' seed
#: state (so a reloaded prior refits deterministically); version 3 adds the
#: engine's ``pruned_execution`` flag; version 4 adds the *configured*
#: ``kernel_backend`` (configured, not resolved — a snapshot built where the
#: native kernels compile must still load on a machine without a toolchain,
#: so ``"auto"`` re-resolves per host).  Older files are still readable —
#: the new fields default to 0 / seed 0 / pruned execution on / ``"auto"``.
SNAPSHOT_VERSION = 4

PathLike = Union[str, Path]

#: Integrity footer appended after the pickle payload:
#: ``sha256(payload) (32B) | payload length (8B big-endian) | magic (8B)``.
#: The footer sits *after* the pickle stream, so files carrying it remain
#: readable by any loader that simply unpickles from the front — and
#: version 1–4 payloads round-trip through it unchanged.
_FOOTER_MAGIC = b"RSNAPSUM"
_FOOTER_STRUCT = struct.Struct(">32sQ8s")


def _write_atomic(destination: Path, blob: bytes) -> None:
    """Write ``blob`` to ``destination`` atomically (temp + fsync + rename).

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename; the file and (best
    effort) its directory are fsync-ed first, so after a crash the name
    either refers to the complete new snapshot or the complete old one.
    """
    tmp = destination.with_name(f".{destination.name}.tmp.{os.getpid()}")
    try:
        with tmp.open("wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, destination)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    try:
        directory = os.open(str(destination.parent), os.O_RDONLY)
        try:
            os.fsync(directory)
        finally:
            os.close(directory)
    except OSError:  # pragma: no cover - platform without dir fsync
        pass


def _verified_payload(blob: bytes, source: Path) -> bytes:
    """Strip and verify the integrity footer; raise on corruption.

    Returns the pickle payload bytes.  Files without the footer (older
    builds) are returned whole — their integrity cannot be checked.
    """
    footer_size = _FOOTER_STRUCT.size
    if len(blob) < footer_size or blob[-8:] != _FOOTER_MAGIC:
        return blob  # legacy footer-less snapshot
    digest, length, _magic = _FOOTER_STRUCT.unpack(blob[-footer_size:])
    payload = blob[:-footer_size]
    if length != len(payload):
        raise SnapshotCorruptError(
            f"snapshot {source} is truncated: footer records {length} payload "
            f"bytes, file holds {len(payload)}"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise SnapshotCorruptError(
            f"snapshot {source} failed its sha256 integrity check "
            "(bit corruption or a torn write)"
        )
    return payload


def save_engine(engine: BatchQueryEngine, path: PathLike) -> Path:
    """Serialize a fitted :class:`BatchQueryEngine` to ``path``; return it."""
    graphs = []
    for entry in engine.database:
        graphs.append(
            {
                "name": entry.graph.name,
                "vertices": list(entry.graph.vertex_items()),
                "edges": [(u, v, label) for u, v, label in entry.graph.edges()],
                "branches": sorted(
                    ((key, count) for key, count in entry.branches.items()),
                    key=repr,
                ),
            }
        )
    estimator = engine.estimator
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "model_version": int(getattr(engine, "model_version", 0)),
        "database": {"name": engine.database.name, "graphs": graphs},
        "gbd_prior": estimator.gbd_prior.to_state(),
        "ged_prior": estimator.ged_prior.to_state(),
        "num_vertex_labels": estimator.num_vertex_labels,
        "num_edge_labels": estimator.num_edge_labels,
        "engine": {
            "max_tau": engine.max_tau,
            "cache_size": engine.cache_size,
            "keep_scores": engine.keep_scores,
            "use_index_pruning": engine.use_index_pruning,
            "pruned_execution": engine.pruned_execution,
            "kernel_backend": getattr(engine, "kernel_backend", "auto"),
        },
        "posterior_tables": engine.tables_state(),
    }
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    footer = _FOOTER_STRUCT.pack(
        hashlib.sha256(blob).digest(), len(blob), _FOOTER_MAGIC
    )
    _write_atomic(destination, blob + footer)
    return destination


def load_engine(path: PathLike) -> BatchQueryEngine:
    """Restore a :class:`BatchQueryEngine` from a snapshot without re-fitting."""
    source = Path(path)
    if not source.exists():
        raise SnapshotError(f"snapshot file {source} does not exist")
    blob = source.read_bytes()
    verified = _verified_payload(blob, source)
    try:
        payload = pickle.loads(verified)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError, IndexError) as exc:
        if len(verified) < len(blob):
            # The footer checked out but the payload will not unpickle —
            # only possible if the file was *written* torn.
            raise SnapshotCorruptError(
                f"snapshot file {source} passed its checksum but is unreadable"
            ) from exc
        raise SnapshotCorruptError(
            f"snapshot file {source} is corrupt or not a snapshot"
        ) from exc

    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"file {source} is not a serving-engine snapshot")
    version = payload.get("version")
    if not isinstance(version, int) or version < 1 or version > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported "
            f"(this build reads versions 1..{SNAPSHOT_VERSION})"
        )

    database = GraphDatabase(name=payload["database"]["name"])
    for record in payload["database"]["graphs"]:
        graph = Graph.from_dicts(
            dict(record["vertices"]),
            {(u, v): label for u, v, label in record["edges"]},
            name=record["name"],
        )
        branches = Counter(dict(record["branches"]))
        if sum(branches.values()) != graph.num_vertices:
            # The stored multiset is inconsistent with the graph (one branch
            # per vertex by construction) — fall back to re-extraction.
            branches = branch_multiset(graph)
        database.add(graph, branches=branches)

    gbd_prior = GBDPrior.from_state(payload["gbd_prior"])
    ged_prior = GEDPrior.from_state(payload["ged_prior"])
    estimator = GBDAEstimator(
        gbd_prior,
        ged_prior,
        payload["num_vertex_labels"],
        payload["num_edge_labels"],
    )
    config = payload["engine"]
    engine = BatchQueryEngine(
        database,
        estimator,
        max_tau=config["max_tau"],
        cache_size=config["cache_size"] or None,
        keep_scores=config["keep_scores"],
        use_index_pruning=config.get("use_index_pruning", False),
        pruned_execution=config.get("pruned_execution", True),
        kernel_backend=config.get("kernel_backend", "auto"),
    )
    engine.load_tables(payload["posterior_tables"])
    engine.model_version = int(payload.get("model_version", 0))
    return engine
