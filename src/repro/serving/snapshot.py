"""Versioned on-disk snapshots of a fitted serving engine.

A snapshot captures everything the online stage needs — the database graphs
with their pre-computed branch multisets, the GMM parameters of the GBD
prior (Λ2), the Jeffreys GED-prior grid (Λ3), and any posterior lookup
tables already materialised — so a server process can
:func:`load_engine` in milliseconds instead of re-running the offline
``fit()`` (pair sampling + EM + Jeffreys grid).

The payload is a plain dict of built-in types serialized with :mod:`pickle`
behind a ``(format, version)`` header; :func:`load_engine` refuses files
with an unknown format or a newer version with a clear
:class:`~repro.exceptions.SnapshotError`.  As with any pickle-based format,
only load snapshots you produced yourself or otherwise trust.
"""

from __future__ import annotations

import pickle
from collections import Counter
from pathlib import Path
from typing import Union

from repro.core.branches import branch_multiset
from repro.core.estimator import GBDAEstimator
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.db.database import GraphDatabase
from repro.exceptions import SnapshotError
from repro.graphs.graph import Graph
from repro.serving.engine import BatchQueryEngine

__all__ = ["save_engine", "load_engine", "SNAPSHOT_FORMAT", "SNAPSHOT_VERSION"]

SNAPSHOT_FORMAT = "repro.serving.engine-snapshot"
#: Format version 2 adds the offline ``model_version`` and the priors' seed
#: state (so a reloaded prior refits deterministically); version 3 adds the
#: engine's ``pruned_execution`` flag; version 4 adds the *configured*
#: ``kernel_backend`` (configured, not resolved — a snapshot built where the
#: native kernels compile must still load on a machine without a toolchain,
#: so ``"auto"`` re-resolves per host).  Older files are still readable —
#: the new fields default to 0 / seed 0 / pruned execution on / ``"auto"``.
SNAPSHOT_VERSION = 4

PathLike = Union[str, Path]


def save_engine(engine: BatchQueryEngine, path: PathLike) -> Path:
    """Serialize a fitted :class:`BatchQueryEngine` to ``path``; return it."""
    graphs = []
    for entry in engine.database:
        graphs.append(
            {
                "name": entry.graph.name,
                "vertices": list(entry.graph.vertex_items()),
                "edges": [(u, v, label) for u, v, label in entry.graph.edges()],
                "branches": sorted(
                    ((key, count) for key, count in entry.branches.items()),
                    key=repr,
                ),
            }
        )
    estimator = engine.estimator
    payload = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "model_version": int(getattr(engine, "model_version", 0)),
        "database": {"name": engine.database.name, "graphs": graphs},
        "gbd_prior": estimator.gbd_prior.to_state(),
        "ged_prior": estimator.ged_prior.to_state(),
        "num_vertex_labels": estimator.num_vertex_labels,
        "num_edge_labels": estimator.num_edge_labels,
        "engine": {
            "max_tau": engine.max_tau,
            "cache_size": engine.cache_size,
            "keep_scores": engine.keep_scores,
            "use_index_pruning": engine.use_index_pruning,
            "pruned_execution": engine.pruned_execution,
            "kernel_backend": getattr(engine, "kernel_backend", "auto"),
        },
        "posterior_tables": engine.tables_state(),
    }
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    with destination.open("wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return destination


def load_engine(path: PathLike) -> BatchQueryEngine:
    """Restore a :class:`BatchQueryEngine` from a snapshot without re-fitting."""
    source = Path(path)
    if not source.exists():
        raise SnapshotError(f"snapshot file {source} does not exist")
    try:
        with source.open("rb") as handle:
            payload = pickle.load(handle)
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
        raise SnapshotError(f"snapshot file {source} is corrupt or not a snapshot") from exc

    if not isinstance(payload, dict) or payload.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"file {source} is not a serving-engine snapshot")
    version = payload.get("version")
    if not isinstance(version, int) or version < 1 or version > SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported "
            f"(this build reads versions 1..{SNAPSHOT_VERSION})"
        )

    database = GraphDatabase(name=payload["database"]["name"])
    for record in payload["database"]["graphs"]:
        graph = Graph.from_dicts(
            dict(record["vertices"]),
            {(u, v): label for u, v, label in record["edges"]},
            name=record["name"],
        )
        branches = Counter(dict(record["branches"]))
        if sum(branches.values()) != graph.num_vertices:
            # The stored multiset is inconsistent with the graph (one branch
            # per vertex by construction) — fall back to re-extraction.
            branches = branch_multiset(graph)
        database.add(graph, branches=branches)

    gbd_prior = GBDPrior.from_state(payload["gbd_prior"])
    ged_prior = GEDPrior.from_state(payload["ged_prior"])
    estimator = GBDAEstimator(
        gbd_prior,
        ged_prior,
        payload["num_vertex_labels"],
        payload["num_edge_labels"],
    )
    config = payload["engine"]
    engine = BatchQueryEngine(
        database,
        estimator,
        max_tau=config["max_tau"],
        cache_size=config["cache_size"] or None,
        keep_scores=config["keep_scores"],
        use_index_pruning=config.get("use_index_pruning", False),
        pruned_execution=config.get("pruned_execution", True),
        kernel_backend=config.get("kernel_backend", "auto"),
    )
    engine.load_tables(payload["posterior_tables"])
    engine.model_version = int(payload.get("model_version", 0))
    return engine
