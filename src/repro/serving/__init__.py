"""repro.serving — batched, vectorized, persistent query serving for GBDA.

This subpackage turns a fitted :class:`~repro.core.search.GBDASearch` into a
deployable serving artifact:

* :class:`~repro.serving.engine.BatchQueryEngine` — answers batches of
  similarity queries with vectorized posterior-table lookups instead of the
  per-graph Python loop of ``GBDASearch.query`` (identical answers, several
  times the throughput);
* :mod:`~repro.serving.snapshot` — versioned ``save``/``load`` of a fitted
  engine (graphs + branch multisets + Λ2 GMM + Λ3 grid + posterior tables),
  so a server starts without re-running the offline stage;
* :class:`~repro.serving.cache.QueryResultCache` — an LRU for repeated/hot
  queries with hit/miss accounting;
* :class:`~repro.serving.executor.ServingExecutor` — shards a query stream
  across a thread/process pool and reports
  :class:`~repro.serving.stats.ServingStats` (QPS, latency percentiles).

Quickstart
----------
>>> from repro import GBDASearch, GraphDatabase, SimilarityQuery
>>> from repro.serving import BatchQueryEngine, ServingExecutor
>>> search = GBDASearch(database, max_tau=4).fit()          # doctest: +SKIP
>>> engine = BatchQueryEngine.from_search(search)           # doctest: +SKIP
>>> engine.save("engine.snapshot")                          # doctest: +SKIP
>>> engine = BatchQueryEngine.load("engine.snapshot")       # doctest: +SKIP
>>> answers = ServingExecutor(engine).map(queries)          # doctest: +SKIP
"""

from repro.serving.cache import QueryResultCache, query_cache_key
from repro.serving.engine import BatchQueryEngine
from repro.serving.executor import ServingExecutor
from repro.serving.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    load_engine,
    save_engine,
)
from repro.serving.stats import ServingStats

__all__ = [
    "BatchQueryEngine",
    "ServingExecutor",
    "ServingStats",
    "QueryResultCache",
    "query_cache_key",
    "save_engine",
    "load_engine",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
]
