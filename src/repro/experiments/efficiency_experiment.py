"""Figures 7, 8 and 9: online query efficiency of GBDA versus the competitors.

* Figure 7 — average query response time on the real datasets for GBDA with
  τ̂ ∈ {1, 5, 10} against LSAP, Greedy-Sort and Seriation.
* Figures 8/9 — average query time versus the number of vertices on the
  Syn-1 (scale-free) and Syn-2 (random) datasets for τ̂ ∈ {10, 20, 30}.

The expected *shape* (the paper's finding): GBDA is faster than every
competitor on the real datasets, and on synthetic graphs its advantage grows
with the graph size because its online cost is ``O(nd + τ̂³)`` versus the
competitors' ``O(n³)`` / ``O(n² log n²)`` / ``O(n·m²)``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.greedy_sort import GreedySortGED
from repro.baselines.lsap import LSAPGED
from repro.baselines.seriation import SeriationGED
from repro.datasets.registry import Dataset
from repro.evaluation.reporting import format_series
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.config import ExperimentOutput, ReproductionScale, SMALL_SCALE, dataset_suite

__all__ = ["run_figure7_time_real", "run_figure8_9_time_synthetic"]


def _baselines():
    return [LSAPGED(), GreedySortGED(), SeriationGED()]


def run_figure7_time_real(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    datasets: Optional[Sequence[Dataset]] = None,
    gbda_tau_values: Sequence[int] = (1, 5, 10),
    gamma: float = 0.9,
) -> ExperimentOutput:
    """Regenerate Figure 7: average query time per real dataset and method."""
    if datasets is None:
        datasets = dataset_suite(scale, include_synthetic=False)

    dataset_names: List[str] = []
    series: Dict[str, List[float]] = {}
    for dataset in datasets:
        dataset_names.append(dataset.name)
        runner = ExperimentRunner(dataset, max_queries=scale.max_queries)
        search = runner.gbda(
            max_tau=max(gbda_tau_values), num_prior_pairs=scale.prior_pairs, seed=scale.seed
        )
        for tau_hat in gbda_tau_values:
            label = f"GBDA(τ̂={tau_hat})"
            result = runner.run_gbda(search, tau_hat, gamma, method_label=label)
            series.setdefault(label, []).append(result.average_query_seconds)
        for estimator in _baselines():
            result = runner.run_baseline(estimator, max(gbda_tau_values))
            series.setdefault(estimator.method_name, []).append(result.average_query_seconds)

    rendered = format_series(
        "Figure 7 — average query time (seconds) on the real datasets",
        "dataset",
        dataset_names,
        series,
    )
    return ExperimentOutput(
        name="fig7", rendered=rendered, data={"datasets": dataset_names, "series": series}
    )


def run_figure8_9_time_synthetic(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    scale_free: bool = True,
    tau_values: Sequence[int] = (10, 20, 30),
    gamma: float = 0.9,
    family_size: Optional[int] = None,
) -> ExperimentOutput:
    """Regenerate Figure 8 (Syn-1) or Figure 9 (Syn-2): query time versus graph size."""
    from repro.datasets import make_syn1, make_syn2

    builder = make_syn1 if scale_free else make_syn2
    figure_name = "fig8" if scale_free else "fig9"
    family_size = family_size or scale.family_size

    sizes = list(scale.synthetic_sizes)
    series: Dict[str, List[float]] = {}
    for size in sizes:
        dataset = builder(
            sizes=(size,),
            families_per_size=1,
            family_size=family_size,
            queries_per_size=1,
            max_distance=min(max(tau_values), 30),
            seed=scale.seed,
        )
        runner = ExperimentRunner(dataset, max_queries=1)
        search = runner.gbda(
            max_tau=max(tau_values), num_prior_pairs=min(scale.prior_pairs, 100), seed=scale.seed
        )
        for tau_hat in tau_values:
            label = f"GBDA(τ̂={tau_hat})"
            result = runner.run_gbda(search, tau_hat, gamma, method_label=label)
            series.setdefault(label, []).append(result.average_query_seconds)
        for estimator in _baselines():
            result = runner.run_baseline(estimator, max(tau_values))
            series.setdefault(estimator.method_name, []).append(result.average_query_seconds)

    title = (
        "Figure 8 — query time vs graph size on Syn-1 (scale-free)"
        if scale_free
        else "Figure 9 — query time vs graph size on Syn-2 (random)"
    )
    rendered = format_series(title, "graph size", sizes, series)
    return ExperimentOutput(
        name=figure_name, rendered=rendered, data={"sizes": sizes, "series": series}
    )
