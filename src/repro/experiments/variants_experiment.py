"""Figures 22–29: GBDA versus its ablation variants GBDA-V1 and GBDA-V2.

The paper compares the F1-score of GBDA against

* **GBDA-V1** with sample sizes α ∈ {10, 50, 100} (Figures 22–25), and
* **GBDA-V2** with VGBD weights w ∈ {0.1, 0.5} (Figures 26–29),

on all four real datasets at γ = 0.9.  Expected shape: GBDA is at least as
good as both variants for small thresholds (τ̂ ≤ 5) and roughly ties for
larger thresholds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.variants import GBDAV1Search, GBDAV2Search
from repro.datasets.registry import Dataset
from repro.evaluation.reporting import format_series
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.config import ExperimentOutput, ReproductionScale, SMALL_SCALE

__all__ = ["run_variant_comparison"]


def run_variant_comparison(
    dataset: Dataset,
    scale: ReproductionScale = SMALL_SCALE,
    *,
    tau_values: Optional[Sequence[int]] = None,
    gamma: float = 0.9,
    alpha_values: Sequence[int] = (10, 50, 100),
    weight_values: Sequence[float] = (0.1, 0.5),
) -> ExperimentOutput:
    """F1 of GBDA vs GBDA-V1(α) and GBDA-V2(w) on one dataset (Figures 22–29)."""
    tau_values = list(tau_values if tau_values is not None else scale.real_tau_values)
    runner = ExperimentRunner(dataset, max_queries=scale.max_queries)

    # GBDA reference curve
    reference = runner.gbda(
        max_tau=max(tau_values), num_prior_pairs=scale.prior_pairs, seed=scale.seed
    )
    f1_series: Dict[str, List[float]] = {"GBDA": []}
    for tau_hat in tau_values:
        f1_series["GBDA"].append(runner.run_gbda(reference, tau_hat, gamma).f1)

    # GBDA-V1 with varying α
    for alpha in alpha_values:
        label = f"V1(α={alpha})"
        search = GBDAV1Search(
            runner.database,
            alpha=alpha,
            max_tau=max(tau_values),
            num_prior_pairs=scale.prior_pairs,
            seed=scale.seed,
        ).fit()
        f1_series[label] = [
            runner.run_gbda(search, tau_hat, gamma, method_label=label).f1 for tau_hat in tau_values
        ]

    # GBDA-V2 with varying weight
    for weight in weight_values:
        label = f"V2(w={weight})"
        search = GBDAV2Search(
            runner.database,
            weight=weight,
            max_tau=max(tau_values),
            num_prior_pairs=scale.prior_pairs,
            seed=scale.seed,
        ).fit()
        f1_series[label] = [
            runner.run_gbda(search, tau_hat, gamma, method_label=label).f1 for tau_hat in tau_values
        ]

    rendered = format_series(
        f"Figures 22–29 — F1 of GBDA vs variants on {dataset.name} (γ={gamma})",
        "τ̂",
        tau_values,
        f1_series,
    )
    return ExperimentOutput(
        name=f"variants_{dataset.name.lower()}",
        rendered=rendered,
        data={"tau_values": tau_values, "series": f1_series},
    )
