"""Tables IV & V and Figures 5 & 6: the offline pre-processing stage.

* Table IV prices the GBD-prior estimation (pair sampling + GMM fit).
* Table V prices the GED-prior estimation (Jeffreys prior over the grid).
* Figure 5 compares the sampled GBD histogram with the inferred mixture.
* Figure 6 visualises the Jeffreys prior matrix over (τ, |V'1|).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional, Sequence

from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.datasets.registry import Dataset
from repro.db.database import GraphDatabase
from repro.evaluation.reporting import Table, format_series
from repro.experiments.config import ExperimentOutput, ReproductionScale, SMALL_SCALE, dataset_suite

__all__ = [
    "run_table4_gbd_prior_costs",
    "run_table5_ged_prior_costs",
    "run_figure5_gbd_prior_fit",
    "run_figure6_ged_prior_matrix",
]

#: Offline costs published in Tables IV and V (for side-by-side reporting).
PAPER_TABLE4 = {
    "AIDS": "11.1 s / 0.06 kB",
    "Fingerprint": "7.5 s / 0.04 kB",
    "GREC": "20.6 s / 0.10 kB",
    "AASD": "232.4 s / 1.21 kB",
    "Syn-1": "3.8 h / 13.3 GB",
    "Syn-2": "3.2 h / 0.3 GB",
}
PAPER_TABLE5 = {
    "AIDS": "70.32 h / 1.5 kB",
    "Fingerprint": "16.91 h / 0.4 kB",
    "GREC": "15.40 h / 0.4 kB",
    "AASD": "69.16 h / 1.4 kB",
    "Syn-1": "6.31 h / 0.1 kB",
    "Syn-2": "6.31 h / 0.1 kB",
}


def run_table4_gbd_prior_costs(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    datasets: Optional[Sequence[Dataset]] = None,
) -> ExperimentOutput:
    """Regenerate Table IV: time/space cost of computing the GBD prior."""
    if datasets is None:
        datasets = dataset_suite(scale, include_synthetic=True)

    table = Table(
        "Table IV — costs of computing the GBD prior distribution",
        ["Data Set", "Pairs sampled", "Time (s)", "Space (bytes)", "Paper (full scale)"],
    )
    measurements: Dict[str, Dict[str, float]] = {}
    for dataset in datasets:
        prior = GBDPrior(num_components=3, num_pairs=scale.prior_pairs, seed=scale.seed)
        prior.fit(dataset.database_graphs)
        report = prior.report
        measurements[dataset.name] = {
            "pairs": report.num_pairs_sampled,
            "seconds": report.total_seconds,
            "bytes": report.table_bytes,
        }
        table.add_row(
            dataset.name,
            report.num_pairs_sampled,
            report.total_seconds,
            report.table_bytes,
            PAPER_TABLE4.get(dataset.name, "-"),
        )
    return ExperimentOutput(name="table4", rendered=table.render(), data=measurements)


def run_table5_ged_prior_costs(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    datasets: Optional[Sequence[Dataset]] = None,
    max_tau: int = 10,
) -> ExperimentOutput:
    """Regenerate Table V: time/space cost of computing the GED (Jeffreys) prior."""
    if datasets is None:
        datasets = dataset_suite(scale, include_synthetic=True)

    table = Table(
        "Table V — costs of computing the GED prior distribution",
        ["Data Set", "Distinct |V'1|", "Time (s)", "Space (bytes)", "Paper (full scale)"],
    )
    measurements: Dict[str, Dict[str, float]] = {}
    for dataset in datasets:
        database = GraphDatabase(dataset.database_graphs, name=dataset.name)
        orders = sorted({graph.num_vertices for graph in dataset.database_graphs})
        prior = GEDPrior(
            max_tau=max_tau,
            num_vertex_labels=database.num_vertex_labels,
            num_edge_labels=database.num_edge_labels,
        ).fit(orders)
        report = prior.report
        measurements[dataset.name] = {
            "orders": len(orders),
            "seconds": report.compute_seconds,
            "bytes": report.table_bytes,
        }
        table.add_row(
            dataset.name,
            len(orders),
            report.compute_seconds,
            report.table_bytes,
            PAPER_TABLE5.get(dataset.name, "-"),
        )
    return ExperimentOutput(name="table5", rendered=table.render(), data=measurements)


def run_figure5_gbd_prior_fit(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    dataset: Optional[Dataset] = None,
    max_value: int = 16,
) -> ExperimentOutput:
    """Regenerate Figure 5: sampled vs inferred GBD prior on the Fingerprint dataset."""
    if dataset is None:
        from repro.datasets import make_fingerprint_like

        dataset = make_fingerprint_like(
            num_templates=scale.real_templates, family_size=scale.family_size, seed=scale.seed
        )
    prior = GBDPrior(num_components=3, num_pairs=scale.prior_pairs, seed=scale.seed)
    prior.fit(dataset.database_graphs)

    samples = prior.report.sampled_gbds
    histogram = Counter(samples)
    total = max(len(samples), 1)
    x_values = list(range(0, max_value))
    sampled_series = [histogram.get(value, 0) / total for value in x_values]
    inferred_series = [prior.probability(value) for value in x_values]

    rendered = format_series(
        "Figure 5 — GBD prior on the Fingerprint dataset (sampled vs inferred)",
        "GBD",
        x_values,
        {"Sampled frequency": sampled_series, "Inferred (GMM)": inferred_series},
    )
    data = {"sampled": sampled_series, "inferred": inferred_series, "x": x_values}
    return ExperimentOutput(name="fig5", rendered=rendered, data=data)


def run_figure6_ged_prior_matrix(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    dataset: Optional[Dataset] = None,
    max_tau: int = 8,
    max_orders: int = 8,
) -> ExperimentOutput:
    """Regenerate Figure 6: the Jeffreys prior of GEDs as a (τ, |V'1|) matrix."""
    if dataset is None:
        from repro.datasets import make_fingerprint_like

        dataset = make_fingerprint_like(
            num_templates=scale.real_templates, family_size=scale.family_size, seed=scale.seed
        )
    database = GraphDatabase(dataset.database_graphs, name=dataset.name)
    orders = sorted({graph.num_vertices for graph in dataset.database_graphs})[:max_orders]
    prior = GEDPrior(
        max_tau=max_tau,
        num_vertex_labels=database.num_vertex_labels,
        num_edge_labels=database.num_edge_labels,
    ).fit(orders)

    table = Table(
        "Figure 6 — Jeffreys prior Pr[GED = τ] per extended order |V'1|",
        ["τ \\ |V'1|"] + [str(order) for order in orders],
    )
    matrix: Dict[int, Sequence[float]] = {}
    for tau in range(max_tau + 1):
        row = [prior.probability(tau, order) for order in orders]
        matrix[tau] = row
        table.add_row(tau, *row)
    return ExperimentOutput(name="fig6", rendered=table.render(), data={"orders": orders, "matrix": matrix})
