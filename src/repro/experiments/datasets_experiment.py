"""Table III: statistics of the experimental datasets."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.datasets.registry import Dataset
from repro.db.catalog import DatabaseCatalog
from repro.db.database import GraphDatabase
from repro.evaluation.reporting import Table
from repro.experiments.config import ExperimentOutput, ReproductionScale, SMALL_SCALE, dataset_suite

__all__ = ["run_table3"]

#: The statistics published in Table III of the paper, for side-by-side output.
PAPER_TABLE3 = {
    "AIDS": {"|D|": 1896, "|Q|": 100, "Vm": 95, "Em": 103, "d": 2.1, "Scale-free": "Yes"},
    "Fingerprint": {"|D|": 2159, "|Q|": 114, "Vm": 26, "Em": 26, "d": 1.7, "Scale-free": "Yes"},
    "GREC": {"|D|": 1045, "|Q|": 55, "Vm": 24, "Em": 29, "d": 2.1, "Scale-free": "Yes"},
    "AASD": {"|D|": 37995, "|Q|": 100, "Vm": 93, "Em": 99, "d": 2.1, "Scale-free": "Yes"},
    "Syn-1": {"|D|": 3430, "|Q|": 70, "Vm": 100_000, "Em": 1_000_000, "d": 9.6, "Scale-free": "Yes"},
    "Syn-2": {"|D|": 3430, "|Q|": 70, "Vm": 100_000, "Em": 1_000_000, "d": 9.4, "Scale-free": "No"},
}


def run_table3(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    datasets: Optional[Sequence[Dataset]] = None,
    include_synthetic: bool = True,
) -> ExperimentOutput:
    """Regenerate Table III (dataset statistics) for the generated datasets.

    Both the measured statistics of the look-alike datasets and the values
    published in the paper are emitted so the two regimes can be compared at
    a glance.
    """
    if datasets is None:
        datasets = dataset_suite(scale, include_synthetic=include_synthetic)

    measured = Table(
        "Table III (measured on the generated look-alike datasets)",
        ["Data Set", "|D|", "|Q|", "Vm", "Em", "d", "Scale-free"],
    )
    rows = {}
    for dataset in datasets:
        database = GraphDatabase(dataset.database_graphs, name=dataset.name)
        catalog = DatabaseCatalog.from_database(
            database, queries=dataset.query_graphs, scale_free=dataset.scale_free
        )
        row = catalog.as_row()
        rows[dataset.name] = row
        measured.add_mapping(row)

    published = Table(
        "Table III (as published in the paper)",
        ["Data Set", "|D|", "|Q|", "Vm", "Em", "d", "Scale-free"],
    )
    for name, row in PAPER_TABLE3.items():
        published.add_mapping({"Data Set": name, **row})

    rendered = measured.render() + "\n\n" + published.render()
    return ExperimentOutput(name="table3", rendered=rendered, data={"measured": rows, "paper": PAPER_TABLE3})
