"""Experiment configuration: reproduction scales and the dataset suite.

The paper's experiments use databases of up to 38 000 graphs and synthetic
graphs of up to 100 000 vertices on a 32-core/128 GB machine; regenerating
them verbatim on a laptop (or in CI) is not realistic.  The drivers therefore
take a :class:`ReproductionScale` that fixes the knobs — dataset sizes,
thresholds, prior-sample counts — and two presets are provided:

* :data:`SMALL_SCALE` — seconds-per-experiment; used by the benchmark suite.
* :data:`DEFAULT_SCALE` — minutes-per-experiment; closer to the paper's
  regime while remaining laptop-feasible.

Every knob can also be overridden per call, so the full-size runs only need
a machine with enough memory and patience, not code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.datasets import (
    make_aasd_like,
    make_aids_like,
    make_fingerprint_like,
    make_grec_like,
    make_syn1,
    make_syn2,
)
from repro.datasets.registry import Dataset

__all__ = ["ReproductionScale", "SMALL_SCALE", "DEFAULT_SCALE", "ExperimentOutput", "dataset_suite"]


@dataclass(frozen=True)
class ReproductionScale:
    """Size knobs shared by all experiment drivers."""

    #: templates per real-data look-alike dataset (the paper's |D| is reached
    #: by scaling this up; family_size graphs are derived from each template).
    real_templates: int
    #: members per known-GED family.
    family_size: int
    #: synthetic (Syn-1/Syn-2) graph sizes to sweep (paper: 1K..100K).
    synthetic_sizes: Sequence[int]
    #: query graphs evaluated per dataset (paper: 5 % of the dataset).
    max_queries: int
    #: graph pairs sampled for the GBD prior (paper: 100 000).
    prior_pairs: int
    #: similarity thresholds swept on real datasets (paper: 1..10).
    real_tau_values: Sequence[int]
    #: similarity thresholds swept on synthetic datasets (paper: 10..30).
    synthetic_tau_values: Sequence[int]
    #: probability thresholds swept (paper: 0.7, 0.8, 0.9 / 0.6, 0.7, 0.8).
    gamma_values: Sequence[float]
    #: cap on the vertex count of real-data look-alike graphs (None = the
    #: published Table III maxima).  The cap exists because the cubic LSAP
    #: baseline dominates benchmark wall-clock on large molecules.
    real_max_vertices: int = 0
    #: random seed shared by every generator.
    seed: int = 42


SMALL_SCALE = ReproductionScale(
    real_templates=6,
    family_size=6,
    synthetic_sizes=(30, 60, 100),
    max_queries=3,
    prior_pairs=300,
    real_tau_values=(1, 3, 5, 7, 10),
    synthetic_tau_values=(10, 20, 30),
    gamma_values=(0.7, 0.8, 0.9),
    real_max_vertices=30,
    seed=42,
)

DEFAULT_SCALE = ReproductionScale(
    real_templates=30,
    family_size=12,
    synthetic_sizes=(100, 200, 500, 1000, 2000),
    max_queries=10,
    prior_pairs=5000,
    real_tau_values=tuple(range(1, 11)),
    synthetic_tau_values=(10, 15, 20, 25, 30),
    gamma_values=(0.7, 0.8, 0.9),
    real_max_vertices=0,
    seed=42,
)


@dataclass
class ExperimentOutput:
    """Structured result of one experiment driver.

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"table3"`` or ``"fig7"``).
    rendered:
        The plain-text table(s)/series regenerating the paper artefact.
    data:
        Machine-readable results keyed by whatever the driver finds natural
        (rows, series, measured values) so tests can assert on shapes.
    """

    name: str
    rendered: str
    data: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        return self.rendered


def _cap(published_max: int, cap: int) -> int:
    """Apply the scale's vertex cap to a dataset's published maximum size."""
    if cap <= 0:
        return published_max
    return min(published_max, cap)


def dataset_suite(scale: ReproductionScale, *, include_synthetic: bool = False) -> List[Dataset]:
    """Build the four real-data look-alike datasets (optionally plus Syn-1/Syn-2)."""
    cap = scale.real_max_vertices
    real = [
        make_aids_like(
            num_templates=scale.real_templates,
            family_size=scale.family_size,
            max_atoms=_cap(95, cap),
            mode_atoms=min(25, _cap(95, cap)),
            seed=scale.seed,
        ),
        make_fingerprint_like(
            num_templates=scale.real_templates,
            family_size=scale.family_size,
            max_vertices=_cap(26, cap),
            mode_vertices=min(12, _cap(26, cap)),
            seed=scale.seed + 1,
        ),
        make_grec_like(
            num_templates=scale.real_templates,
            family_size=scale.family_size,
            max_vertices=_cap(24, cap),
            mode_vertices=min(12, _cap(24, cap)),
            seed=scale.seed + 2,
        ),
        make_aasd_like(
            num_templates=scale.real_templates * 2,
            family_size=scale.family_size,
            max_atoms=_cap(93, cap),
            mode_atoms=min(30, _cap(93, cap)),
            seed=scale.seed + 3,
        ),
    ]
    if not include_synthetic:
        return real
    synthetic = [
        make_syn1(sizes=scale.synthetic_sizes, families_per_size=1,
                  family_size=scale.family_size, seed=scale.seed + 4),
        make_syn2(sizes=scale.synthetic_sizes, families_per_size=1,
                  family_size=scale.family_size, seed=scale.seed + 5),
    ]
    return real + synthetic
