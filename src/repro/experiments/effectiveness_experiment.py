"""Figures 10–21 and 31–42: effectiveness (precision / recall / F1).

* Figures 10–13: precision versus τ̂ on AIDS / Fingerprint / GREC / AASD.
* Figures 14–17: recall versus τ̂.
* Figures 18–21: F1-score versus τ̂.
* Figures 31–42 (Appendix J): precision/recall/F1 versus graph size on Syn-1
  for τ̂ ∈ {15, 20, 25, 30} and γ ∈ {0.6, 0.7, 0.8}.

Each driver produces one rendered series per metric; the benchmark suite
prints them and asserts the headline shapes (LSAP recall = 1, GBDA F1
competitive, robustness to γ).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.baselines.greedy_sort import GreedySortGED
from repro.baselines.lsap import LSAPGED
from repro.baselines.seriation import SeriationGED
from repro.datasets.registry import Dataset
from repro.evaluation.reporting import format_series
from repro.evaluation.runner import ExperimentRunner, MethodResult
from repro.experiments.config import ExperimentOutput, ReproductionScale, SMALL_SCALE

__all__ = ["run_effectiveness_real", "run_effectiveness_synthetic"]

_METRICS = ("precision", "recall", "f1")


def _collect_series(
    results: Sequence[MethodResult], x_count: int
) -> Dict[str, Dict[str, List[float]]]:
    """Re-organise a flat result list into ``{metric: {method: [values per x]}}``."""
    series: Dict[str, Dict[str, List[float]]] = {metric: {} for metric in _METRICS}
    for result in results:
        for metric in _METRICS:
            series[metric].setdefault(result.method, [])
    for result in results:
        for metric in _METRICS:
            series[metric][result.method].append(getattr(result, metric))
    for metric in _METRICS:
        for method, values in series[metric].items():
            if len(values) != x_count:
                raise ValueError(
                    f"series {method!r} has {len(values)} points, expected {x_count}"
                )
    return series


def run_effectiveness_real(
    dataset: Dataset,
    scale: ReproductionScale = SMALL_SCALE,
    *,
    tau_values: Optional[Sequence[int]] = None,
    gamma_values: Optional[Sequence[float]] = None,
    figure_numbers: str = "10-21",
) -> ExperimentOutput:
    """Precision / recall / F1 versus τ̂ on one real dataset (Figures 10–21)."""
    tau_values = list(tau_values if tau_values is not None else scale.real_tau_values)
    gamma_values = list(gamma_values if gamma_values is not None else scale.gamma_values)

    runner = ExperimentRunner(dataset, max_queries=scale.max_queries)
    results = runner.effectiveness_sweep(
        tau_values,
        gamma_values,
        baselines=[LSAPGED(), GreedySortGED(), SeriationGED()],
        num_prior_pairs=scale.prior_pairs,
        seed=scale.seed,
    )
    series = _collect_series(results, len(tau_values))

    sections = []
    for metric in _METRICS:
        sections.append(
            format_series(
                f"Figures {figure_numbers} — {metric} vs τ̂ on {dataset.name}",
                "τ̂",
                tau_values,
                series[metric],
            )
        )
    rendered = "\n\n".join(sections)
    return ExperimentOutput(
        name=f"effectiveness_{dataset.name.lower()}",
        rendered=rendered,
        data={"tau_values": tau_values, "series": series},
    )


def run_effectiveness_synthetic(
    scale: ReproductionScale = SMALL_SCALE,
    *,
    tau_hat: int = 20,
    gamma_values: Sequence[float] = (0.6, 0.7, 0.8),
    family_size: Optional[int] = None,
) -> ExperimentOutput:
    """Precision / recall / F1 versus graph size on Syn-1 (Figures 31–42)."""
    from repro.datasets import make_syn1

    family_size = family_size or scale.family_size
    sizes = list(scale.synthetic_sizes)

    per_metric: Dict[str, Dict[str, List[float]]] = {metric: {} for metric in _METRICS}
    for size in sizes:
        dataset = make_syn1(
            sizes=(size,),
            families_per_size=1,
            family_size=family_size,
            queries_per_size=1,
            max_distance=min(tau_hat, 30),
            seed=scale.seed,
        )
        runner = ExperimentRunner(dataset, max_queries=1)
        search = runner.gbda(
            max_tau=tau_hat, num_prior_pairs=min(scale.prior_pairs, 100), seed=scale.seed
        )
        results: List[MethodResult] = []
        for gamma in gamma_values:
            results.append(
                runner.run_gbda(search, tau_hat, gamma, method_label=f"GBDA(γ={gamma:.2f})")
            )
        for estimator in (LSAPGED(), GreedySortGED(), SeriationGED()):
            results.append(runner.run_baseline(estimator, tau_hat))
        for result in results:
            for metric in _METRICS:
                per_metric[metric].setdefault(result.method, []).append(getattr(result, metric))

    sections = []
    for metric in _METRICS:
        sections.append(
            format_series(
                f"Figures 31–42 — {metric} vs graph size on Syn-1 (τ̂={tau_hat})",
                "graph size",
                sizes,
                per_metric[metric],
            )
        )
    rendered = "\n\n".join(sections)
    return ExperimentOutput(
        name="effectiveness_syn1",
        rendered=rendered,
        data={"sizes": sizes, "tau_hat": tau_hat, "series": per_metric},
    )
