"""Experiment drivers that regenerate every table and figure of the paper.

Each module exposes one or more ``run_*`` functions returning an
:class:`~repro.experiments.config.ExperimentOutput` containing structured
results plus a rendered plain-text table/series.  The benchmark harness
(``benchmarks/``) calls these drivers, times their online kernels with
pytest-benchmark, and writes the rendered output to ``results/`` so that the
paper-versus-measured comparison in ``EXPERIMENTS.md`` can be refreshed with
a single pytest run.
"""

from repro.experiments.config import (
    ExperimentOutput,
    ReproductionScale,
    SMALL_SCALE,
    DEFAULT_SCALE,
    dataset_suite,
)
from repro.experiments.datasets_experiment import run_table3
from repro.experiments.offline_experiment import (
    run_table4_gbd_prior_costs,
    run_table5_ged_prior_costs,
    run_figure5_gbd_prior_fit,
    run_figure6_ged_prior_matrix,
)
from repro.experiments.efficiency_experiment import (
    run_figure7_time_real,
    run_figure8_9_time_synthetic,
)
from repro.experiments.effectiveness_experiment import (
    run_effectiveness_real,
    run_effectiveness_synthetic,
)
from repro.experiments.variants_experiment import run_variant_comparison
from repro.experiments.ablations import run_design_ablations

__all__ = [
    "ExperimentOutput",
    "ReproductionScale",
    "SMALL_SCALE",
    "DEFAULT_SCALE",
    "dataset_suite",
    "run_table3",
    "run_table4_gbd_prior_costs",
    "run_table5_ged_prior_costs",
    "run_figure5_gbd_prior_fit",
    "run_figure6_ged_prior_matrix",
    "run_figure7_time_real",
    "run_figure8_9_time_synthetic",
    "run_effectiveness_real",
    "run_effectiveness_synthetic",
    "run_variant_comparison",
    "run_design_ablations",
]
