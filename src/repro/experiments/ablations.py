"""Design-choice ablations (not a paper figure; DESIGN.md experiment E-A).

Two implementation decisions of this reproduction are worth pricing:

* **branch-index pruning** — Algorithm 1 scores every database graph; the
  ``GBD > 2 τ̂`` structural bound can skip hopeless candidates first.  The
  ablation measures its effect on query time and verifies that it never
  changes the answer set.
* **Λ1 model caching** — the Section VI-B observation that the conditional
  model depends only on ``|V'1|`` lets one model instance serve every
  database graph of the same size; the ablation compares a cached run with a
  deliberately cache-busted run.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.core.model import BranchEditModel
from repro.core.search import GBDASearch
from repro.datasets.registry import Dataset
from repro.db.query import SimilarityQuery
from repro.evaluation.reporting import Table
from repro.evaluation.runner import ExperimentRunner
from repro.experiments.config import ExperimentOutput, ReproductionScale, SMALL_SCALE

__all__ = ["run_design_ablations"]


def _time_queries(search: GBDASearch, dataset: Dataset, tau_hat: int, gamma: float, max_queries: int):
    """Run the workload once and return (seconds per query, list of answer sets)."""
    answers = []
    start = time.perf_counter()
    for query in dataset.query_graphs[:max_queries]:
        answers.append(search.query(SimilarityQuery(query, tau_hat, gamma)).answer.accepted_ids)
    elapsed = time.perf_counter() - start
    return elapsed / max(len(answers), 1), answers


def run_design_ablations(
    dataset: Optional[Dataset] = None,
    scale: ReproductionScale = SMALL_SCALE,
    *,
    tau_hat: int = 5,
    gamma: float = 0.8,
) -> ExperimentOutput:
    """Measure the effect of index pruning and Λ1 caching on the online stage."""
    if dataset is None:
        from repro.datasets import make_fingerprint_like

        dataset = make_fingerprint_like(
            num_templates=scale.real_templates, family_size=scale.family_size, seed=scale.seed
        )
    runner = ExperimentRunner(dataset, max_queries=scale.max_queries)

    # --- index pruning on/off ------------------------------------------------
    plain = GBDASearch(
        runner.database, max_tau=tau_hat, num_prior_pairs=scale.prior_pairs, seed=scale.seed
    ).fit()
    pruned = GBDASearch(
        runner.database,
        max_tau=tau_hat,
        num_prior_pairs=scale.prior_pairs,
        seed=scale.seed,
        use_index_pruning=True,
    ).fit()
    plain_time, plain_answers = _time_queries(plain, dataset, tau_hat, gamma, scale.max_queries)
    pruned_time, pruned_answers = _time_queries(pruned, dataset, tau_hat, gamma, scale.max_queries)
    answers_identical = plain_answers == pruned_answers

    # --- Λ1 caching on/off ---------------------------------------------------
    orders = sorted({graph.num_vertices for graph in dataset.database_graphs})[:4]
    lv = runner.database.num_vertex_labels
    le = runner.database.num_edge_labels

    start = time.perf_counter()
    cached_model: Dict[int, BranchEditModel] = {}
    for _repeat in range(3):
        for order in orders:
            model = cached_model.setdefault(order, BranchEditModel(order, lv, le))
            model.conditional_row(tau_hat)
    cached_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _repeat in range(3):
        for order in orders:
            BranchEditModel(order, lv, le).conditional_row(tau_hat)
    uncached_seconds = time.perf_counter() - start

    table = Table(
        f"Design ablations on {dataset.name} (τ̂={tau_hat}, γ={gamma})",
        ["Configuration", "Avg query time (s)", "Answers unchanged"],
    )
    table.add_row("Algorithm 1 (no pruning)", plain_time, True)
    table.add_row("+ branch-index pruning", pruned_time, answers_identical)
    table.add_row("Λ1 cached across graphs (3 sweeps)", cached_seconds, True)
    table.add_row("Λ1 rebuilt per graph (3 sweeps)", uncached_seconds, True)

    data = {
        "plain_time": plain_time,
        "pruned_time": pruned_time,
        "answers_identical": answers_identical,
        "cached_seconds": cached_seconds,
        "uncached_seconds": uncached_seconds,
    }
    return ExperimentOutput(name="ablations", rendered=table.render(), data=data)
