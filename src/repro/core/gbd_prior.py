"""Offline GBD prior ``Λ2 = Pr[GBD = ϕ]`` (Section V-B).

The prior is estimated once per database in the offline stage:

1. sample ``N`` graph pairs from the database (Step 1.1);
2. compute the GBD of every sampled pair (Step 1.2, ``O(N · n d)``);
3. fit a Gaussian Mixture Model to the sampled GBDs (Step 1.3);
4. pre-compute ``Pr[GBD = ϕ]`` for every feasible ϕ with the continuity
   correction of Equation (14) (Step 1.4).

The resulting table is ``O(n)`` in size, matching the paper's space bound.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import PriorNotFittedError
from repro.graphs.graph import Graph
from repro.stats.gmm import GaussianMixtureModel
from repro.stats.sampling import decode_rng_state, encode_rng_state, sample_pairs

RandomState = Union[int, random.Random, None]

__all__ = ["GBDPrior", "GBDPriorReport"]

#: Probability floor returned for values outside the observed/support range.
#: Using a tiny positive value instead of exact zero keeps the posterior of
#: Equation (4) finite when an unusual query produces an out-of-range GBD.
_PROBABILITY_FLOOR = 1e-12


@dataclass
class GBDPriorReport:
    """Book-keeping produced while fitting the prior (feeds Table IV)."""

    num_pairs_sampled: int = 0
    num_components: int = 0
    fit_seconds: float = 0.0
    gbd_seconds: float = 0.0
    table_entries: int = 0
    sampled_gbds: List[int] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """Total offline wall-clock time spent on the GBD prior."""
        return self.fit_seconds + self.gbd_seconds

    @property
    def table_bytes(self) -> int:
        """Approximate storage of the pre-computed table (8 bytes per entry)."""
        return 8 * self.table_entries


class GBDPrior:
    """Prior distribution of GBD values across a graph population.

    Parameters
    ----------
    num_components:
        Number of GMM components ``K`` (user-defined, default 3).
    num_pairs:
        Number of graph pairs ``N`` to sample for the fit.
    seed:
        Seed controlling both the pair sampling and the GMM initialisation.
    backend:
        EM backend forwarded to :class:`GaussianMixtureModel` (``"auto"``,
        ``"numpy"`` or ``"python"``).
    num_workers:
        Worker processes for the pair-GBD sampling loop (Step 1.2);
        ``None``/1 keeps the serial path.  Results are identical for any
        worker count (deterministic chunk merge).
    """

    def __init__(
        self,
        num_components: int = 3,
        num_pairs: int = 10_000,
        *,
        seed: RandomState = 0,
        backend: str = "auto",
        num_workers: Optional[int] = None,
    ) -> None:
        self.num_components = num_components
        self.num_pairs = num_pairs
        self.backend = backend
        self.num_workers = num_workers
        self._seed = seed
        self._mixture: Optional[GaussianMixtureModel] = None
        self._table: Dict[int, float] = {}
        self._max_value: int = 0
        self.report = GBDPriorReport()

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(self, graphs: Sequence[Graph]) -> "GBDPrior":
        """Run the four offline steps of Section V-C.1 on ``graphs``."""
        # Imported here (not at module top) to avoid the import cycle
        # repro.core.gbd_prior -> repro.offline -> fitter -> gbd_prior.
        from repro.offline.parallel import compute_pair_gbds

        rng = self._seed if isinstance(self._seed, random.Random) else random.Random(self._seed)
        pairs = sample_pairs(list(range(len(graphs))), self.num_pairs, seed=rng)

        start = time.perf_counter()
        gbds = compute_pair_gbds(graphs, pairs, num_workers=self.num_workers)
        gbd_seconds = time.perf_counter() - start

        return self.fit_from_samples(
            gbds,
            max_value=max((g.num_vertices for g in graphs), default=0),
            gbd_seconds=gbd_seconds,
        )

    def fit_from_samples(
        self,
        gbd_samples: Sequence[int],
        *,
        max_value: Optional[int] = None,
        gbd_seconds: float = 0.0,
    ) -> "GBDPrior":
        """Fit the prior directly from pre-computed GBD samples.

        Exposed separately so the benchmark harness can decouple the GBD
        sampling cost (Table IV's dominant term) from the GMM fit, and so
        callers with externally computed distances can reuse the prior.
        """
        samples = [int(v) for v in gbd_samples]
        if not samples:
            raise PriorNotFittedError("cannot fit the GBD prior without samples")
        self._max_value = max(max(samples), max_value or 0)

        start = time.perf_counter()
        mixture = GaussianMixtureModel(self.num_components, seed=self._seed, backend=self.backend)
        mixture.fit(samples)
        self._mixture = mixture

        # Pre-compute Pr[GBD = ϕ] for every feasible ϕ (Step 1.4).
        table = {}
        for value in range(self._max_value + 1):
            table[value] = max(mixture.discrete_probability(value), _PROBABILITY_FLOOR)
        self._table = table
        fit_seconds = time.perf_counter() - start

        self.report = GBDPriorReport(
            num_pairs_sampled=len(samples),
            num_components=len(mixture.components),
            fit_seconds=fit_seconds,
            gbd_seconds=gbd_seconds,
            table_entries=len(table),
            sampled_gbds=samples,
        )
        return self

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` (or :meth:`fit_from_samples`) has been called."""
        return self._mixture is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise PriorNotFittedError("GBDPrior.fit must be called before querying probabilities")

    def probability(self, phi: int) -> float:
        """Return ``Pr[GBD = ϕ]`` from the pre-computed table (Equation 14)."""
        self._require_fitted()
        if phi < 0:
            return _PROBABILITY_FLOOR
        if phi in self._table:
            return self._table[phi]
        # Values beyond the pre-computed range can appear when the query graph
        # is larger than everything sampled offline; integrate on demand.
        return max(self._mixture.discrete_probability(phi), _PROBABILITY_FLOOR)

    def density(self, value: float) -> float:
        """Return the fitted mixture density ``f(value)`` (Equation 13)."""
        self._require_fitted()
        return self._mixture.pdf(value)

    def table(self) -> Dict[int, float]:
        """Return a copy of the pre-computed ``{ϕ: Pr[GBD = ϕ]}`` table."""
        self._require_fitted()
        return dict(self._table)

    @property
    def mixture(self) -> GaussianMixtureModel:
        """The underlying fitted Gaussian mixture."""
        self._require_fitted()
        return self._mixture

    # ------------------------------------------------------------------ #
    # serialization (used by the serving snapshot layer)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Return the fitted prior as a plain dict (GMM parameters + table).

        The sampling seed is part of the state: a prior restored with
        :meth:`from_state` refits on the same pair-sampling and GMM streams
        as the original — previously the seed was dropped and a reloaded
        prior silently refitted with the default ``seed=0``.
        """
        self._require_fitted()
        if self._seed is None or isinstance(self._seed, int):
            seed_state = {"seed": self._seed}
        else:
            # A live random.Random was supplied; persist its current state.
            seed_state = {"seed": None, "seed_rng_state": encode_rng_state(self._seed)}
        return {
            "num_components": self.num_components,
            "num_pairs": self.num_pairs,
            "mixture": self._mixture.to_state(),
            "table": dict(self._table),
            "max_value": self._max_value,
            "backend": self.backend,
            **seed_state,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GBDPrior":
        """Rebuild a fitted prior from :meth:`to_state` output without re-fitting."""
        if state.get("seed_rng_state") is not None:
            seed: RandomState = decode_rng_state(state["seed_rng_state"])
        else:
            seed = state.get("seed", 0)
        prior = cls(
            int(state["num_components"]),
            int(state["num_pairs"]),
            seed=seed,
            backend=state.get("backend", "auto"),
        )
        prior._mixture = GaussianMixtureModel.from_state(state["mixture"])
        prior._table = {int(phi): float(p) for phi, p in state["table"].items()}
        prior._max_value = int(state["max_value"])
        prior.report = GBDPriorReport(
            num_pairs_sampled=0,
            num_components=len(prior._mixture.components),
            table_entries=len(prior._table),
        )
        return prior

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"<GBDPrior K={self.num_components} N={self.num_pairs} ({state})>"
