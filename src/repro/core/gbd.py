"""Graph Branch Distance (Definition 4) and its weighted variant (Equation 26).

``GBD(G1, G2) = max(|V1|, |V2|) - |B_G1 ∩ B_G2|`` where the intersection is a
multiset intersection over isomorphic branches.  The variant distance VGBD
used by the GBDA-V2 ablation replaces the intersection size with
``w * |B_G1 ∩ B_G2|`` for a user-chosen weight ``w``.

Both distances run in ``O(nd)`` time: branch extraction visits each incident
edge of each vertex once, and the multiset intersection is a counting merge.
The functions also accept pre-computed branch multisets so the graph
database can amortise branch extraction across many queries, matching the
paper's assumption that "all auxiliary data structures ... are pre-computed
and stored with graphs".
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.graphs.graph import Graph
from repro.core.branches import branch_multiset


def branch_intersection_size(counter_a: Counter, counter_b: Counter) -> int:
    """Return the size of the multiset intersection of two branch multisets."""
    if len(counter_b) < len(counter_a):
        counter_a, counter_b = counter_b, counter_a
    return sum(min(count, counter_b[key]) for key, count in counter_a.items() if key in counter_b)


def graph_branch_distance(
    g1: Graph,
    g2: Graph,
    *,
    branches1: Optional[Counter] = None,
    branches2: Optional[Counter] = None,
) -> int:
    """Compute ``GBD(G1, G2)`` per Definition 4.

    Parameters
    ----------
    g1, g2:
        The two graphs to compare.
    branches1, branches2:
        Optional pre-computed branch multisets (as returned by
        :func:`repro.core.branches.branch_multiset`).  Passing them skips
        branch extraction, which is how the database layer amortises the
        offline cost across queries.
    """
    counter_a = branch_multiset(g1) if branches1 is None else branches1
    counter_b = branch_multiset(g2) if branches2 is None else branches2
    intersection = branch_intersection_size(counter_a, counter_b)
    return max(g1.num_vertices, g2.num_vertices) - intersection


def variant_graph_branch_distance(
    g1: Graph,
    g2: Graph,
    weight: float,
    *,
    branches1: Optional[Counter] = None,
    branches2: Optional[Counter] = None,
) -> float:
    """Compute the weighted variant ``VGBD`` of Equation (26).

    ``VGBD(G1, G2) = max(|V1|, |V2|) - w * |B_G1 ∩ B_G2|`` — used only by the
    GBDA-V2 ablation of Section VII-D.
    """
    if weight < 0:
        raise ValueError("VGBD weight must be non-negative")
    counter_a = branch_multiset(g1) if branches1 is None else branches1
    counter_b = branch_multiset(g2) if branches2 is None else branches2
    intersection = branch_intersection_size(counter_a, counter_b)
    return max(g1.num_vertices, g2.num_vertices) - weight * intersection


def gbd_upper_bound_on_ged(gbd_value: int) -> int:
    """Trivial relationship used for sanity checks: ``GED >= GBD / 2``.

    A single edit operation changes at most two branches (the paper uses this
    fact when bounding the range of ``phi`` given ``GED = tau``), therefore
    ``GBD <= 2 * GED`` and the returned value is a lower bound on GED implied
    by an observed GBD.
    """
    return (gbd_value + 1) // 2
