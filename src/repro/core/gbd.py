"""Graph Branch Distance (Definition 4) and its weighted variant (Equation 26).

``GBD(G1, G2) = max(|V1|, |V2|) - |B_G1 ∩ B_G2|`` where the intersection is a
multiset intersection over isomorphic branches.  The variant distance VGBD
used by the GBDA-V2 ablation replaces the intersection size with
``w * |B_G1 ∩ B_G2|`` for a user-chosen weight ``w``.

Both distances run in ``O(nd)`` time: branch extraction visits each incident
edge of each vertex once, and the multiset intersection is a counting merge.
The functions also accept pre-computed branch multisets so the graph
database can amortise branch extraction across many queries, matching the
paper's assumption that "all auxiliary data structures ... are pre-computed
and stored with graphs".
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Union

import numpy as np

from repro.graphs.graph import Graph
from repro.core.branches import branch_multiset


def branch_intersection_size(counter_a: Counter, counter_b: Counter) -> int:
    """Return the size of the multiset intersection of two branch multisets."""
    if len(counter_b) < len(counter_a):
        counter_a, counter_b = counter_b, counter_a
    return sum(min(count, counter_b[key]) for key, count in counter_a.items() if key in counter_b)


def graph_branch_distance(
    g1: Graph,
    g2: Graph,
    *,
    branches1: Optional[Counter] = None,
    branches2: Optional[Counter] = None,
) -> int:
    """Compute ``GBD(G1, G2)`` per Definition 4.

    Parameters
    ----------
    g1, g2:
        The two graphs to compare.
    branches1, branches2:
        Optional pre-computed branch multisets (as returned by
        :func:`repro.core.branches.branch_multiset`).  Passing them skips
        branch extraction, which is how the database layer amortises the
        offline cost across queries.
    """
    counter_a = branch_multiset(g1) if branches1 is None else branches1
    counter_b = branch_multiset(g2) if branches2 is None else branches2
    intersection = branch_intersection_size(counter_a, counter_b)
    return max(g1.num_vertices, g2.num_vertices) - intersection


def variant_graph_branch_distance(
    g1: Graph,
    g2: Graph,
    weight: float,
    *,
    branches1: Optional[Counter] = None,
    branches2: Optional[Counter] = None,
) -> float:
    """Compute the weighted variant ``VGBD`` of Equation (26).

    ``VGBD(G1, G2) = max(|V1|, |V2|) - w * |B_G1 ∩ B_G2|`` — used only by the
    GBDA-V2 ablation of Section VII-D.
    """
    if weight < 0:
        raise ValueError("VGBD weight must be non-negative")
    counter_a = branch_multiset(g1) if branches1 is None else branches1
    counter_b = branch_multiset(g2) if branches2 is None else branches2
    intersection = branch_intersection_size(counter_a, counter_b)
    return max(g1.num_vertices, g2.num_vertices) - weight * intersection


def ged_lower_bound(gbd_value: Union[int, np.ndarray]) -> Union[int, np.ndarray]:
    """The branch bound ``GED >= ceil(GBD / 2)``, for scalars or whole arrays.

    A single edit operation changes at most two branches (it relabels one
    vertex, or touches one edge and hence its two endpoints' branches), so
    ``GBD <= 2 * GED``.  This is the single source of truth for the bound
    math shared by the pairwise branch filter
    (:func:`repro.baselines.branch_filter.branch_lower_bound`) and the
    vectorized pruned execution paths.
    """
    if isinstance(gbd_value, np.ndarray):
        return (gbd_value + 1) // 2
    return (int(gbd_value) + 1) // 2


def max_gbd_for_ged(tau: int) -> int:
    """Largest GBD compatible with ``GED <= τ``: the contrapositive of the bound.

    ``GBD > 2 τ`` certifies ``GED > τ`` (see :func:`ged_lower_bound`), so a
    similarity search with threshold ``τ̂`` may discard any graph whose GBD
    — or whose GBD *lower bound* — exceeds ``2 τ̂`` without scoring it.
    """
    return 2 * int(tau)


def gbd_upper_bound_on_ged(gbd_value: int) -> int:
    """Legacy name of :func:`ged_lower_bound` (kept for API compatibility)."""
    return ged_lower_bound(gbd_value)
