"""The branch-edit probabilistic model: Λ1 and the Fisher score Z.

This module assembles the conditional distribution

``Λ1(τ, ϕ) = Pr[GBD = ϕ | GED = τ] = Σ_x Ω1 Σ_m Ω2 Σ_r Ω3 Ω4``

(Equation 8) together with its τ-derivative (Equation 35), which feeds the
Jeffreys prior of the GED (Section V-C).

The model only depends on three integers: the extended order
``v = |V'1| = max(|V1|, |V2|)`` and the label alphabet sizes ``|LV|`` and
``|LE|`` (through the branch-type count ``D``).  A :class:`BranchEditModel`
is therefore constructed once per (dataset, query) configuration and caches
conditional rows across database graphs — the same observation the paper
uses in Section VI-B to amortise the ``Σ Ω2`` / ``Σ Ω3·Ω4`` computations
across thresholds ``τ < τ̂``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Dict, List

from repro.core.combinatorics import binomial
from repro.core.omegas import (
    branch_type_count,
    omega1,
    omega1_dtau,
    omega2,
    omega2_dtau,
    omega3,
    omega4,
)

__all__ = ["BranchEditModel"]


class BranchEditModel:
    """Conditional model ``Pr[GBD | GED]`` for extended graphs of a fixed order.

    Parameters
    ----------
    extended_order:
        ``|V'1| = max(|V1|, |V2|)`` — the number of vertices of both extended
        graphs.
    num_vertex_labels, num_edge_labels:
        Sizes of the label alphabets ``|LV|`` and ``|LE|`` of the dataset,
        which determine the branch-type count ``D`` (Equation 33).
    exact:
        When true (default) conditional probabilities are returned as exact
        fractions converted to float at the end; no approximation is applied.
    """

    def __init__(self, extended_order: int, num_vertex_labels: int, num_edge_labels: int) -> None:
        if extended_order < 1:
            raise ValueError("extended order must be at least 1")
        self.extended_order = int(extended_order)
        self.num_vertex_labels = int(num_vertex_labels)
        self.num_edge_labels = int(num_edge_labels)
        self.branch_types = branch_type_count(
            self.extended_order, self.num_vertex_labels, self.num_edge_labels
        )

    # ------------------------------------------------------------------ #
    # Λ1 — conditional probability of GBD given GED
    # ------------------------------------------------------------------ #
    def lambda1(self, tau: int, phi: int) -> float:
        """Return ``Λ1(τ, ϕ) = Pr[GBD = ϕ | GED = τ]`` (Equation 8)."""
        return self._lambda1_value(tau, phi)

    def conditional_row(self, tau: int) -> List[float]:
        """Return the whole conditional distribution ``[Pr[GBD = ϕ | GED = τ]]``.

        The row covers ``ϕ ∈ [0, min(2τ, v)]`` — one edit operation changes
        at most two branches, so larger ϕ values have zero probability.
        """
        max_phi = self.max_phi(tau)
        return [self.lambda1(tau, phi) for phi in range(max_phi + 1)]

    def max_phi(self, tau: int) -> int:
        """Largest GBD value with non-zero probability given ``GED = τ``."""
        return min(2 * tau, self.extended_order)

    @lru_cache(maxsize=None)
    def _lambda1_value(self, tau: int, phi: int) -> float:
        """Float evaluation of Equation (8).

        The Ω factors are computed exactly (rational arithmetic inside
        :mod:`repro.core.omegas`) and only the final accumulation is carried
        out in floating point: all terms are non-negative, so the summation
        is numerically stable and accurate to machine precision, while the
        exact accumulation of products of large-denominator fractions would
        dominate the online cost for rich label alphabets.
        """
        if tau < 0 or phi < 0:
            return 0.0
        if tau == 0:
            return 1.0 if phi == 0 else 0.0
        if phi > self.max_phi(tau):
            return 0.0
        v = self.extended_order
        total = 0.0
        for x in range(tau + 1):
            weight_x = float(omega1(x, tau, v))
            if weight_x == 0.0:
                continue
            inner_m = 0.0
            for m in range(min(2 * (tau - x), v) + 1):
                weight_m = float(omega2(m, x, tau, v))
                if weight_m == 0.0:
                    continue
                inner_r = 0.0
                for r in range(min(x + m, v) + 1):
                    weight_r = float(omega4(x, r, m, v))
                    if weight_r == 0.0:
                        continue
                    inner_r += float(omega3(r, phi, self.branch_types)) * weight_r
                inner_m += weight_m * inner_r
            total += weight_x * inner_m
        return total

    # ------------------------------------------------------------------ #
    # dΛ1/dτ and the Fisher score Z — used by the Jeffreys prior
    # ------------------------------------------------------------------ #
    @lru_cache(maxsize=None)
    def _lambda1_dtau_value(self, tau: int, phi: int) -> float:
        """Float assembly of Equation (35)'s numerator ``dΛ1/dτ``."""
        if tau <= 0 or phi < 0 or phi > self.max_phi(max(tau, 1)):
            return 0.0
        v = self.extended_order
        total = 0.0
        for x in range(tau + 1):
            weight_x = float(omega1(x, tau, v))
            weight_x_dtau = float(omega1_dtau(x, tau, v))
            if weight_x == 0.0 and weight_x_dtau == 0.0:
                continue
            inner_m = 0.0
            inner_m_dtau = 0.0
            for m in range(min(2 * (tau - x), v) + 1):
                weight_m = float(omega2(m, x, tau, v))
                weight_m_dtau = float(omega2_dtau(m, x, tau, v))
                if weight_m == 0.0 and weight_m_dtau == 0.0:
                    continue
                inner_r = 0.0
                for r in range(min(x + m, v) + 1):
                    weight_r = float(omega4(x, r, m, v))
                    if weight_r == 0.0:
                        continue
                    inner_r += float(omega3(r, phi, self.branch_types)) * weight_r
                inner_m += weight_m * inner_r
                inner_m_dtau += weight_m_dtau * inner_r
            total += weight_x * inner_m_dtau + weight_x_dtau * inner_m
        return total

    def score(self, tau: int, phi: int) -> float:
        """Fisher score ``Z(τ, ϕ) = d/dτ log Pr[GBD = ϕ | GED = τ]`` (Equation 17).

        Falls back to a discrete log-difference when the analytic derivative
        degenerates (Λ1 = 0 at the evaluation point), which only happens on
        the boundary of the support.
        """
        value = self._lambda1_value(tau, phi)
        if value > 0.0:
            return self._lambda1_dtau_value(tau, phi) / value
        current = self.lambda1(tau, phi)
        nxt = self.lambda1(tau + 1, phi)
        if current > 0 and nxt > 0:
            return math.log(nxt) - math.log(current)
        return 0.0

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def conditional_table(self, max_tau: int) -> Dict[int, List[float]]:
        """Return ``{τ: conditional row}`` for all ``τ ∈ [0, max_tau]``."""
        return {tau: self.conditional_row(tau) for tau in range(max_tau + 1)}

    def expected_gbd(self, tau: int) -> float:
        """Expected GBD under ``GED = τ`` — useful for sanity checks and docs."""
        row = self.conditional_row(tau)
        return sum(phi * probability for phi, probability in enumerate(row))

    def editable_elements(self) -> int:
        """Number of editable elements of the extended graph: ``v + C(v, 2)``."""
        return self.extended_order + binomial(self.extended_order, 2)

    def __repr__(self) -> str:
        return (
            f"<BranchEditModel v={self.extended_order} "
            f"|LV|={self.num_vertex_labels} |LE|={self.num_edge_labels} D={self.branch_types}>"
        )
