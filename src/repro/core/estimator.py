"""Posterior estimator ``Pr[GED <= τ̂ | GBD = ϕ]`` (Equations 3–7, Step 3 of Algorithm 1).

The estimator combines the three Λ terms:

* ``Λ1(τ, ϕ)`` — the conditional branch-edit model (:class:`BranchEditModel`);
* ``Λ2(ϕ)``    — the GBD prior (:class:`~repro.core.gbd_prior.GBDPrior`);
* ``Λ3(τ)``    — the GED Jeffreys prior (:class:`~repro.core.ged_prior.GEDPrior`);

and evaluates

``Φ = Σ_{τ=0}^{τ̂} Λ1(Q', G'; τ, ϕ) · Λ3(Q', G'; τ) / Λ2(Q', G'; ϕ)``.

A per-extended-order cache of :class:`BranchEditModel` instances gives the
``O(τ̂³)`` online cost of Section VI-B: for each distinct ``|V'1|`` the Λ1
columns are computed once and re-used across all database graphs of that
size and all thresholds ``τ <= τ̂``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.core.model import BranchEditModel
from repro.exceptions import EstimationError

__all__ = ["GBDAEstimator"]


class GBDAEstimator:
    """Posterior probability estimator for the GBDA similarity filter.

    Parameters
    ----------
    gbd_prior:
        A fitted :class:`GBDPrior` (Λ2).
    ged_prior:
        A fitted :class:`GEDPrior` (Λ3).
    num_vertex_labels, num_edge_labels:
        Label alphabet sizes of the dataset; they parameterise Λ1.
    """

    def __init__(
        self,
        gbd_prior: GBDPrior,
        ged_prior: GEDPrior,
        num_vertex_labels: int,
        num_edge_labels: int,
    ) -> None:
        if not gbd_prior.is_fitted:
            raise EstimationError("the GBD prior must be fitted before building the estimator")
        if not ged_prior.is_fitted:
            raise EstimationError("the GED prior must be fitted before building the estimator")
        self.gbd_prior = gbd_prior
        self.ged_prior = ged_prior
        self.num_vertex_labels = int(num_vertex_labels)
        self.num_edge_labels = int(num_edge_labels)
        self._models: Dict[int, BranchEditModel] = {}

    # ------------------------------------------------------------------ #
    # model cache
    # ------------------------------------------------------------------ #
    def model_for(self, extended_order: int) -> BranchEditModel:
        """Return (and cache) the conditional model for one extended order."""
        order = max(int(extended_order), 1)
        model = self._models.get(order)
        if model is None:
            model = BranchEditModel(order, self.num_vertex_labels, self.num_edge_labels)
            self._models[order] = model
        return model

    # ------------------------------------------------------------------ #
    # posterior
    # ------------------------------------------------------------------ #
    def posterior(self, gbd_value: int, tau_hat: int, extended_order: int) -> float:
        """Return ``Φ = Pr[GED <= τ̂ | GBD = ϕ]`` for one graph pair.

        The returned value is clamped to ``[0, 1]``: the three Λ terms are
        estimated independently (Λ2 by a GMM, Λ3 by a Jeffreys prior), so
        their Bayes combination is not guaranteed to be normalised — the
        paper applies it as a score against the probability threshold γ, and
        so do we.
        """
        if tau_hat < 0:
            raise EstimationError("the similarity threshold must be non-negative")
        if gbd_value < 0:
            raise EstimationError("GBD values are non-negative by definition")

        model = self.model_for(extended_order)
        prior_gbd = self.gbd_prior.probability(gbd_value)
        total = 0.0
        for tau in range(tau_hat + 1):
            conditional = model.lambda1(tau, gbd_value)
            if conditional <= 0.0:
                continue
            prior_ged = self.ged_prior.probability(tau, extended_order)
            total += conditional * prior_ged / prior_gbd
        return min(max(total, 0.0), 1.0)

    def posterior_profile(self, gbd_value: int, tau_hat: int, extended_order: int) -> List[float]:
        """Return the per-τ contributions ``Λ1·Λ3/Λ2`` for τ in ``0..τ̂``.

        Useful for diagnostics and for the worked example of the paper
        (Example 7 lists the individual summands).

        The contributions are reconciled with :meth:`posterior`'s ``[0, 1]``
        clamp: the cumulative sum of the returned list is clamped to 1, so
        ``sum(posterior_profile(...))`` agrees with ``posterior(...)`` (to
        floating-point round-off) even when the raw Bayes summands total
        more than 1 — previously the unclamped summands silently disagreed
        with the clamped posterior.
        """
        if tau_hat < 0:
            raise EstimationError("the similarity threshold must be non-negative")
        if gbd_value < 0:
            raise EstimationError("GBD values are non-negative by definition")
        model = self.model_for(extended_order)
        prior_gbd = self.gbd_prior.probability(gbd_value)
        contributions = []
        cumulative = 0.0
        for tau in range(tau_hat + 1):
            conditional = model.lambda1(tau, gbd_value)
            prior_ged = self.ged_prior.probability(tau, extended_order)
            raw = conditional * prior_ged / prior_gbd if conditional > 0 else 0.0
            # Each entry is the increment of the clamped running sum, so the
            # profile telescopes to min(Σ raw, 1) — bit-identical to the
            # value posterior() returns (same accumulation order).
            before = cumulative
            cumulative += raw
            contributions.append(min(cumulative, 1.0) - min(before, 1.0))
        return contributions

    def posterior_row(self, tau_hat: int, extended_order: int) -> List[float]:
        """Return ``[Φ(ϕ, τ̂, |V'1|) for ϕ in 0..|V'1|]`` for one extended order.

        ``GBD(Q, G) = max(|V1|, |V2|) - |B_Q ∩ B_G|`` never exceeds the
        extended order, so the row covers every reachable GBD value.  Each
        entry is produced by :meth:`posterior`, so tabulated scores are
        bit-identical to the per-pair path.
        """
        if tau_hat < 0:
            raise EstimationError("the similarity threshold must be non-negative")
        order = max(int(extended_order), 1)
        return [self.posterior(gbd, tau_hat, order) for gbd in range(order + 1)]

    def posterior_table(
        self, tau_hat: int, extended_orders: Iterable[int]
    ) -> Dict[int, List[float]]:
        """Return dense posterior lookup rows ``{|V'1|: posterior_row}``.

        The posterior ``Φ = Pr[GED <= τ̂ | GBD = ϕ]`` depends only on the
        integer triple ``(ϕ, τ̂, |V'1|)``, so for a fixed τ̂ the whole
        database can be scored by table lookup instead of per-pair
        evaluation — this is what the batched serving engine pre-computes
        (lazily, per τ̂) to vectorize the online stage.
        """
        orders = sorted({max(int(order), 1) for order in extended_orders})
        return {order: self.posterior_row(tau_hat, order) for order in orders}

    def accepts(
        self,
        gbd_value: int,
        tau_hat: int,
        extended_order: int,
        gamma: float,
        *,
        posterior: Optional[float] = None,
    ) -> bool:
        """Step 4 of Algorithm 1: accept the graph when ``Φ >= γ``."""
        if not 0.0 <= gamma <= 1.0:
            raise EstimationError("the probability threshold γ must lie in [0, 1]")
        value = self.posterior(gbd_value, tau_hat, extended_order) if posterior is None else posterior
        return value >= gamma

    def __repr__(self) -> str:
        return (
            f"<GBDAEstimator |LV|={self.num_vertex_labels} |LE|={self.num_edge_labels} "
            f"cached_orders={sorted(self._models)}>"
        )
