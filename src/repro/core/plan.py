"""Unified query-execution core for the online stage of Algorithm 1.

Steps 2–4 of Algorithm 1 (GBD computation, posterior lookup, γ-thresholding)
used to be implemented twice — once as the per-pair Python loop of
:meth:`~repro.core.search.GBDASearch.query` and again, vectorized, in the
serving engine's ``_score``.  :class:`ExecutionCore` implements them exactly
once:

* **candidate generation** — all GBDs come from the columnar branch index
  (:meth:`~repro.db.index.BranchInvertedIndex.gbd_array` /
  :meth:`~repro.db.index.BranchInvertedIndex.gbd_matrix`), with the optional
  branch lower-bound filter (``GBD > 2 τ̂`` ⇒ ``GED > τ̂``) applied as a
  mask instead of a separate scan — the pruned path no longer recomputes
  any GBD;
* **posterior lookup** — two interchangeable, bit-identical strategies,
  chosen per call by estimated cost.  *Tables*: dense ``(τ̂, |V'1|)``
  posterior vectors from :meth:`GBDAEstimator.posterior_row` (each entry is
  the scalar :meth:`GBDAEstimator.posterior`), stacked into order-indexed
  lookup matrices plus, per ``(τ̂, γ)``, boolean acceptance matrices — one
  fancy index classifies a whole GBD matrix.  *Direct*: evaluate only the
  distinct ``(GBD, |V'1|)`` pairs actually present (cached across queries)
  — never worse than the per-pair loop, which keeps one-shot workloads
  with large τ̂ and few graphs fast while serving workloads amortise the
  tables;
* **γ-thresholding** — one vectorized comparison (or the acceptance matrix
  directly).

:meth:`execute` scores one query and returns dense per-graph results;
:meth:`execute_batch` scores a τ̂/γ-sorted batch through one ``(Q, D)``
intersection pass and contiguous group views, optionally skipping the full
posterior materialisation when the caller only needs accepted graphs and
their scores (``need="accepted"`` — the serving engine's default mode).

On top of these sits the **pruned filter-and-verify layer**
(:meth:`execute_pruned` and the ``pruned=True`` batch mode): the ``(τ̂,
γ)`` acceptance rule is inverted into a per-order max-acceptable-GBD
threshold (:meth:`acceptance_threshold`), candidates whose GBD *lower
bound* — computed from per-graph norms in O(1) each — exceeds it are
eliminated before any postings traversal, and a selectivity cost model
picks dense or sparse index-driven verification for the survivors.
:meth:`execute_topk` ranks by posterior with bound-based early
termination.  All pruned paths return bit-identical accepted sets and
scores; :class:`FilterCounters` tracks their effectiveness.

Thread-safety: queries may run concurrently from threads sharing one engine
(the serving executor's ``"thread"`` mode).  The lookup-table caches are
published as immutable ``(array, frozenset-of-filled-orders)`` pairs swapped
atomically under a writer lock, so a reader either sees a table that
provably contains every row it needs or takes the lock and fills the gap —
never a torn or half-filled table.

Because the core reads positions and *global* graph ids from the store, it
works unchanged over id-preserving shard views
(:meth:`~repro.db.database.GraphDatabase.shard`): per-shard
:class:`CandidateScores` speak the global id space and merge by union.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.estimator import GBDAEstimator
from repro.core.gbd import max_gbd_for_ged
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import SimilarityQuery
from repro.exceptions import SearchError
from repro.obs.metrics import DEFAULT_RATIO_BUCKETS, get_registry
from repro.obs.trace import active_trace

__all__ = ["CandidateScores", "ExecutionCore", "FilterCounters"]

# Metric children are bound once at import time (see repro.obs.metrics) and
# deliberately *not* stored on core instances — cores are pickled into pool
# workers, whose own import of this module rebinds against the worker-local
# registry; the executor folds worker deltas back via MetricsRegistry.merge.
_STAGE_SECONDS = get_registry().histogram(
    "repro_stage_seconds", "Execution-core stage durations in seconds", ("stage",)
)
_PLAN_CHOICES = get_registry().counter(
    "repro_plan_choices_total", "Verification plans picked by the selectivity cost model", ("plan",)
)
_PLAN_SELECTIVITY = get_registry().histogram(
    "repro_plan_selectivity",
    "Fraction of generated candidates actually verified, per scoring pass",
    ("plan",),
    buckets=DEFAULT_RATIO_BUCKETS,
)
_STAGE_SCORE_DENSE = _STAGE_SECONDS.labels(stage="score_dense")
_STAGE_BOUND_FILTER = _STAGE_SECONDS.labels(stage="bound_filter")
_STAGE_VERIFY = _STAGE_SECONDS.labels(stage="verify")
_STAGE_BATCH_SCORE = _STAGE_SECONDS.labels(stage="batch_score")
_STAGE_TOPK = _STAGE_SECONDS.labels(stage="topk")
_PLAN_DENSE = _PLAN_CHOICES.labels(plan="dense")
_PLAN_SPARSE = _PLAN_CHOICES.labels(plan="sparse")
_SELECTIVITY_DENSE = _PLAN_SELECTIVITY.labels(plan="dense")
_SELECTIVITY_SPARSE = _PLAN_SELECTIVITY.labels(plan="sparse")


def _record_stage(stage_child, name: str, started: float) -> None:
    """Observe one stage's duration and mirror it into the active trace.

    Core stages land at depth 1 of the batch-level trace the engine
    activates (see :mod:`repro.obs.trace`), nesting under the engine's own
    depth-0 spans when grafted into a sampled query's waterfall.
    """
    seconds = time.perf_counter() - started
    stage_child.observe(seconds)
    trace = active_trace()
    if trace is not None:
        trace.add(name, seconds, depth=1)

#: A published lookup table: the dense matrix plus the orders whose rows
#: are guaranteed filled *in that matrix* (immutable, swapped atomically).
_Table = Tuple[np.ndarray, FrozenSet[int]]

#: Fill factor: build table rows only when their one-time cost (Σ |V'1|+1
#: posterior evaluations) is within this multiple of the direct per-pair
#: work of the current call — serving workloads cross the bar immediately,
#: one-shot large-τ̂ experiment queries never pay for rows they don't use.
_TABLE_COST_FACTOR = 4

#: Selectivity bar of the pruned-execution cost model: the sparse,
#: index-driven candidate generation ((key, order)-block probes and
#: compacted bincounts) wins only when the bound filter leaves at most
#: ``D / _SPARSE_COST_FACTOR`` candidates; above that the dense kernels'
#: contiguous memory traffic amortises better than per-block gathers.
_SPARSE_COST_FACTOR = 8

#: The same bar under the compiled kernel backend.  The fused C filter-verify
#: call has no per-stage allocation or numpy dispatch overhead, so the sparse
#: plan stays profitable up to twice the candidate volume — the bar only
#: decides plan choice, never answers.
_SPARSE_COST_FACTOR_NATIVE = 4

#: Chunk size of the top-k verification loop: candidates are verified in
#: upper-bound order this many at a time, so the loop can stop as soon as
#: the k-th best verified posterior dominates every remaining bound.
_TOPK_CHUNK = 512

#: How many repeat queries of one (τ̂, γ, |V_Q|, snapshot) shape reuse a
#: memoized dense-plan decision before the selectivity estimate is re-run —
#: bounds the damage of one unusually broad query poisoning its shape.
_DENSE_SIGNATURE_TTL = 32


@dataclass
class FilterCounters:
    """Cumulative filter-effectiveness counters of one execution core.

    ``candidates_generated`` counts every (query, graph) pair a query was
    answerable over, ``candidates_pruned`` the pairs eliminated by O(1)
    bound arithmetic before any postings traversal (or by top-k early
    termination), and ``candidates_verified`` the pairs actually scored.
    ``dense_passes`` / ``sparse_passes`` record which strategy the cost
    model picked per verification pass.
    """

    candidates_generated: int = 0
    candidates_pruned: int = 0
    candidates_verified: int = 0
    dense_passes: int = 0
    sparse_passes: int = 0

    @property
    def prune_rate(self) -> float:
        """Fraction of generated candidates eliminated without scoring."""
        if self.candidates_generated <= 0:
            return 0.0
        return self.candidates_pruned / self.candidates_generated

    def as_dict(self) -> Dict[str, float]:
        """Flat summary (for stats objects / benchmark JSON)."""
        return {
            "candidates_generated": self.candidates_generated,
            "candidates_pruned": self.candidates_pruned,
            "candidates_verified": self.candidates_verified,
            "dense_passes": self.dense_passes,
            "sparse_passes": self.sparse_passes,
            "prune_rate": self.prune_rate,
        }


@dataclass
class CandidateScores:
    """Dense per-position output of one query's online stage.

    All arrays are aligned on store positions; ``graph_ids`` maps positions
    to global database ids (the identity for an unsharded database).
    """

    graph_ids: np.ndarray
    gbds: np.ndarray
    #: Per-position posteriors, or ``None`` when the caller asked for the
    #: accepted-only fast path (``need="accepted"``) — the accepted graphs'
    #: posteriors are then in :attr:`accepted_items`.
    posteriors: Optional[np.ndarray]
    accepted: np.ndarray
    #: Boolean survival mask of the branch lower-bound filter, or ``None``
    #: when pruning was off (every graph was scored).
    eligible: Optional[np.ndarray]
    #: Pre-extracted accepted (ids, posteriors) lists, filled by the batched
    #: path (one group-level ``nonzero`` instead of per-query scans).
    accepted_items: Optional[Tuple[List[int], List[float]]] = None
    #: Store positions of the rows the arrays cover, or ``None`` when they
    #: span the whole store.  The pruned filter-and-verify paths materialise
    #: arrays only for bound-surviving candidates and record them here;
    #: their consumers read :attr:`accepted_items` / :meth:`accepted_id_set`.
    positions: Optional[np.ndarray] = None

    def candidate_positions(self) -> np.ndarray:
        """Positions that were actually scored (all, unless pruning masked some)."""
        if self.eligible is None:
            return np.arange(len(self.gbds))
        return np.flatnonzero(self.eligible)

    def accepted_id_set(self) -> frozenset:
        """The accepted global graph ids as a frozenset."""
        if self.accepted_items is not None:
            return frozenset(self.accepted_items[0])
        return frozenset(self.graph_ids[self.accepted].tolist())

    def scores_dict(self, which: str = "candidates") -> Dict[int, float]:
        """Posterior scores keyed by global id: ``"candidates"`` or ``"accepted"``."""
        if which == "accepted":
            if self.accepted_items is not None:
                return dict(zip(*self.accepted_items))
            positions = np.flatnonzero(self.accepted)
        else:
            positions = self.candidate_positions()
        if self.posteriors is None:
            raise ValueError(
                "per-candidate posteriors were not materialised "
                "(scored with need='accepted')"
            )
        return dict(
            zip(self.graph_ids[positions].tolist(), self.posteriors[positions].tolist())
        )


class ExecutionCore:
    """Single implementation of Algorithm 1's online steps over a database.

    Parameters
    ----------
    database:
        The graph database (or id-preserving shard view) to score.
    estimator:
        A :class:`GBDAEstimator` built from fitted Λ2/Λ3 priors.
    max_tau:
        Largest similarity threshold supported by the priors.
    error_class:
        Exception type raised on invalid thresholds — :class:`SearchError`
        for the search wrapper, :class:`ServingError` for the engine.
    index:
        Optional pre-built :class:`BranchInvertedIndex`; built lazily on
        first use otherwise.
    kernel_backend:
        Columnar kernel backend of the lazily-built index (``"auto"`` |
        ``"numpy"`` | ``"native"`` — see :mod:`repro.db.kernels`).  Ignored
        when a pre-built ``index`` is supplied.  Plan choice adapts to the
        resolved backend (the fused native kernels move the sparse/dense
        cost bar), but answers never depend on it.
    """

    def __init__(
        self,
        database: GraphDatabase,
        estimator: GBDAEstimator,
        *,
        max_tau: int,
        error_class: Type[Exception] = SearchError,
        index: Optional[BranchInvertedIndex] = None,
        kernel_backend: str = "auto",
    ) -> None:
        self.database = database
        self.estimator = estimator
        self.max_tau = int(max_tau)
        self.error_class = error_class
        self.kernel_backend = str(kernel_backend)
        self._index = index
        self._tables: Dict[Tuple[int, int], np.ndarray] = {}
        # Published (matrix, frozen filled-order set) pairs per τ̂ (resp.
        # per (τ̂, γ) for the boolean acceptance variants) — see the module
        # docstring for the concurrency protocol.
        self._luts: Dict[int, _Table] = {}
        self._accept_luts: Dict[Tuple[int, float], _Table] = {}
        self._table_lock = threading.Lock()
        # Direct-evaluation cache: (τ̂, |V'1|, ϕ) -> posterior.  Writes are
        # idempotent (same float recomputed), so no lock is needed.
        self._pair_cache: Dict[Tuple[int, int, int], float] = {}
        # Memo of _use_tables calls that found every row already filled —
        # tables only ever grow, so a fully-covered verdict stays true.
        self._tables_ready: set = set()
        # (τ̂, γ, |V_Q|, snapshot) signatures whose cost model chose the
        # dense plan — repeat queries of the same shape skip the bound
        # estimation (plan choice never affects answers).  Each entry is a
        # countdown: the estimate is re-run periodically, so one broad query
        # cannot permanently disable pruning for selective queries that
        # merely share its shape.
        self._dense_signatures: Dict[Tuple, int] = {}
        # Snapshot-derived caches keyed by snapshot length.  The store only
        # ever appends, so one length identifies one prefix — entries are
        # idempotent and concurrent duplicate computation is benign (no
        # check-then-invalidate races across threads holding different
        # snapshots).
        self._distinct_orders: Dict[int, np.ndarray] = {}
        self._orders_rows: Dict[Tuple[int, int], np.ndarray] = {}
        self._order_codes_cache: Dict[int, np.ndarray] = {}
        # (τ̂, γ, |V_Q|, |distinct|, pruning) -> (extended, capped threshold)
        # vector pairs of the pruned path — see _pruned_thresholds.
        self._pruned_thresholds_cache: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        # γ-threshold inversion cache: (τ̂, γ) -> {order: max acceptable GBD}.
        # Entries are idempotent (derived from the posterior vectors), so no
        # lock is needed; see acceptance_threshold.
        self._gbd_thresholds: Dict[Tuple[int, float], Dict[int, int]] = {}
        # Dense order-indexed form of the same inversion (hot-path lookup);
        # -2 marks a not-yet-inverted order, filled idempotently on demand.
        self._threshold_arrays: Dict[Tuple[int, float], np.ndarray] = {}
        # Suffix-max posterior cache for top-k upper bounds:
        # (τ̂, order) -> vector with entry[ϕ] = max posterior over GBD >= ϕ.
        self._suffix_max: Dict[Tuple[int, int], np.ndarray] = {}
        #: Cumulative filter-effectiveness counters across every query this
        #: core answered (updated under a dedicated lock; see FilterCounters).
        self.filter_counters = FilterCounters()
        self._counter_lock = threading.Lock()
        # Bounded per-(τ̂, γ) selectivity observations: running totals of
        # generated/bound-surviving cells and plan choices per parameter
        # shape — the feed a learned self-tuning execution layer will train
        # on (see selectivity_report).  Plain picklable data.
        self._selectivity_obs: Dict[Tuple[int, float], Dict[str, float]] = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_table_lock"]  # locks are not picklable
        del state["_counter_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._table_lock = threading.Lock()
        self._counter_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # index and posterior tables
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> Optional[BranchInvertedIndex]:
        """The branch index, or ``None`` when no query has needed it yet."""
        return self._index

    def ensure_index(self) -> BranchInvertedIndex:
        """Return the branch index, building it on first use."""
        if self._index is None:
            self._index = BranchInvertedIndex(
                self.database, backend=getattr(self, "kernel_backend", "auto")
            )
        return self._index

    def _sparse_cost_factor(self) -> int:
        """Selectivity divisor of the sparse-vs-dense plan choice.

        Resolved once from the store's kernel backend (the fused native
        kernels keep the sparse plan profitable at twice the candidate
        volume) and cached as a plain int — the cache rides along when the
        core is pickled into pool workers.
        """
        factor = getattr(self, "_sparse_factor", None)
        if factor is None:
            backend = self.ensure_index().store.backend
            factor = (
                _SPARSE_COST_FACTOR_NATIVE
                if backend == "native"
                else _SPARSE_COST_FACTOR
            )
            self._sparse_factor = factor
        return factor

    @property
    def tables(self) -> Dict[Tuple[int, int], np.ndarray]:
        """The materialised ``(τ̂, |V'1|) -> posterior vector`` cache."""
        return self._tables

    def posterior_vector(self, tau_hat: int, extended_order: int) -> np.ndarray:
        """Return the dense posterior vector for one ``(τ̂, |V'1|)`` pair.

        ``vector[ϕ] = Pr[GED <= τ̂ | GBD = ϕ]`` for ``ϕ in 0..|V'1|``;
        computed on first use via :meth:`GBDAEstimator.posterior_row` and
        cached for the lifetime of the core.  (A concurrent duplicate
        computation is idempotent — both threads store the same floats.)
        """
        key = (int(tau_hat), max(int(extended_order), 1))
        vector = self._tables.get(key)
        if vector is None:
            vector = np.asarray(self.estimator.posterior_row(key[0], key[1]), dtype=np.float64)
            self._tables[key] = vector
        return vector

    def validate_tau(self, tau_hat: int) -> None:
        """Reject thresholds beyond the pre-computed priors."""
        if tau_hat > self.max_tau:
            raise self.error_class(
                f"τ̂={tau_hat} exceeds the pre-computed maximum {self.max_tau}; "
                "re-run the offline stage with a larger max_tau"
            )

    # ------------------------------------------------------------------ #
    # order-row caches (derived from one store snapshot per query)
    # ------------------------------------------------------------------ #
    def _store_distinct_orders(self, db_orders: np.ndarray) -> np.ndarray:
        """Distinct ``|V_G|`` values of the snapshot (size-keyed cache)."""
        if len(self._distinct_orders) > 64:
            self._distinct_orders = {}
        key = len(db_orders)
        distinct = self._distinct_orders.get(key)
        if distinct is None:
            distinct = np.unique(db_orders)
            self._distinct_orders[key] = distinct
        return distinct

    def _orders_row(self, db_orders: np.ndarray, num_query_vertices: int) -> np.ndarray:
        """Cached dense ``max(|V_Q|, |V_G|)`` row for one query size."""
        if len(self._orders_rows) > 256:
            self._orders_rows = {}
        key = (num_query_vertices, len(db_orders))
        row = self._orders_rows.get(key)
        if row is None:
            row = np.maximum(num_query_vertices, db_orders)
            self._orders_rows[key] = row
        return row

    def _order_codes(self, db_orders: np.ndarray, distinct: np.ndarray) -> np.ndarray:
        """Cached ``position -> index into distinct orders`` map of a snapshot."""
        if len(self._order_codes_cache) > 64:
            self._order_codes_cache = {}
        key = len(db_orders)
        codes = self._order_codes_cache.get(key)
        if codes is None:
            codes = np.searchsorted(distinct, db_orders)
            self._order_codes_cache[key] = codes
        return codes

    def _count(
        self, generated: int, pruned: int, verified: int, *, sparse: Optional[bool] = None
    ) -> None:
        """Fold one pass's filter-effectiveness numbers into the counters."""
        with self._counter_lock:
            counters = self.filter_counters
            counters.candidates_generated += generated
            counters.candidates_pruned += pruned
            counters.candidates_verified += verified
            if sparse is True:
                counters.sparse_passes += 1
            elif sparse is False:
                counters.dense_passes += 1
        if sparse is True:
            _PLAN_SPARSE.inc()
            if generated:
                _SELECTIVITY_SPARSE.observe(verified / generated)
        elif sparse is False:
            _PLAN_DENSE.inc()
            if generated:
                _SELECTIVITY_DENSE.observe(verified / generated)

    def _observe_selectivity(
        self, tau_hat: int, gamma: float, generated: int, survived: int, plan: str
    ) -> None:
        """Fold one pruned pass's bound-filter outcome into the (τ̂, γ) store."""
        with self._counter_lock:
            if len(self._selectivity_obs) > 256:
                self._selectivity_obs = {}
            key = (int(tau_hat), float(gamma))
            entry = self._selectivity_obs.get(key)
            if entry is None:
                entry = {"passes": 0, "generated": 0, "survived": 0, "dense": 0, "sparse": 0}
                self._selectivity_obs[key] = entry
            entry["passes"] += 1
            entry["generated"] += int(generated)
            entry["survived"] += int(survived)
            if plan in ("dense", "sparse"):
                entry[plan] += 1

    def selectivity_report(self) -> List[Dict[str, float]]:
        """Observed per-(τ̂, γ) bound-filter selectivity, one row per shape.

        Each row aggregates every pruned pass this core ran at one
        parameter shape: how many (query, graph) cells the bound filter
        saw, how many survived it, and which verification plan the cost
        model picked — exactly the signal a learned plan chooser needs.
        """
        with self._counter_lock:
            items = [(key, dict(entry)) for key, entry in self._selectivity_obs.items()]
        rows = []
        for (tau_hat, gamma), entry in sorted(items):
            generated = entry["generated"]
            rows.append(
                {
                    "tau_hat": tau_hat,
                    "gamma": gamma,
                    "passes": entry["passes"],
                    "generated": generated,
                    "survived": entry["survived"],
                    "selectivity": entry["survived"] / generated if generated else 0.0,
                    "dense_passes": entry["dense"],
                    "sparse_passes": entry["sparse"],
                }
            )
        return rows

    # ------------------------------------------------------------------ #
    # γ-threshold inversion: (τ̂, γ) acceptance as a max-acceptable GBD
    # ------------------------------------------------------------------ #
    def acceptance_threshold(self, tau_hat: int, gamma: float, extended_order: int) -> int:
        """Largest GBD an accepted graph of this extended order can have.

        Inverts the Step-4 rule ``Φ(ϕ) >= γ`` into ``ϕ <= threshold``: the
        returned value is ``max{ϕ : posterior(ϕ, τ̂, |V'1|) >= γ}`` (or -1
        when no GBD is acceptable).  Taking the *maximum* accepting ϕ keeps
        the inversion sound even where the tabulated posterior is not
        monotone in ϕ — a candidate whose GBD lower bound exceeds the
        threshold provably cannot be accepted, whatever its exact GBD.
        Cached per ``(τ̂, γ, |V'1|)`` for the lifetime of the core.
        """
        key = (int(tau_hat), float(gamma))
        per_order = self._gbd_thresholds.setdefault(key, {})
        order = max(int(extended_order), 1)
        threshold = per_order.get(order)
        if threshold is None:
            accepting = np.flatnonzero(
                self.posterior_vector(tau_hat, order) >= float(gamma)
            )
            threshold = int(accepting[-1]) if accepting.size else -1
            per_order[order] = threshold
        return threshold

    def _thresholds_for(
        self, tau_hat: int, gamma: float, extended_orders: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`acceptance_threshold` over an array of orders."""
        return self._threshold_lookup(tau_hat, gamma, extended_orders)[extended_orders]

    def _pruned_thresholds(
        self,
        tau_hat: int,
        gamma: float,
        num_query_vertices: int,
        distinct: np.ndarray,
        use_pruning: bool,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Cached ``(extended, capped thresholds)`` per-distinct-order pair.

        One query shape ``(τ̂, γ, |V_Q|, pruning)`` over one snapshot always
        produces the same two small vectors, so they are built once and
        reused — and because the *same array objects* recur, the native
        backend's per-array address cache applies to the thresholds too.
        ``len(distinct)`` identifies the distinct-order set: the store is
        append-only, so the set only ever grows.
        """
        cache = getattr(self, "_pruned_thresholds_cache", None)
        if cache is None:
            cache = self._pruned_thresholds_cache = {}
        key = (
            int(tau_hat),
            float(gamma),
            int(num_query_vertices),
            len(distinct),
            bool(use_pruning),
        )
        cached = cache.get(key)
        if cached is None:
            if len(cache) > 256:
                cache.clear()
            extended = np.maximum(num_query_vertices, distinct)
            thresholds = self._thresholds_for(tau_hat, gamma, extended)
            if use_pruning:
                thresholds = np.minimum(thresholds, max_gbd_for_ged(tau_hat))
            cached = (extended, np.ascontiguousarray(thresholds, dtype=np.int64))
            cache[key] = cached
        return cached

    def _threshold_lookup(
        self, tau_hat: int, gamma: float, extended_orders: np.ndarray
    ) -> np.ndarray:
        """Dense ``order -> max acceptable GBD`` array covering the given orders.

        The hot-path form of :meth:`acceptance_threshold`: one cached
        ``int64`` vector per ``(τ̂, γ)``, filled lazily only for the orders
        actually requested (-2 marks an order not inverted yet) and indexed
        with a single numpy take per query.  Fills are idempotent, so
        concurrent readers are safe without a lock.
        """
        key = (int(tau_hat), float(gamma))
        max_order = int(extended_orders[-1]) if len(extended_orders) else 1
        lookup = self._threshold_arrays.get(key)
        if lookup is None or len(lookup) <= max_order:
            grown = np.full(max_order + 2, -2, dtype=np.int64)
            if lookup is not None:
                grown[: len(lookup)] = lookup
            lookup = grown
            self._threshold_arrays[key] = lookup
        requested = np.asarray(extended_orders, dtype=np.int64)
        for order in requested[lookup[requested] == -2].tolist():
            lookup[order] = self.acceptance_threshold(tau_hat, gamma, order)
        return lookup

    def _suffix_max_vector(self, tau_hat: int, extended_order: int) -> np.ndarray:
        """``vector[ϕ] = max posterior over GBD >= ϕ`` for one (τ̂, |V'1|).

        Given a GBD *lower bound* ϕ, ``vector[ϕ]`` upper-bounds the
        candidate's true posterior — the admissible bound driving top-k
        early termination.  Cached idempotently per (τ̂, order).
        """
        key = (int(tau_hat), max(int(extended_order), 1))
        suffix = self._suffix_max.get(key)
        if suffix is None:
            vector = self.posterior_vector(key[0], key[1])
            suffix = np.maximum.accumulate(vector[::-1])[::-1].copy()
            self._suffix_max[key] = suffix
        return suffix

    # ------------------------------------------------------------------ #
    # posterior strategies: dense tables vs direct pair evaluation
    # ------------------------------------------------------------------ #
    def _use_tables(self, tau_hat: int, needed_orders: List[int], num_scored: int) -> bool:
        """Whether filling table rows beats direct evaluation for this call.

        A missing ``(τ̂, |V'1|)`` row costs ``|V'1| + 1`` scalar posterior
        evaluations; direct evaluation costs at most one per scored cell.
        Rows pay off when their one-time cost is within
        ``_TABLE_COST_FACTOR`` times the direct work — always true for
        serving-sized databases, never for one-shot large-τ̂ queries over a
        handful of graphs (the paper-experiment shape).
        """
        # Hot path: once every needed row exists the answer can never flip
        # back (tables only grow), so the scan is skipped on repeat calls.
        # The key holds the exact order list — different lists never collide.
        ready_key = (tau_hat, tuple(needed_orders))
        if ready_key in self._tables_ready:
            return True
        if len(self._tables_ready) > 512:
            self._tables_ready = set()  # bound the memo like the sibling caches
        missing = sum(
            order + 1
            for order in needed_orders
            if (tau_hat, max(order, 1)) not in self._tables
        )
        if missing == 0:
            self._tables_ready.add(ready_key)
        return missing <= _TABLE_COST_FACTOR * num_scored

    def _posteriors_direct(
        self, tau_hat: int, orders: np.ndarray, gbds: np.ndarray
    ) -> np.ndarray:
        """Posteriors for exactly the distinct ``(|V'1|, ϕ)`` pairs present.

        Never evaluates a pair the per-pair reference loop would not have
        evaluated; repeated pairs (across graphs, queries, and calls) are
        served from the idempotent pair cache.  Values come from the same
        :meth:`GBDAEstimator.posterior` as the table rows — bit-identical
        either way.
        """
        if orders.size == 0:
            return np.zeros(orders.shape, dtype=np.float64)
        base = int(orders.max()) + 2  # gbd <= order < base, so codes are unique
        codes = (orders.astype(np.int64) * base + gbds).ravel()
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        cache = self._pair_cache
        posterior = self.estimator.posterior
        values = np.empty(len(unique_codes), dtype=np.float64)
        for slot, code in enumerate(unique_codes.tolist()):
            order, gbd = divmod(code, base)
            key = (tau_hat, order, gbd)
            value = cache.get(key)
            if value is None:
                value = posterior(gbd, tau_hat, order)
                cache[key] = value
            values[slot] = value
        return values[inverse].reshape(orders.shape)

    def _published_table(
        self,
        registry: Dict,
        registry_key,
        needed_orders: List[int],
        fill_row,
        dtype,
    ) -> np.ndarray:
        """Return a published lookup matrix covering ``needed_orders``.

        Fast path: the current ``(matrix, filled)`` publication already
        covers every needed row — return it without locking (the frozenset
        travels with the exact matrix it describes, so the pair can never
        be torn).  Slow path: take the writer lock, copy-and-extend, fill
        the missing rows via ``fill_row(matrix, order)``, and publish a new
        pair.  Rows are only ever read after appearing in a publication's
        frozenset, so in-place fills before publishing are invisible.
        """
        max_order = max(needed_orders) if needed_orders else 1
        published = registry.get(registry_key)
        if published is not None:
            matrix, filled = published
            if matrix.shape[0] > max_order and filled.issuperset(needed_orders):
                return matrix
        with self._table_lock:
            published = registry.get(registry_key)
            if published is None:
                matrix = None
                filled = frozenset()
            else:
                matrix, filled = published
            missing = [order for order in needed_orders if order not in filled]
            if matrix is None or matrix.shape[0] <= max_order:
                grown = np.zeros((max_order + 1, max_order + 2), dtype=dtype)
                if matrix is not None:
                    grown[: matrix.shape[0], : matrix.shape[1]] = matrix
                matrix = grown
            for order in missing:
                fill_row(matrix, order)
            registry[registry_key] = (matrix, filled | set(missing))
            return matrix

    def _lut_for(self, tau_hat: int, needed_orders: List[int]) -> np.ndarray:
        """``lut[order, gbd]`` posterior matrix for τ̂ (rows as needed)."""
        tau_hat = int(tau_hat)

        def fill_row(matrix, order):
            vector = self.posterior_vector(tau_hat, order)
            matrix[order, : len(vector)] = vector

        return self._published_table(self._luts, tau_hat, needed_orders, fill_row, np.float64)

    def _accept_lut_for(
        self, tau_hat: int, gamma: float, needed_orders: List[int]
    ) -> np.ndarray:
        """Boolean ``lut[order, gbd] = (Φ >= γ)`` acceptance matrix.

        Derived row-by-row from :meth:`posterior_vector`, so decisions are
        exactly Step 4's ``posterior >= γ`` — but a whole GBD matrix is
        classified by one (cheap, boolean) fancy index without
        materialising its posteriors.
        """
        tau_hat = int(tau_hat)
        gamma = float(gamma)

        def fill_row(matrix, order):
            vector = self.posterior_vector(tau_hat, order)
            matrix[order, : len(vector)] = vector >= gamma

        return self._published_table(
            self._accept_luts, (tau_hat, gamma), needed_orders, fill_row, bool
        )

    # ------------------------------------------------------------------ #
    # Steps 2–4 of Algorithm 1
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SimilarityQuery,
        *,
        query_branches: Optional[Counter] = None,
        use_pruning: bool = False,
    ) -> CandidateScores:
        """Score one query against every database graph; return dense results."""
        self.validate_tau(query.tau_hat)
        started = time.perf_counter()
        graph = query.query_graph
        branches = query.branches() if query_branches is None else query_branches
        store = self.ensure_index().store
        # One coherent snapshot per query: a concurrent database addition
        # becomes visible between queries, never mid-computation.
        csr, db_orders, global_ids = store.view()
        num_query_vertices = graph.num_vertices
        orders = self._orders_row(db_orders, num_query_vertices)
        gbds = orders - store.intersection_row(branches, view=(csr, len(db_orders)))
        needed_orders = np.maximum(
            num_query_vertices, self._store_distinct_orders(db_orders)
        ).tolist()
        if self._use_tables(query.tau_hat, needed_orders, len(gbds)):
            lut = self._lut_for(query.tau_hat, needed_orders)
            posteriors = lut.take(orders * lut.shape[1] + gbds)
        else:
            posteriors = self._posteriors_direct(query.tau_hat, orders, gbds)
        eligible = gbds <= max_gbd_for_ged(query.tau_hat) if use_pruning else None
        accepted = posteriors >= query.gamma
        if eligible is not None:
            accepted &= eligible
        self._count(len(gbds), 0, len(gbds), sparse=False)
        _record_stage(_STAGE_SCORE_DENSE, "score_dense", started)
        return CandidateScores(global_ids, gbds, posteriors, accepted, eligible)

    def execute_pruned(
        self,
        query: SimilarityQuery,
        *,
        query_branches: Optional[Counter] = None,
        use_pruning: bool = False,
    ) -> CandidateScores:
        """Filter-and-verify variant of :meth:`execute` for accepted-only callers.

        The ``(τ̂, γ)`` acceptance rule is inverted into a per-order
        max-acceptable-GBD threshold (:meth:`acceptance_threshold`, further
        capped by the branch bound ``2 τ̂`` when ``use_pruning`` is on), and
        every candidate whose GBD *lower bound* exceeds it is eliminated
        with O(1) arithmetic before any postings traversal.  The bound is
        the per-graph-norm math of
        :meth:`ColumnarBranchStore.gbd_lower_bound_row`, evaluated once per
        *distinct* ``|V_G|`` (it depends on the row only through its order)
        rather than per row.  Survivors are verified exactly, through either
        the dense intersection pass or the sparse index-driven kernels —
        whichever the selectivity cost model predicts cheaper.  Accepted
        sets and scores are bit-identical to :meth:`execute` (and hence to
        ``query_reference``); per-candidate posteriors are *not*
        materialised, so the result carries :attr:`CandidateScores.positions`
        and is meant for ``need="accepted"`` consumers.
        """
        self.validate_tau(query.tau_hat)
        branches = query.branches() if query_branches is None else query_branches
        store = self.ensure_index().store
        csr, db_orders, global_ids = store.view()
        num_rows = len(db_orders)
        num_query_vertices = query.query_graph.num_vertices
        tau_hat, gamma = query.tau_hat, query.gamma
        signature = (tau_hat, gamma, num_query_vertices, num_rows)
        remaining = self._dense_signatures.get(signature)
        if remaining is not None:
            if remaining > 0:
                # Lost updates between racing threads only stretch the TTL.
                self._dense_signatures[signature] = remaining - 1
                return self.execute(
                    query, query_branches=branches, use_pruning=use_pruning
                )
            # Countdown expired: drop and re-estimate (pop, not del — a
            # racing thread may have removed the entry already).
            self._dense_signatures.pop(signature, None)
        distinct = self._store_distinct_orders(db_orders)
        extended = np.maximum(num_query_vertices, distinct)
        if not self._use_tables(tau_hat, extended.tolist(), num_rows):
            # One-shot workload: inverting the thresholds would cost more
            # posterior evaluations than it saves — score directly.
            return self.execute(query, query_branches=branches, use_pruning=use_pruning)
        filter_started = time.perf_counter()
        # Step 4 inverted: per distinct extended order, the largest GBD an
        # accepted graph may have (and, with pruning, may survive at all).
        # The cached pair keeps the array objects stable across repeat query
        # shapes, which the native backend's address cache feeds on.
        extended, thresholds = self._pruned_thresholds(
            tau_hat, gamma, num_query_vertices, distinct, use_pruning
        )

        # Fused filter-and-verify: one store call decides per-distinct-order
        # eligibility with O(1) bound arithmetic, applies the selectivity bar
        # (at most D / cost-factor survivors — above that the dense plan's
        # contiguous traffic wins), and computes the survivors' exact
        # intersections through the (key, order)-block index without ever
        # reading a pruned row's postings.  On the native backend the whole
        # sequence is a single C call with no intermediates.
        max_candidates = num_rows // self._sparse_cost_factor()
        positions, intersections, eligible_orders, num_eligible = store.filter_verify_row(
            num_query_vertices,
            branches,
            thresholds,
            max_candidates,
            view=(csr, num_rows),
        )
        if num_eligible == 0:
            self._count(num_rows, num_rows, 0)
            self._observe_selectivity(tau_hat, gamma, num_rows, 0, "sparse")
            _record_stage(_STAGE_BOUND_FILTER, "bound_filter", filter_started)
            empty = np.empty(0, dtype=np.int64)
            return CandidateScores(
                empty,
                empty,
                None,
                np.empty(0, dtype=bool),
                None,
                accepted_items=([], []),
                positions=empty,
            )
        if positions is None:
            # Low selectivity: compacted verification would cost more than
            # it saves — the plain dense pass is the better plan.  Remember
            # the shape so its next repeats skip the estimation too.
            if len(self._dense_signatures) > 4096:
                self._dense_signatures = {}
            self._dense_signatures[signature] = _DENSE_SIGNATURE_TTL
            self._observe_selectivity(tau_hat, gamma, num_rows, num_eligible, "dense")
            _record_stage(_STAGE_BOUND_FILTER, "bound_filter", filter_started)
            return self.execute(query, query_branches=branches, use_pruning=use_pruning)
        self._count(num_rows, num_rows - num_eligible, num_eligible, sparse=True)
        self._observe_selectivity(tau_hat, gamma, num_rows, num_eligible, "sparse")
        _record_stage(_STAGE_BOUND_FILTER, "bound_filter", filter_started)
        verify_started = time.perf_counter()

        sub_orders = np.maximum(num_query_vertices, db_orders[positions])
        sub_gbds = sub_orders - intersections

        accept_orders = extended[eligible_orders].tolist()
        accept_lut = self._accept_lut_for(tau_hat, gamma, accept_orders)
        accepted = accept_lut.take(sub_orders * accept_lut.shape[1] + sub_gbds)
        if use_pruning:
            accepted &= sub_gbds <= max_gbd_for_ged(tau_hat)

        hits = np.flatnonzero(accepted)
        sub_ids = global_ids[positions]
        if hits.size:
            lut = self._lut_for(tau_hat, np.unique(sub_orders[hits]).tolist())
            hit_posteriors = lut[sub_orders[hits], sub_gbds[hits]].tolist()
        else:
            hit_posteriors = []
        _record_stage(_STAGE_VERIFY, "verify", verify_started)
        return CandidateScores(
            sub_ids,
            sub_gbds,
            None,
            accepted,
            None,
            accepted_items=(sub_ids[hits].tolist(), hit_posteriors),
            positions=positions,
        )

    def execute_batch(
        self,
        queries: Sequence[SimilarityQuery],
        *,
        query_branches: Optional[Sequence[Counter]] = None,
        use_pruning: bool = False,
        need: str = "full",
        pruned: bool = False,
    ) -> List[CandidateScores]:
        """Score a batch of queries; return per-query results in input order.

        True batching: the ``(Q, D)`` intersection matrix is produced by one
        columnar pass (τ̂-independent), queries are processed in τ̂/γ-sorted
        order so every ``(τ̂, γ)`` group is a contiguous *view* sharing one
        lookup table, and all accepted pairs of a group are extracted with a
        single ``nonzero`` scan.  With ``need="accepted"`` the boolean
        acceptance tables classify the whole matrix directly and posteriors
        are materialised only for accepted graphs — the serving engine's
        default mode; ``need="full"`` keeps dense per-graph posteriors.
        With ``pruned=True`` (accepted-only callers), each ``(τ̂, γ)`` group
        additionally runs the filter-and-verify bound elimination of
        :meth:`execute_pruned` before its intersections are computed.
        Accepted sets and scores are identical to calling :meth:`execute`
        per query every way.
        """
        queries = list(queries)
        for query in queries:
            self.validate_tau(query.tau_hat)
        if query_branches is None:
            query_branches = [query.branches() for query in queries]
        if pruned and need == "accepted" and queries:
            return self._execute_batch_pruned(queries, query_branches, use_pruning)
        started = time.perf_counter()
        store = self.ensure_index().store
        # One coherent snapshot for the whole batch (see execute()).
        csr, db_orders, global_ids = store.view()
        distinct_orders = self._store_distinct_orders(db_orders)

        # Sort by (τ̂, γ) so each parameter group is a contiguous slice —
        # group operations below are views, never fancy-index copies.
        sorted_positions = sorted(
            range(len(queries)), key=lambda i: (queries[i].tau_hat, queries[i].gamma)
        )

        # Step 2 for the whole batch at once.
        vertices = [queries[i].query_graph.num_vertices for i in sorted_positions]
        intersections = store.intersection_matrix(
            [query_branches[i] for i in sorted_positions], view=(csr, len(db_orders))
        )
        orders_matrix = np.vstack(
            [self._orders_row(db_orders, num_vertices) for num_vertices in vertices]
        )
        gbd_matrix = orders_matrix - intersections

        # Steps 3–4 per contiguous (τ̂, γ) group.
        results: List[Optional[CandidateScores]] = [None] * len(queries)
        start = 0
        total = len(sorted_positions)
        while start < total:
            first = queries[sorted_positions[start]]
            tau_hat, gamma = first.tau_hat, first.gamma
            end = start
            while (
                end < total
                and queries[sorted_positions[end]].tau_hat == tau_hat
                and queries[sorted_positions[end]].gamma == gamma
            ):
                end += 1
            group_orders = orders_matrix[start:end]
            group_gbds = gbd_matrix[start:end]
            needed_orders = np.unique(
                np.maximum(
                    np.asarray(vertices[start:end], dtype=np.int64)[:, None],
                    distinct_orders[None, :],
                )
            ).tolist()
            posterior_group: Optional[np.ndarray]
            if not self._use_tables(tau_hat, needed_orders, group_gbds.size):
                posterior_group = self._posteriors_direct(tau_hat, group_orders, group_gbds)
                accepted_group = posterior_group >= gamma
            elif need == "accepted":
                accept_lut = self._accept_lut_for(tau_hat, gamma, needed_orders)
                flat_keys = group_orders * accept_lut.shape[1] + group_gbds
                accepted_group = accept_lut.take(flat_keys)
                posterior_group = None
            else:
                lut = self._lut_for(tau_hat, needed_orders)
                flat_keys = group_orders * lut.shape[1] + group_gbds
                posterior_group = lut.take(flat_keys)
                accepted_group = posterior_group >= gamma
            eligible_group = (
                group_gbds <= max_gbd_for_ged(tau_hat) if use_pruning else None
            )
            if eligible_group is not None:
                accepted_group &= eligible_group
            self._count(group_gbds.size, 0, group_gbds.size, sparse=False)

            # Extract every accepted (query, graph) pair of the group with
            # one flat nonzero scan instead of per-query mask passes.
            num_graphs = accepted_group.shape[1]
            hit_flat = np.flatnonzero(accepted_group)
            hit_rows, hit_cols = np.divmod(hit_flat, num_graphs)
            hit_ids = global_ids[hit_cols].tolist()
            if posterior_group is not None:
                hit_posteriors = posterior_group.ravel()[hit_flat].tolist()
            else:
                hit_orders = group_orders.ravel()[hit_flat]
                hit_gbds = group_gbds.ravel()[hit_flat]
                lut = self._lut_for(tau_hat, np.unique(hit_orders).tolist())
                hit_posteriors = lut[hit_orders, hit_gbds].tolist()
            hit_bounds = np.searchsorted(hit_rows, np.arange(end - start + 1))
            for row in range(end - start):
                lo, hi = hit_bounds[row], hit_bounds[row + 1]
                results[sorted_positions[start + row]] = CandidateScores(
                    global_ids,
                    group_gbds[row],
                    posterior_group[row] if posterior_group is not None else None,
                    accepted_group[row],
                    eligible_group[row] if eligible_group is not None else None,
                    accepted_items=(hit_ids[lo:hi], hit_posteriors[lo:hi]),
                )
            start = end
        _record_stage(_STAGE_BATCH_SCORE, "batch_score", started)
        return results  # type: ignore[return-value]

    def _execute_batch_pruned(
        self,
        queries: List[SimilarityQuery],
        query_branches: Sequence[Counter],
        use_pruning: bool,
    ) -> List[CandidateScores]:
        """Filter-and-verify form of the batched path (``need="accepted"``).

        Each ``(τ̂, γ)`` group first eliminates (query, graph) pairs whose
        GBD lower bound exceeds the inverted acceptance threshold — O(1)
        arithmetic per pair, decided per (query, distinct |V_G|) — and only
        the union of each group's surviving rows is run through the columnar
        intersection kernels (sparse compacted submatrix or dense pass, by
        estimated selectivity).  Answers are bit-identical to the unpruned
        batch in input order.
        """
        store = self.ensure_index().store
        csr, db_orders, global_ids = store.view()
        num_rows = len(db_orders)
        distinct = self._store_distinct_orders(db_orders)
        codes = self._order_codes(db_orders, distinct)
        view = (csr, num_rows)
        empty = np.empty(0, dtype=np.int64)

        sorted_positions = sorted(
            range(len(queries)), key=lambda i: (queries[i].tau_hat, queries[i].gamma)
        )
        results: List[Optional[CandidateScores]] = [None] * len(queries)
        start = 0
        total = len(sorted_positions)
        while start < total:
            first = queries[sorted_positions[start]]
            tau_hat, gamma = first.tau_hat, first.gamma
            end = start
            while (
                end < total
                and queries[sorted_positions[end]].tau_hat == tau_hat
                and queries[sorted_positions[end]].gamma == gamma
            ):
                end += 1
            group = sorted_positions[start:end]
            start = end
            group_size = len(group)
            vertices = np.asarray(
                [queries[i].query_graph.num_vertices for i in group], dtype=np.int64
            )
            group_branches = [query_branches[i] for i in group]
            # (group, distinct-order) extended orders and bound elimination.
            filter_started = time.perf_counter()
            extended = np.maximum(vertices[:, None], distinct[None, :])
            unique_orders = np.unique(extended)
            if not self._use_tables(
                tau_hat, unique_orders.tolist(), group_size * num_rows
            ):
                for i in group:
                    results[i] = self.execute(
                        queries[i], query_branches=query_branches[i], use_pruning=use_pruning
                    )
                continue
            thresholds = self._threshold_lookup(tau_hat, gamma, unique_orders)[extended]
            if use_pruning:
                thresholds = np.minimum(thresholds, max_gbd_for_ged(tau_hat))
            generated = group_size * num_rows
            # Fused group filter-and-verify: one store call bounds every
            # (query, distinct order) pair, applies the selectivity bar to
            # the union of surviving orders, and produces the exact (G, E)
            # intersection matrix blockwise — pruned orders' postings are
            # never read, and the per-query python loop is gone.
            max_union_rows = num_rows // self._sparse_cost_factor()
            positions, intersections, eligible, union_rows = store.filter_verify_matrix(
                vertices, group_branches, thresholds, max_union_rows, view=view
            )
            if union_rows == 0:
                self._count(generated, generated, 0)
                self._observe_selectivity(tau_hat, gamma, generated, 0, "sparse")
                _record_stage(_STAGE_BOUND_FILTER, "bound_filter", filter_started)
                for i in group:
                    results[i] = CandidateScores(
                        empty,
                        empty,
                        None,
                        np.empty(0, dtype=bool),
                        None,
                        accepted_items=([], []),
                        positions=empty,
                    )
                continue
            if positions is None:
                self._observe_selectivity(
                    tau_hat, gamma, generated, group_size * union_rows, "dense"
                )
                _record_stage(_STAGE_BOUND_FILTER, "bound_filter", filter_started)
                # Low selectivity: re-run this group through the plain dense
                # batch machinery (cached order rows, whole-matrix LUT
                # classification) — answers are identical either way.
                group_results = self.execute_batch(
                    [queries[i] for i in group],
                    query_branches=group_branches,
                    use_pruning=use_pruning,
                    need="accepted",
                    pruned=False,
                )
                for i, result in zip(group, group_results):
                    results[i] = result
                continue
            eligible_sub = eligible[:, codes[positions]]  # (group, survivors)
            # Count every cell whose intersection is actually computed (the
            # whole union per query) as verified — prune_rate must reflect
            # work truly skipped, not per-query eligibility.
            verified = group_size * len(positions)
            self._count(generated, generated - verified, verified, sparse=True)
            self._observe_selectivity(tau_hat, gamma, generated, verified, "sparse")
            _record_stage(_STAGE_BOUND_FILTER, "bound_filter", filter_started)
            verify_started = time.perf_counter()
            sub_orders = np.maximum(vertices[:, None], db_orders[positions][None, :])
            sub_gbds = sub_orders - intersections
            # Classify only the eligible cells — ineligible ones are pruned
            # by construction and their orders may lack LUT rows.
            accepted = np.zeros(sub_gbds.shape, dtype=bool)
            if verified:
                cell_orders = sub_orders[eligible_sub]
                cell_gbds = sub_gbds[eligible_sub]
                accept_lut = self._accept_lut_for(
                    tau_hat, gamma, np.unique(cell_orders).tolist()
                )
                cell_accepted = accept_lut.take(
                    cell_orders * accept_lut.shape[1] + cell_gbds
                )
                if use_pruning:
                    cell_accepted &= cell_gbds <= max_gbd_for_ged(tau_hat)
                accepted[eligible_sub] = cell_accepted

            # One flat nonzero scan extracts every accepted pair of the group.
            num_cols = accepted.shape[1]
            hit_flat = np.flatnonzero(accepted)
            hit_rows, hit_cols = np.divmod(hit_flat, num_cols)
            sub_ids = global_ids[positions]
            hit_ids = sub_ids[hit_cols].tolist()
            if hit_flat.size:
                hit_orders = sub_orders.ravel()[hit_flat]
                hit_gbds = sub_gbds.ravel()[hit_flat]
                lut = self._lut_for(tau_hat, np.unique(hit_orders).tolist())
                hit_posteriors = lut[hit_orders, hit_gbds].tolist()
            else:
                hit_posteriors = []
            hit_bounds = np.searchsorted(hit_rows, np.arange(group_size + 1))
            for row, position in enumerate(group):
                lo, hi = hit_bounds[row], hit_bounds[row + 1]
                results[position] = CandidateScores(
                    sub_ids,
                    sub_gbds[row],
                    None,
                    accepted[row],
                    None,
                    accepted_items=(hit_ids[lo:hi], hit_posteriors[lo:hi]),
                    positions=positions,
                )
            _record_stage(_STAGE_VERIFY, "verify", verify_started)
        return results  # type: ignore[return-value]

    def execute_topk(
        self,
        query: SimilarityQuery,
        k: int,
        *,
        query_branches: Optional[Counter] = None,
        use_pruning: bool = False,
    ) -> List[Tuple[int, float]]:
        """Rank the database by posterior; return the top ``k`` (id, Φ) pairs.

        The ranking is exactly the first ``k`` entries of the full γ=0
        scoring sorted by ``(-posterior, graph id)`` — deterministic under
        ties.  Bound-based early termination: every row's posterior is
        *upper*-bounded from its GBD lower bound through the suffix-max of
        the posterior vector (:meth:`_suffix_max_vector`), candidates are
        verified in upper-bound order, and the loop stops as soon as the
        k-th best verified posterior strictly dominates every remaining
        bound.  With ``use_pruning`` the ranking covers only the branch-bound
        candidate set (``GBD <= 2 τ̂``), mirroring the pruning search.
        """
        self.validate_tau(query.tau_hat)
        started = time.perf_counter()
        k = int(k)
        if k < 1:
            raise self.error_class("top_k must be a positive integer")
        branches = query.branches() if query_branches is None else query_branches
        store = self.ensure_index().store
        csr, db_orders, global_ids = store.view()
        num_rows = len(db_orders)
        if num_rows == 0:
            return []
        num_query_vertices = query.query_graph.num_vertices
        orders_row = self._orders_row(db_orders, num_query_vertices)
        distinct = self._store_distinct_orders(db_orders)
        extended = np.maximum(num_query_vertices, distinct)
        tau_hat = query.tau_hat
        view = (csr, num_rows)

        if not self._use_tables(tau_hat, extended.tolist(), num_rows):
            # One-shot workload: score everything directly and sort.
            gbds = orders_row - store.intersection_row(branches, view=view)
            posteriors = self._posteriors_direct(tau_hat, orders_row, gbds)
            candidates = np.arange(num_rows)
            if use_pruning:
                candidates = np.flatnonzero(gbds <= max_gbd_for_ged(tau_hat))
            self._count(num_rows, 0, num_rows, sparse=False)
            ranked = candidates[
                np.lexsort((global_ids[candidates], -posteriors[candidates]))
            ][:k]
            _record_stage(_STAGE_TOPK, "topk", started)
            return [
                (int(global_ids[row]), float(posteriors[row])) for row in ranked
            ]

        # Per-distinct-order GBD lower bounds and posterior upper bounds.
        matched_total = store.matched_query_total(branches)
        lower_bounds = extended - np.minimum(matched_total, distinct)
        upper_by_order = np.asarray(
            [
                float(self._suffix_max_vector(tau_hat, int(order))[bound])
                for order, bound in zip(extended, lower_bounds)
            ],
            dtype=np.float64,
        )
        if use_pruning:
            # Rows whose bound already certifies GED > τ̂ leave the ranking.
            upper_by_order[lower_bounds > max_gbd_for_ged(tau_hat)] = -np.inf
        codes = self._order_codes(db_orders, distinct)
        upper_row = upper_by_order[codes]

        candidate_order = np.argsort(-upper_row, kind="stable")
        zero_rows = np.empty(0, dtype=np.int64)
        if use_pruning:
            candidate_order = candidate_order[
                np.isfinite(upper_row[candidate_order])
            ]
        else:
            # A zero upper bound *determines* the score: posterior ∈ [0, 0].
            # Those rows join the ranking with score 0.0 without any
            # verification — only sound without the branch-bound candidate
            # restriction (pruning membership needs the exact GBD).
            zero_rows = np.flatnonzero(upper_row <= 0.0)
            candidate_order = candidate_order[upper_row[candidate_order] > 0.0]
        lut = self._lut_for(tau_hat, extended.tolist())
        # Per-chunk verification reads only the visited rows' postings
        # (intersection_subrow); if the bounds are not terminating the scan
        # after ~1/8 of the database, one dense pass amortises better than
        # further per-chunk gathers.
        gbds: Optional[np.ndarray] = None
        dense_after = num_rows // self._sparse_cost_factor()
        scored_ids: List[np.ndarray] = []
        scored_posteriors: List[np.ndarray] = []
        kth_score = -np.inf
        num_kept = 0
        cursor = 0
        verified = 0
        while cursor < len(candidate_order):
            if num_kept >= k and upper_row[candidate_order[cursor]] < kth_score:
                break  # every remaining bound is strictly below the k-th best
            chunk = np.sort(candidate_order[cursor : cursor + _TOPK_CHUNK])
            cursor += len(chunk)
            verified += len(chunk)
            if gbds is None and cursor > dense_after:
                gbds = orders_row - store.intersection_row(branches, view=view)
            if gbds is not None:
                chunk_gbds = gbds[chunk]
            else:
                chunk_gbds = orders_row[chunk] - store.intersection_subrow(
                    branches, chunk, view=view
                )
            if use_pruning:
                survivors = chunk_gbds <= max_gbd_for_ged(tau_hat)
                chunk = chunk[survivors]
                chunk_gbds = chunk_gbds[survivors]
                if not len(chunk):
                    continue
            chunk_posteriors = lut[orders_row[chunk], chunk_gbds]
            scored_ids.append(global_ids[chunk])
            scored_posteriors.append(chunk_posteriors)
            num_kept += len(chunk)
            if num_kept >= k:
                flat = np.concatenate(scored_posteriors)
                kth_score = float(np.partition(flat, -k)[-k])
        if zero_rows.size and (num_kept < k or kth_score <= 0.0):
            # Zero-bound rows can only matter when the k-th best is 0 (ties
            # resolve by graph id) or fewer than k rows were scored.
            scored_ids.append(global_ids[zero_rows])
            scored_posteriors.append(np.zeros(len(zero_rows), dtype=np.float64))
        self._count(num_rows, num_rows - verified, verified, sparse=None)
        _record_stage(_STAGE_TOPK, "topk", started)
        if not scored_ids:
            return []
        ids = np.concatenate(scored_ids)
        posteriors = np.concatenate(scored_posteriors)
        ranked = np.lexsort((ids, -posteriors))[:k]
        return [(int(ids[row]), float(posteriors[row])) for row in ranked]

    def warm(
        self, tau_hats: Iterable[int], extended_orders: Optional[Iterable[int]] = None
    ) -> int:
        """Pre-compute posterior vectors ahead of traffic; return the table count.

        ``extended_orders`` defaults to the distinct vertex counts present
        in the database — the exact orders hit by queries no larger than the
        largest stored graph; larger queries extend the tables lazily.
        """
        if extended_orders is None:
            extended_orders = sorted({entry.num_vertices for entry in self.database})
        orders = list(extended_orders)
        for tau_hat in tau_hats:
            self.validate_tau(tau_hat)
            for order in orders:
                self.posterior_vector(tau_hat, order)
        return len(self._tables)

    def __repr__(self) -> str:
        return (
            f"<ExecutionCore |D|={len(self.database)} max_tau={self.max_tau} "
            f"tables={len(self._tables)} index={'built' if self._index else 'lazy'}>"
        )
