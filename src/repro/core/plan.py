"""Unified query-execution core for the online stage of Algorithm 1.

Steps 2–4 of Algorithm 1 (GBD computation, posterior lookup, γ-thresholding)
used to be implemented twice — once as the per-pair Python loop of
:meth:`~repro.core.search.GBDASearch.query` and again, vectorized, in the
serving engine's ``_score``.  :class:`ExecutionCore` implements them exactly
once:

* **candidate generation** — all GBDs come from the columnar branch index
  (:meth:`~repro.db.index.BranchInvertedIndex.gbd_array` /
  :meth:`~repro.db.index.BranchInvertedIndex.gbd_matrix`), with the optional
  branch lower-bound filter (``GBD > 2 τ̂`` ⇒ ``GED > τ̂``) applied as a
  mask instead of a separate scan — the pruned path no longer recomputes
  any GBD;
* **posterior lookup** — two interchangeable, bit-identical strategies,
  chosen per call by estimated cost.  *Tables*: dense ``(τ̂, |V'1|)``
  posterior vectors from :meth:`GBDAEstimator.posterior_row` (each entry is
  the scalar :meth:`GBDAEstimator.posterior`), stacked into order-indexed
  lookup matrices plus, per ``(τ̂, γ)``, boolean acceptance matrices — one
  fancy index classifies a whole GBD matrix.  *Direct*: evaluate only the
  distinct ``(GBD, |V'1|)`` pairs actually present (cached across queries)
  — never worse than the per-pair loop, which keeps one-shot workloads
  with large τ̂ and few graphs fast while serving workloads amortise the
  tables;
* **γ-thresholding** — one vectorized comparison (or the acceptance matrix
  directly).

:meth:`execute` scores one query and returns dense per-graph results;
:meth:`execute_batch` scores a τ̂/γ-sorted batch through one ``(Q, D)``
intersection pass and contiguous group views, optionally skipping the full
posterior materialisation when the caller only needs accepted graphs and
their scores (``need="accepted"`` — the serving engine's default mode).

Thread-safety: queries may run concurrently from threads sharing one engine
(the serving executor's ``"thread"`` mode).  The lookup-table caches are
published as immutable ``(array, frozenset-of-filled-orders)`` pairs swapped
atomically under a writer lock, so a reader either sees a table that
provably contains every row it needs or takes the lock and fills the gap —
never a torn or half-filled table.

Because the core reads positions and *global* graph ids from the store, it
works unchanged over id-preserving shard views
(:meth:`~repro.db.database.GraphDatabase.shard`): per-shard
:class:`CandidateScores` speak the global id space and merge by union.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.estimator import GBDAEstimator
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import SimilarityQuery
from repro.exceptions import SearchError

__all__ = ["CandidateScores", "ExecutionCore"]

#: A published lookup table: the dense matrix plus the orders whose rows
#: are guaranteed filled *in that matrix* (immutable, swapped atomically).
_Table = Tuple[np.ndarray, FrozenSet[int]]

#: Fill factor: build table rows only when their one-time cost (Σ |V'1|+1
#: posterior evaluations) is within this multiple of the direct per-pair
#: work of the current call — serving workloads cross the bar immediately,
#: one-shot large-τ̂ experiment queries never pay for rows they don't use.
_TABLE_COST_FACTOR = 4


@dataclass
class CandidateScores:
    """Dense per-position output of one query's online stage.

    All arrays are aligned on store positions; ``graph_ids`` maps positions
    to global database ids (the identity for an unsharded database).
    """

    graph_ids: np.ndarray
    gbds: np.ndarray
    #: Per-position posteriors, or ``None`` when the caller asked for the
    #: accepted-only fast path (``need="accepted"``) — the accepted graphs'
    #: posteriors are then in :attr:`accepted_items`.
    posteriors: Optional[np.ndarray]
    accepted: np.ndarray
    #: Boolean survival mask of the branch lower-bound filter, or ``None``
    #: when pruning was off (every graph was scored).
    eligible: Optional[np.ndarray]
    #: Pre-extracted accepted (ids, posteriors) lists, filled by the batched
    #: path (one group-level ``nonzero`` instead of per-query scans).
    accepted_items: Optional[Tuple[List[int], List[float]]] = None

    def candidate_positions(self) -> np.ndarray:
        """Positions that were actually scored (all, unless pruning masked some)."""
        if self.eligible is None:
            return np.arange(len(self.gbds))
        return np.flatnonzero(self.eligible)

    def accepted_id_set(self) -> frozenset:
        """The accepted global graph ids as a frozenset."""
        if self.accepted_items is not None:
            return frozenset(self.accepted_items[0])
        return frozenset(self.graph_ids[self.accepted].tolist())

    def scores_dict(self, which: str = "candidates") -> Dict[int, float]:
        """Posterior scores keyed by global id: ``"candidates"`` or ``"accepted"``."""
        if which == "accepted":
            if self.accepted_items is not None:
                return dict(zip(*self.accepted_items))
            positions = np.flatnonzero(self.accepted)
        else:
            positions = self.candidate_positions()
        if self.posteriors is None:
            raise ValueError(
                "per-candidate posteriors were not materialised "
                "(scored with need='accepted')"
            )
        return dict(
            zip(self.graph_ids[positions].tolist(), self.posteriors[positions].tolist())
        )


class ExecutionCore:
    """Single implementation of Algorithm 1's online steps over a database.

    Parameters
    ----------
    database:
        The graph database (or id-preserving shard view) to score.
    estimator:
        A :class:`GBDAEstimator` built from fitted Λ2/Λ3 priors.
    max_tau:
        Largest similarity threshold supported by the priors.
    error_class:
        Exception type raised on invalid thresholds — :class:`SearchError`
        for the search wrapper, :class:`ServingError` for the engine.
    index:
        Optional pre-built :class:`BranchInvertedIndex`; built lazily on
        first use otherwise.
    """

    def __init__(
        self,
        database: GraphDatabase,
        estimator: GBDAEstimator,
        *,
        max_tau: int,
        error_class: Type[Exception] = SearchError,
        index: Optional[BranchInvertedIndex] = None,
    ) -> None:
        self.database = database
        self.estimator = estimator
        self.max_tau = int(max_tau)
        self.error_class = error_class
        self._index = index
        self._tables: Dict[Tuple[int, int], np.ndarray] = {}
        # Published (matrix, frozen filled-order set) pairs per τ̂ (resp.
        # per (τ̂, γ) for the boolean acceptance variants) — see the module
        # docstring for the concurrency protocol.
        self._luts: Dict[int, _Table] = {}
        self._accept_luts: Dict[Tuple[int, float], _Table] = {}
        self._table_lock = threading.Lock()
        # Direct-evaluation cache: (τ̂, |V'1|, ϕ) -> posterior.  Writes are
        # idempotent (same float recomputed), so no lock is needed.
        self._pair_cache: Dict[Tuple[int, int, int], float] = {}
        # Snapshot-derived caches keyed by snapshot length.  The store only
        # ever appends, so one length identifies one prefix — entries are
        # idempotent and concurrent duplicate computation is benign (no
        # check-then-invalidate races across threads holding different
        # snapshots).
        self._distinct_orders: Dict[int, np.ndarray] = {}
        self._orders_rows: Dict[Tuple[int, int], np.ndarray] = {}

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_table_lock"]  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._table_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # index and posterior tables
    # ------------------------------------------------------------------ #
    @property
    def index(self) -> Optional[BranchInvertedIndex]:
        """The branch index, or ``None`` when no query has needed it yet."""
        return self._index

    def ensure_index(self) -> BranchInvertedIndex:
        """Return the branch index, building it on first use."""
        if self._index is None:
            self._index = BranchInvertedIndex(self.database)
        return self._index

    @property
    def tables(self) -> Dict[Tuple[int, int], np.ndarray]:
        """The materialised ``(τ̂, |V'1|) -> posterior vector`` cache."""
        return self._tables

    def posterior_vector(self, tau_hat: int, extended_order: int) -> np.ndarray:
        """Return the dense posterior vector for one ``(τ̂, |V'1|)`` pair.

        ``vector[ϕ] = Pr[GED <= τ̂ | GBD = ϕ]`` for ``ϕ in 0..|V'1|``;
        computed on first use via :meth:`GBDAEstimator.posterior_row` and
        cached for the lifetime of the core.  (A concurrent duplicate
        computation is idempotent — both threads store the same floats.)
        """
        key = (int(tau_hat), max(int(extended_order), 1))
        vector = self._tables.get(key)
        if vector is None:
            vector = np.asarray(self.estimator.posterior_row(key[0], key[1]), dtype=np.float64)
            self._tables[key] = vector
        return vector

    def validate_tau(self, tau_hat: int) -> None:
        """Reject thresholds beyond the pre-computed priors."""
        if tau_hat > self.max_tau:
            raise self.error_class(
                f"τ̂={tau_hat} exceeds the pre-computed maximum {self.max_tau}; "
                "re-run the offline stage with a larger max_tau"
            )

    # ------------------------------------------------------------------ #
    # order-row caches (derived from one store snapshot per query)
    # ------------------------------------------------------------------ #
    def _store_distinct_orders(self, db_orders: np.ndarray) -> np.ndarray:
        """Distinct ``|V_G|`` values of the snapshot (size-keyed cache)."""
        if len(self._distinct_orders) > 64:
            self._distinct_orders = {}
        key = len(db_orders)
        distinct = self._distinct_orders.get(key)
        if distinct is None:
            distinct = np.unique(db_orders)
            self._distinct_orders[key] = distinct
        return distinct

    def _orders_row(self, db_orders: np.ndarray, num_query_vertices: int) -> np.ndarray:
        """Cached dense ``max(|V_Q|, |V_G|)`` row for one query size."""
        if len(self._orders_rows) > 256:
            self._orders_rows = {}
        key = (num_query_vertices, len(db_orders))
        row = self._orders_rows.get(key)
        if row is None:
            row = np.maximum(num_query_vertices, db_orders)
            self._orders_rows[key] = row
        return row

    # ------------------------------------------------------------------ #
    # posterior strategies: dense tables vs direct pair evaluation
    # ------------------------------------------------------------------ #
    def _use_tables(self, tau_hat: int, needed_orders: List[int], num_scored: int) -> bool:
        """Whether filling table rows beats direct evaluation for this call.

        A missing ``(τ̂, |V'1|)`` row costs ``|V'1| + 1`` scalar posterior
        evaluations; direct evaluation costs at most one per scored cell.
        Rows pay off when their one-time cost is within
        ``_TABLE_COST_FACTOR`` times the direct work — always true for
        serving-sized databases, never for one-shot large-τ̂ queries over a
        handful of graphs (the paper-experiment shape).
        """
        missing = sum(
            order + 1
            for order in needed_orders
            if (tau_hat, max(order, 1)) not in self._tables
        )
        return missing <= _TABLE_COST_FACTOR * num_scored

    def _posteriors_direct(
        self, tau_hat: int, orders: np.ndarray, gbds: np.ndarray
    ) -> np.ndarray:
        """Posteriors for exactly the distinct ``(|V'1|, ϕ)`` pairs present.

        Never evaluates a pair the per-pair reference loop would not have
        evaluated; repeated pairs (across graphs, queries, and calls) are
        served from the idempotent pair cache.  Values come from the same
        :meth:`GBDAEstimator.posterior` as the table rows — bit-identical
        either way.
        """
        if orders.size == 0:
            return np.zeros(orders.shape, dtype=np.float64)
        base = int(orders.max()) + 2  # gbd <= order < base, so codes are unique
        codes = (orders.astype(np.int64) * base + gbds).ravel()
        unique_codes, inverse = np.unique(codes, return_inverse=True)
        cache = self._pair_cache
        posterior = self.estimator.posterior
        values = np.empty(len(unique_codes), dtype=np.float64)
        for slot, code in enumerate(unique_codes.tolist()):
            order, gbd = divmod(code, base)
            key = (tau_hat, order, gbd)
            value = cache.get(key)
            if value is None:
                value = posterior(gbd, tau_hat, order)
                cache[key] = value
            values[slot] = value
        return values[inverse].reshape(orders.shape)

    def _published_table(
        self,
        registry: Dict,
        registry_key,
        needed_orders: List[int],
        fill_row,
        dtype,
    ) -> np.ndarray:
        """Return a published lookup matrix covering ``needed_orders``.

        Fast path: the current ``(matrix, filled)`` publication already
        covers every needed row — return it without locking (the frozenset
        travels with the exact matrix it describes, so the pair can never
        be torn).  Slow path: take the writer lock, copy-and-extend, fill
        the missing rows via ``fill_row(matrix, order)``, and publish a new
        pair.  Rows are only ever read after appearing in a publication's
        frozenset, so in-place fills before publishing are invisible.
        """
        max_order = max(needed_orders) if needed_orders else 1
        published = registry.get(registry_key)
        if published is not None:
            matrix, filled = published
            if matrix.shape[0] > max_order and filled.issuperset(needed_orders):
                return matrix
        with self._table_lock:
            published = registry.get(registry_key)
            if published is None:
                matrix = None
                filled = frozenset()
            else:
                matrix, filled = published
            missing = [order for order in needed_orders if order not in filled]
            if matrix is None or matrix.shape[0] <= max_order:
                grown = np.zeros((max_order + 1, max_order + 2), dtype=dtype)
                if matrix is not None:
                    grown[: matrix.shape[0], : matrix.shape[1]] = matrix
                matrix = grown
            for order in missing:
                fill_row(matrix, order)
            registry[registry_key] = (matrix, filled | set(missing))
            return matrix

    def _lut_for(self, tau_hat: int, needed_orders: List[int]) -> np.ndarray:
        """``lut[order, gbd]`` posterior matrix for τ̂ (rows as needed)."""
        tau_hat = int(tau_hat)

        def fill_row(matrix, order):
            vector = self.posterior_vector(tau_hat, order)
            matrix[order, : len(vector)] = vector

        return self._published_table(self._luts, tau_hat, needed_orders, fill_row, np.float64)

    def _accept_lut_for(
        self, tau_hat: int, gamma: float, needed_orders: List[int]
    ) -> np.ndarray:
        """Boolean ``lut[order, gbd] = (Φ >= γ)`` acceptance matrix.

        Derived row-by-row from :meth:`posterior_vector`, so decisions are
        exactly Step 4's ``posterior >= γ`` — but a whole GBD matrix is
        classified by one (cheap, boolean) fancy index without
        materialising its posteriors.
        """
        tau_hat = int(tau_hat)
        gamma = float(gamma)

        def fill_row(matrix, order):
            vector = self.posterior_vector(tau_hat, order)
            matrix[order, : len(vector)] = vector >= gamma

        return self._published_table(
            self._accept_luts, (tau_hat, gamma), needed_orders, fill_row, bool
        )

    # ------------------------------------------------------------------ #
    # Steps 2–4 of Algorithm 1
    # ------------------------------------------------------------------ #
    def execute(
        self,
        query: SimilarityQuery,
        *,
        query_branches: Optional[Counter] = None,
        use_pruning: bool = False,
    ) -> CandidateScores:
        """Score one query against every database graph; return dense results."""
        self.validate_tau(query.tau_hat)
        graph = query.query_graph
        branches = query.branches() if query_branches is None else query_branches
        store = self.ensure_index().store
        # One coherent snapshot per query: a concurrent database addition
        # becomes visible between queries, never mid-computation.
        csr, db_orders, global_ids = store.view()
        num_query_vertices = graph.num_vertices
        orders = self._orders_row(db_orders, num_query_vertices)
        gbds = orders - store.intersection_row(branches, view=(csr, len(db_orders)))
        needed_orders = np.maximum(
            num_query_vertices, self._store_distinct_orders(db_orders)
        ).tolist()
        if self._use_tables(query.tau_hat, needed_orders, len(gbds)):
            lut = self._lut_for(query.tau_hat, needed_orders)
            posteriors = lut.take(orders * lut.shape[1] + gbds)
        else:
            posteriors = self._posteriors_direct(query.tau_hat, orders, gbds)
        eligible = gbds <= 2 * query.tau_hat if use_pruning else None
        accepted = posteriors >= query.gamma
        if eligible is not None:
            accepted &= eligible
        return CandidateScores(global_ids, gbds, posteriors, accepted, eligible)

    def execute_batch(
        self,
        queries: Sequence[SimilarityQuery],
        *,
        query_branches: Optional[Sequence[Counter]] = None,
        use_pruning: bool = False,
        need: str = "full",
    ) -> List[CandidateScores]:
        """Score a batch of queries; return per-query results in input order.

        True batching: the ``(Q, D)`` intersection matrix is produced by one
        columnar pass (τ̂-independent), queries are processed in τ̂/γ-sorted
        order so every ``(τ̂, γ)`` group is a contiguous *view* sharing one
        lookup table, and all accepted pairs of a group are extracted with a
        single ``nonzero`` scan.  With ``need="accepted"`` the boolean
        acceptance tables classify the whole matrix directly and posteriors
        are materialised only for accepted graphs — the serving engine's
        default mode; ``need="full"`` keeps dense per-graph posteriors.
        Accepted sets and scores are identical to calling :meth:`execute`
        per query either way.
        """
        queries = list(queries)
        for query in queries:
            self.validate_tau(query.tau_hat)
        if query_branches is None:
            query_branches = [query.branches() for query in queries]
        store = self.ensure_index().store
        # One coherent snapshot for the whole batch (see execute()).
        csr, db_orders, global_ids = store.view()
        distinct_orders = self._store_distinct_orders(db_orders)

        # Sort by (τ̂, γ) so each parameter group is a contiguous slice —
        # group operations below are views, never fancy-index copies.
        sorted_positions = sorted(
            range(len(queries)), key=lambda i: (queries[i].tau_hat, queries[i].gamma)
        )

        # Step 2 for the whole batch at once.
        vertices = [queries[i].query_graph.num_vertices for i in sorted_positions]
        intersections = store.intersection_matrix(
            [query_branches[i] for i in sorted_positions], view=(csr, len(db_orders))
        )
        orders_matrix = np.vstack(
            [self._orders_row(db_orders, num_vertices) for num_vertices in vertices]
        )
        gbd_matrix = orders_matrix - intersections

        # Steps 3–4 per contiguous (τ̂, γ) group.
        results: List[Optional[CandidateScores]] = [None] * len(queries)
        start = 0
        total = len(sorted_positions)
        while start < total:
            first = queries[sorted_positions[start]]
            tau_hat, gamma = first.tau_hat, first.gamma
            end = start
            while (
                end < total
                and queries[sorted_positions[end]].tau_hat == tau_hat
                and queries[sorted_positions[end]].gamma == gamma
            ):
                end += 1
            group_orders = orders_matrix[start:end]
            group_gbds = gbd_matrix[start:end]
            needed_orders = np.unique(
                np.maximum(
                    np.asarray(vertices[start:end], dtype=np.int64)[:, None],
                    distinct_orders[None, :],
                )
            ).tolist()
            posterior_group: Optional[np.ndarray]
            if not self._use_tables(tau_hat, needed_orders, group_gbds.size):
                posterior_group = self._posteriors_direct(tau_hat, group_orders, group_gbds)
                accepted_group = posterior_group >= gamma
            elif need == "accepted":
                accept_lut = self._accept_lut_for(tau_hat, gamma, needed_orders)
                flat_keys = group_orders * accept_lut.shape[1] + group_gbds
                accepted_group = accept_lut.take(flat_keys)
                posterior_group = None
            else:
                lut = self._lut_for(tau_hat, needed_orders)
                flat_keys = group_orders * lut.shape[1] + group_gbds
                posterior_group = lut.take(flat_keys)
                accepted_group = posterior_group >= gamma
            eligible_group = group_gbds <= 2 * tau_hat if use_pruning else None
            if eligible_group is not None:
                accepted_group &= eligible_group

            # Extract every accepted (query, graph) pair of the group with
            # one flat nonzero scan instead of per-query mask passes.
            num_graphs = accepted_group.shape[1]
            hit_flat = np.flatnonzero(accepted_group)
            hit_rows, hit_cols = np.divmod(hit_flat, num_graphs)
            hit_ids = global_ids[hit_cols].tolist()
            if posterior_group is not None:
                hit_posteriors = posterior_group.ravel()[hit_flat].tolist()
            else:
                hit_orders = group_orders.ravel()[hit_flat]
                hit_gbds = group_gbds.ravel()[hit_flat]
                lut = self._lut_for(tau_hat, np.unique(hit_orders).tolist())
                hit_posteriors = lut[hit_orders, hit_gbds].tolist()
            hit_bounds = np.searchsorted(hit_rows, np.arange(end - start + 1))
            for row in range(end - start):
                lo, hi = hit_bounds[row], hit_bounds[row + 1]
                results[sorted_positions[start + row]] = CandidateScores(
                    global_ids,
                    group_gbds[row],
                    posterior_group[row] if posterior_group is not None else None,
                    accepted_group[row],
                    eligible_group[row] if eligible_group is not None else None,
                    accepted_items=(hit_ids[lo:hi], hit_posteriors[lo:hi]),
                )
            start = end
        return results  # type: ignore[return-value]

    def warm(
        self, tau_hats: Iterable[int], extended_orders: Optional[Iterable[int]] = None
    ) -> int:
        """Pre-compute posterior vectors ahead of traffic; return the table count.

        ``extended_orders`` defaults to the distinct vertex counts present
        in the database — the exact orders hit by queries no larger than the
        largest stored graph; larger queries extend the tables lazily.
        """
        if extended_orders is None:
            extended_orders = sorted({entry.num_vertices for entry in self.database})
        orders = list(extended_orders)
        for tau_hat in tau_hats:
            self.validate_tau(tau_hat)
            for order in orders:
                self.posterior_vector(tau_hat, order)
        return len(self._tables)

    def __repr__(self) -> str:
        return (
            f"<ExecutionCore |D|={len(self.database)} max_tau={self.max_tau} "
            f"tables={len(self._tables)} index={'built' if self._index else 'lazy'}>"
        )
