"""Exact combinatorial primitives used by the GBDA probabilistic model.

The closed forms of Ω1–Ω4 (Appendix C of the paper) are ratios of products
of binomial coefficients whose individual factors can be astronomically
large for graphs with thousands of vertices (e.g. ``C(C(100000, 2), 30)``)
while the resulting probabilities are tiny.  Floating-point evaluation of
such expressions suffers from overflow and catastrophic cancellation (Ω2 is
an alternating inclusion–exclusion sum), so every primitive here works with
exact Python integers / :class:`fractions.Fraction` values and converts to
``float`` only at the very end.

Real-valued continuations (log-gamma based binomials, harmonic numbers,
digamma) are also provided for the τ-derivatives required by the Jeffreys
prior (Appendix C-B).
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache

from scipy import special as _special

__all__ = [
    "binomial",
    "log_binomial",
    "multiset_coefficient",
    "hypergeometric_pmf",
    "harmonic_number",
    "digamma",
    "log_factorial",
]


def binomial(n: int, k: int) -> int:
    """Exact binomial coefficient ``C(n, k)``; 0 outside the valid range."""
    if k < 0 or n < 0 or k > n:
        return 0
    return math.comb(n, k)


def log_binomial(n: float, k: float) -> float:
    """Real-valued ``log C(n, k)`` via log-gamma; ``-inf`` outside the support.

    Used only by the continuous (Gamma-function) continuation needed for the
    Fisher-information derivatives; all probability mass computations use the
    exact integer :func:`binomial`.
    """
    if k < 0 or n < 0 or k > n:
        return float("-inf")
    return float(
        _special.gammaln(n + 1.0) - _special.gammaln(k + 1.0) - _special.gammaln(n - k + 1.0)
    )


def multiset_coefficient(n: int, k: int) -> int:
    """Number of multisets of size ``k`` from ``n`` symbols: ``C(n + k - 1, k)``."""
    if n <= 0:
        return 1 if k == 0 else 0
    return binomial(n + k - 1, k)


def hypergeometric_pmf(x: int, population: int, successes: int, draws: int) -> Fraction:
    """Exact hypergeometric pmf ``H(x; M, K, N)`` of Equation (32).

    ``H(x; M, K, N) = C(K, x) * C(M - K, N - x) / C(M, N)`` — the probability
    of drawing exactly ``x`` successes in ``N`` draws without replacement
    from a population of ``M`` items containing ``K`` successes.  Returns an
    exact :class:`~fractions.Fraction`; 0 when the configuration is
    impossible.
    """
    denominator = binomial(population, draws)
    if denominator == 0:
        return Fraction(0)
    numerator = binomial(successes, x) * binomial(population - successes, draws - x)
    return Fraction(numerator, denominator)


@lru_cache(maxsize=65536)
def harmonic_number(n: float) -> float:
    """Generalised harmonic number ``H(n) = psi(n + 1) + gamma``.

    The paper's derivative formulas (Equations 36–41) are written in terms of
    harmonic numbers of possibly non-integer arguments; the digamma-based
    continuation is the standard one.  ``H(0) = 0``; negative arguments where
    digamma has poles return ``nan``.
    """
    if n == 0:
        return 0.0
    value = _special.digamma(n + 1.0) + float(_special.digamma(1.0)) * -1.0
    # digamma(1) == -euler_gamma, so the line above equals psi(n+1) + gamma.
    return float(value)


def digamma(x: float) -> float:
    """Digamma function ``psi(x)`` (thin wrapper around scipy)."""
    return float(_special.digamma(x))


def log_factorial(n: int) -> float:
    """``log(n!)`` via log-gamma (real-valued, for scoring only)."""
    if n < 0:
        raise ValueError("factorial of a negative number is undefined")
    return float(_special.gammaln(n + 1.0))
