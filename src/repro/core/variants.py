"""GBDA ablation variants V1 and V2 (Section VII-D).

* **GBDA-V1** replaces the per-pair extended order ``|V'1| = max(|V_Q|,
  |V_G|)`` in Λ1 and Λ3 with the *average* vertex count of a small sample of
  ``α`` database graphs.  It trades per-pair fidelity for an even cheaper
  online stage; the paper shows it loses F1 for small thresholds (τ̂ ≤ 4).
* **GBDA-V2** replaces the GBD with the weighted variant VGBD
  (Equation 26) with a user-chosen weight ``w`` when computing Λ1 and Λ2.

Both variants reuse the entire GBDA machinery and only override the two
hooks that differ, so their code doubles as documentation of exactly where
the ablations deviate from Algorithm 1.
"""

from __future__ import annotations

import math
import random
import time
from typing import Dict, List, Optional

from repro.core.branches import branch_multiset
from repro.core.search import GBDASearch, SearchResult
from repro.db.database import GraphDatabase
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import SearchError
from repro.stats.sampling import sample_items, sample_pairs

__all__ = ["GBDAV1Search", "GBDAV2Search"]


class GBDAV1Search(GBDASearch):
    """GBDA-V1: fixed extended order taken from a database sample.

    Parameters
    ----------
    alpha:
        Number of database graphs sampled to compute the average vertex
        count used as the (single) extended order |V'1|.
    """

    method_name = "GBDA-V1"

    def __init__(self, database: GraphDatabase, *, alpha: int = 50, **kwargs) -> None:
        super().__init__(database, **kwargs)
        if alpha < 1:
            raise SearchError("GBDA-V1 requires a positive sample size α")
        self.alpha = int(alpha)
        self.fixed_extended_order: Optional[int] = None

    def fit(self, *, extended_orders=None) -> "GBDAV1Search":
        rng = random.Random(self.seed)
        sampled = sample_items(self.database.graphs(), self.alpha, seed=rng)
        average_vertices = sum(graph.num_vertices for graph in sampled) / len(sampled)
        self.fixed_extended_order = max(int(round(average_vertices)), 1)
        # Λ3 only needs the single fixed order; Λ2 is unchanged.
        super().fit(extended_orders=[self.fixed_extended_order])
        return self

    def query(self, query: SimilarityQuery) -> SearchResult:
        """Identical to Algorithm 1 except every pair uses the fixed |V'1|."""
        self._require_fitted()
        if query.tau_hat > self.max_tau:
            raise SearchError(
                f"τ̂={query.tau_hat} exceeds the pre-computed maximum {self.max_tau}"
            )
        start = time.perf_counter()
        query_branches = branch_multiset(query.query_graph)
        gbd_values: Dict[int, int] = {}
        posteriors: Dict[int, float] = {}
        accepted: List[int] = []
        for entry in self.database:
            gbd_value = self.database.gbd_to(
                query.query_graph, entry.graph_id, query_branches=query_branches
            )
            gbd_values[entry.graph_id] = gbd_value
            posterior = self.estimator.posterior(
                gbd_value, query.tau_hat, self.fixed_extended_order
            )
            posteriors[entry.graph_id] = posterior
            if posterior >= query.gamma:
                accepted.append(entry.graph_id)
        elapsed = time.perf_counter() - start
        answer = QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(accepted),
            scores=dict(posteriors),
            elapsed_seconds=elapsed,
        )
        return SearchResult(answer=answer, gbd_values=gbd_values, posteriors=posteriors)


class GBDAV2Search(GBDASearch):
    """GBDA-V2: the weighted VGBD of Equation (26) replaces GBD everywhere.

    Parameters
    ----------
    weight:
        The multiplier ``w`` applied to the branch-intersection size.  The
        paper evaluates ``w ∈ {0.1, 0.5}``.
    """

    method_name = "GBDA-V2"

    def __init__(self, database: GraphDatabase, *, weight: float = 0.5, **kwargs) -> None:
        super().__init__(database, **kwargs)
        if weight < 0:
            raise SearchError("the VGBD weight must be non-negative")
        self.weight = float(weight)

    def fit(self, *, extended_orders=None) -> "GBDAV2Search":
        super().fit(extended_orders=extended_orders)
        # Re-fit Λ2 on VGBD samples: the prior must describe the statistic
        # actually observed online (Section VII-D).
        graphs = self.database.graphs()
        rng = random.Random(self.seed)
        pair_ids = sample_pairs(list(range(len(graphs))), self.num_prior_pairs, seed=rng)
        vgbd_samples = []
        for i, j in pair_ids:
            value = self.database.vgbd_to(graphs[i], j, self.weight)
            vgbd_samples.append(int(math.floor(value + 0.5)))
        if vgbd_samples:
            self.gbd_prior.fit_from_samples(
                vgbd_samples, max_value=self.database.max_vertices
            )
        return self

    def query(self, query: SimilarityQuery) -> SearchResult:
        """Algorithm 1 with VGBD in Steps 2 and 3."""
        self._require_fitted()
        if query.tau_hat > self.max_tau:
            raise SearchError(
                f"τ̂={query.tau_hat} exceeds the pre-computed maximum {self.max_tau}"
            )
        start = time.perf_counter()
        query_branches = branch_multiset(query.query_graph)
        gbd_values: Dict[int, int] = {}
        posteriors: Dict[int, float] = {}
        accepted: List[int] = []
        for entry in self.database:
            vgbd_value = self.database.vgbd_to(
                query.query_graph, entry.graph_id, self.weight, query_branches=query_branches
            )
            rounded = max(int(math.floor(vgbd_value + 0.5)), 0)
            gbd_values[entry.graph_id] = rounded
            extended_order = max(query.query_graph.num_vertices, entry.num_vertices)
            posterior = self.estimator.posterior(rounded, query.tau_hat, extended_order)
            posteriors[entry.graph_id] = posterior
            if posterior >= query.gamma:
                accepted.append(entry.graph_id)
        elapsed = time.perf_counter() - start
        answer = QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(accepted),
            scores=dict(posteriors),
            elapsed_seconds=elapsed,
        )
        return SearchResult(answer=answer, gbd_values=gbd_values, posteriors=posteriors)
