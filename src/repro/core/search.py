"""GBDA graph similarity search (Algorithm 1).

The search proceeds in two stages, mirroring Section VI:

* **Offline** (:meth:`GBDASearch.fit`): pre-compute the GBD prior Λ2 (GMM
  over sampled pair GBDs, Section V-B) and the GED prior Λ3 (Jeffreys prior
  over the (τ, |V'1|) grid, Section V-C).
* **Online** (:meth:`GBDASearch.query`): for every database graph, compute
  ``GBD(Q, G)`` from pre-computed branch multisets (Step 2, ``O(nd)``),
  evaluate ``Φ = Pr[GED <= τ̂ | GBD = ϕ]`` (Step 3, ``O(τ̂³)``), and accept
  the graph when ``Φ >= γ`` (Step 4).

An optional branch-index pruning step (``use_index_pruning=True``) skips the
probabilistic scoring for graphs whose GBD already certifies ``GED > τ̂``
(one edit operation changes at most two branches); it is off by default to
stay faithful to Algorithm 1 and is exercised by the ablation benchmark.

The online steps themselves live in the shared
:class:`~repro.core.plan.ExecutionCore` (one implementation for this
search, the batched serving engine, and shard-parallel scoring);
:meth:`GBDASearch.query_reference` keeps the literal per-pair loop as the
bit-identical baseline the vectorized paths are verified against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.branches import branch_multiset
from repro.core.estimator import GBDAEstimator
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.core.plan import ExecutionCore
from repro.db.database import GraphDatabase
from repro.db.index import BranchInvertedIndex
from repro.db.query import QueryAnswer, SimilarityQuery
from repro.exceptions import SearchError
from repro.graphs.graph import Graph

__all__ = ["GBDASearch", "SearchResult"]


@dataclass
class SearchResult:
    """Detailed output of one GBDA query (a superset of :class:`QueryAnswer`)."""

    answer: QueryAnswer
    gbd_values: Dict[int, int]
    posteriors: Dict[int, float]

    @property
    def accepted_ids(self):
        """Ids of the accepted graphs (delegates to the answer)."""
        return self.answer.accepted_ids


class GBDASearch:
    """Graph similarity search with Graph Branch Distance Approximation.

    Parameters
    ----------
    database:
        The graph database ``D`` to search (branch multisets pre-computed).
    max_tau:
        Largest similarity threshold the offline priors must support.
    num_prior_pairs:
        Number of pairs ``N`` sampled when estimating the GBD prior.
    num_gmm_components:
        Number of mixture components ``K``.
    seed:
        Seed for the offline sampling / GMM initialisation.
    use_index_pruning:
        When true, graphs with ``GBD > 2 τ̂`` are rejected without scoring.
    backend:
        EM backend for the GBD-prior fit (``"auto"``, ``"numpy"`` or
        ``"python"``); forwarded to :class:`~repro.core.gbd_prior.GBDPrior`.
    num_workers:
        Worker processes for the offline hot loops (pair-GBD sampling and
        the GED-prior grid); ``None``/1 keeps the serial paths.  Any worker
        count produces identical priors (deterministic merges).
    """

    method_name = "GBDA"

    def __init__(
        self,
        database: GraphDatabase,
        *,
        max_tau: int = 10,
        num_prior_pairs: int = 10_000,
        num_gmm_components: int = 3,
        seed: int = 0,
        use_index_pruning: bool = False,
        backend: str = "auto",
        num_workers: Optional[int] = None,
    ) -> None:
        if len(database) == 0:
            raise SearchError("cannot build a search over an empty database")
        self.database = database
        self.max_tau = int(max_tau)
        self.num_prior_pairs = int(num_prior_pairs)
        self.num_gmm_components = int(num_gmm_components)
        self.seed = seed
        self.use_index_pruning = use_index_pruning
        self.backend = backend
        self.num_workers = num_workers

        self.gbd_prior: Optional[GBDPrior] = None
        self.ged_prior: Optional[GEDPrior] = None
        self.estimator: Optional[GBDAEstimator] = None
        self._core: Optional[ExecutionCore] = None
        self.offline_seconds: float = 0.0

    @property
    def _index(self) -> Optional[BranchInvertedIndex]:
        """The branch index, or ``None`` until the first query builds it."""
        return self._core.index if self._core is not None else None

    # ------------------------------------------------------------------ #
    # offline stage (Step 1 of Algorithm 1)
    # ------------------------------------------------------------------ #
    def fit(self, *, extended_orders: Optional[Iterable[int]] = None) -> "GBDASearch":
        """Pre-compute the priors Λ2 and Λ3 (the * step of Algorithm 1).

        ``extended_orders`` optionally restricts the GED-prior grid; by
        default every distinct vertex count present in the database is
        covered, which is the worst case the paper's Table V analyses.
        """
        start = time.perf_counter()
        graphs = self.database.graphs()

        self.gbd_prior = GBDPrior(
            num_components=self.num_gmm_components,
            num_pairs=self.num_prior_pairs,
            seed=self.seed,
            backend=self.backend,
            num_workers=self.num_workers,
        ).fit(graphs)

        if extended_orders is None:
            extended_orders = sorted({graph.num_vertices for graph in graphs})
        self.ged_prior = GEDPrior(
            max_tau=self.max_tau,
            num_vertex_labels=self.database.num_vertex_labels,
            num_edge_labels=self.database.num_edge_labels,
        ).fit(extended_orders, num_workers=self.num_workers)

        self.estimator = GBDAEstimator(
            self.gbd_prior,
            self.ged_prior,
            self.database.num_vertex_labels,
            self.database.num_edge_labels,
        )
        self._core = ExecutionCore(
            self.database, self.estimator, max_tau=self.max_tau, error_class=SearchError
        )
        if self.use_index_pruning:
            self._core.ensure_index()
        self.offline_seconds = time.perf_counter() - start
        return self

    @property
    def is_fitted(self) -> bool:
        """Whether the offline stage has been executed."""
        return self.estimator is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise SearchError("GBDASearch.fit must be called before querying")

    # ------------------------------------------------------------------ #
    # online stage (Steps 2–4 of Algorithm 1)
    # ------------------------------------------------------------------ #
    def query(self, query: SimilarityQuery) -> SearchResult:
        """Answer one similarity query and return the detailed result.

        A thin wrapper over the shared :class:`ExecutionCore`: all GBDs come
        from the columnar branch index in one vectorized pass (the pruned
        path reuses them for the bound filter instead of recomputing), and
        posteriors come from the shared ``(τ̂, |V'1|)`` lookup tables.
        Outputs are the historical dicts, bit-identical to the per-pair
        reference loop (:meth:`query_reference`).
        """
        self._require_fitted()
        self._core.validate_tau(query.tau_hat)
        start = time.perf_counter()
        query_branches = query.branches()
        # When pruning is enabled after fit(), the core builds the index
        # lazily on this first pruned query instead of silently full-scanning
        # (it subscribes to the database, so it tracks later additions).
        scored = self._core.execute(
            query, query_branches=query_branches, use_pruning=self.use_index_pruning
        )

        positions = scored.candidate_positions()
        graph_ids = scored.graph_ids[positions].tolist()
        gbd_values = dict(zip(graph_ids, scored.gbds[positions].tolist()))
        posteriors = dict(zip(graph_ids, scored.posteriors[positions].tolist()))
        accepted = scored.graph_ids[scored.accepted].tolist()

        elapsed = time.perf_counter() - start
        answer = QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(accepted),
            scores=dict(posteriors),
            elapsed_seconds=elapsed,
        )
        return SearchResult(answer=answer, gbd_values=gbd_values, posteriors=posteriors)

    def query_reference(self, query: SimilarityQuery) -> SearchResult:
        """Answer one query with the literal per-pair loop of Algorithm 1.

        This is the scalar reference implementation the vectorized paths are
        tested against (and the baseline of the throughput benchmarks): one
        branch-multiset merge and one :meth:`GBDAEstimator.posterior`
        evaluation per database graph, exactly as the paper writes Steps
        2–4.  Answers are bit-identical to :meth:`query`.
        """
        self._require_fitted()
        self._core.validate_tau(query.tau_hat)
        start = time.perf_counter()
        query_branches = branch_multiset(query.query_graph)

        candidate_ids: Sequence[int]
        if self.use_index_pruning:
            index = self._core.ensure_index()
            candidate_ids = index.candidates_by_gbd_bound(
                query.query_graph, query.tau_hat, query_branches=query_branches
            )
        else:
            candidate_ids = [entry.graph_id for entry in self.database]

        gbd_values: Dict[int, int] = {}
        posteriors: Dict[int, float] = {}
        accepted: List[int] = []
        for graph_id in candidate_ids:
            entry = self.database[graph_id]
            gbd_value = self.database.gbd_to(
                query.query_graph, graph_id, query_branches=query_branches
            )
            gbd_values[graph_id] = gbd_value
            extended_order = max(query.query_graph.num_vertices, entry.num_vertices)
            posterior = self.estimator.posterior(gbd_value, query.tau_hat, extended_order)
            posteriors[graph_id] = posterior
            if posterior >= query.gamma:
                accepted.append(graph_id)

        elapsed = time.perf_counter() - start
        answer = QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(accepted),
            scores=dict(posteriors),
            elapsed_seconds=elapsed,
        )
        return SearchResult(answer=answer, gbd_values=gbd_values, posteriors=posteriors)

    def query_topk(self, query: SimilarityQuery, k: Optional[int] = None) -> QueryAnswer:
        """Answer a top-k query: the ``k`` database graphs ranked by posterior.

        ``k`` defaults to ``query.top_k``.  The ranking (descending
        posterior, ties broken by ascending graph id) is computed by the
        shared core with bound-based early termination
        (:meth:`~repro.core.plan.ExecutionCore.execute_topk`) and equals the
        first ``k`` entries of :meth:`query_topk_reference` exactly.  With
        ``use_index_pruning`` the ranking covers only the branch-bound
        candidate set, mirroring :meth:`query`.
        """
        self._require_fitted()
        if k is None:
            k = query.top_k
        if k is None:
            raise SearchError("query_topk needs top_k on the query or an explicit k")
        start = time.perf_counter()
        ranking = self._core.execute_topk(query, k, use_pruning=self.use_index_pruning)
        return QueryAnswer(
            method=self.method_name,
            accepted_ids=frozenset(graph_id for graph_id, _score in ranking),
            scores=dict(ranking),
            elapsed_seconds=time.perf_counter() - start,
            ranking=ranking,
        )

    def query_topk_reference(self, query: SimilarityQuery, k: int) -> List:
        """Reference top-k ranking: full γ=0 scoring, sorted, first ``k``.

        Runs the literal per-pair loop (:meth:`query_reference`) with γ=0 —
        so every candidate is scored — and sorts by ``(-posterior, graph
        id)``.  This is the ground truth the early-terminating
        :meth:`query_topk` is verified against.
        """
        reference = self.query_reference(
            SimilarityQuery(query.query_graph, query.tau_hat, 0.0)
        )
        ranked = sorted(reference.posteriors.items(), key=lambda item: (-item[1], item[0]))
        return ranked[: int(k)]

    def search(self, query_graph: Graph, tau_hat: int, gamma: float = 0.9) -> QueryAnswer:
        """Convenience wrapper: build the query object and return just the answer."""
        return self.query(SimilarityQuery(query_graph, tau_hat, gamma)).answer

    # ------------------------------------------------------------------ #
    # introspection used by benchmarks
    # ------------------------------------------------------------------ #
    def posterior_for_pair(self, query_graph: Graph, graph_id: int, tau_hat: int) -> float:
        """Posterior ``Pr[GED <= τ̂ | GBD]`` for one (query, database graph) pair."""
        self._require_fitted()
        gbd_value = self.database.gbd_to(query_graph, graph_id)
        entry = self.database[graph_id]
        extended_order = max(query_graph.num_vertices, entry.num_vertices)
        return self.estimator.posterior(gbd_value, tau_hat, extended_order)

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        return f"<GBDASearch |D|={len(self.database)} max_tau={self.max_tau} ({state})>"
