"""Closed forms of Ω1–Ω4 and their τ-derivatives (Appendix C/E/F/G/H).

The four factors of the conditional ``Λ1 = Pr[GBD = ϕ | GED = τ]`` are

* ``Ω1(x, τ)``   — probability that a uniformly random minimal edit script of
  length τ on the extended graph relabels exactly ``x`` vertices (and hence
  ``τ - x`` edges).  Hypergeometric over the ``|V'| + C(|V'|, 2)`` editable
  elements of the complete extended graph (Lemma 1).
* ``Ω2(m, x, τ)`` — probability that the ``τ - x`` relabelled edges cover
  exactly ``m`` vertices; an inclusion–exclusion count over edge subsets of
  the complete graph (Lemma 2).
* ``Ω3(r, ϕ)``   — probability that ``r`` relabelled branches produce a
  branch distance of exactly ``ϕ``; the ball-pair colouring model with ``D``
  equiprobable branch types (Lemma 3).
* ``Ω4(x, r, m)`` — probability that the ``x`` relabelled vertices and the
  ``m`` edge-covered vertices overlap so that exactly ``r`` branches are
  touched; hypergeometric (Lemma 4).

All values are exact :class:`fractions.Fraction` numbers.  The τ-derivatives
``dΩ1/dτ`` and ``dΩ2/dτ`` follow the Gamma-function continuation of the
binomial coefficients; we implement the analytically consistent form (the
log-derivative of each binomial factor expressed through digamma functions)
rather than transcribing Equations (36)–(41) literally, because the printed
equations contain obvious typos (e.g. ``H(v(v+1)/2 - 2τ)`` where the
continuation of ``C(v(v+1)/2, τ)`` requires ``H(v(v+1)/2 - τ)``).  The two
agree in structure and produce the same qualitative Jeffreys prior.
"""

from __future__ import annotations

import math
from fractions import Fraction
from functools import lru_cache
from typing import Tuple

from repro.core.combinatorics import binomial, digamma, hypergeometric_pmf, multiset_coefficient

__all__ = [
    "branch_type_count",
    "omega1",
    "omega2",
    "omega3",
    "omega4",
    "omega1_dtau",
    "omega2_dtau",
]


def branch_type_count(extended_order: int, num_vertex_labels: int, num_edge_labels: int) -> int:
    """Number ``D`` of possible branch types (Equation 33).

    ``D = |LV| * C(|V'| + |LE| - 1, |LE|)`` — the number of ways to label the
    root vertex times the number of multisets of edge labels.  The virtual
    label is accounted for by the paper's convention of counting
    ``|LV| + 1`` / ``|LE| + 1`` label choices inside the derivation; we follow
    Equation (33) literally and guard against degenerate alphabets.
    """
    effective_vertex_labels = max(num_vertex_labels, 1)
    effective_edge_labels = max(num_edge_labels, 1)
    count = effective_vertex_labels * multiset_coefficient(extended_order, effective_edge_labels)
    return max(count, 2)


@lru_cache(maxsize=262144)
def omega1(x: int, tau: int, extended_order: int) -> Fraction:
    """``Ω1(x, τ) = H(x; v + C(v, 2), v, τ)`` (Lemma 1, Equation 28).

    Probability that a uniformly chosen set of ``τ`` relabelled elements of
    the complete extended graph on ``v`` vertices contains exactly ``x``
    vertices (the rest being edges).
    """
    if x < 0 or x > tau:
        return Fraction(0)
    v = extended_order
    population = v + binomial(v, 2)
    return hypergeometric_pmf(x, population, v, tau)


@lru_cache(maxsize=262144)
def omega2(m: int, x: int, tau: int, extended_order: int) -> Fraction:
    """``Ω2(m, x, τ) = Pr[Z = m | Y = τ - x]`` (Lemma 2, Equation 29).

    Probability that ``τ - x`` distinct edges drawn uniformly from the
    complete graph on ``v`` vertices cover exactly ``m`` vertices.  Computed
    with the exact inclusion–exclusion formula

    ``C(C(v,2), τ-x)^{-1} * Σ_t (-1)^{m-t} C(v, m) C(m, t) C(C(t,2), τ-x)``.
    """
    v = extended_order
    y = tau - x
    if y < 0 or m < 0 or m > v:
        return Fraction(0)
    total_edges = binomial(v, 2)
    denominator = binomial(total_edges, y)
    if denominator == 0:
        # No way to pick y edges at all; define the degenerate distribution
        # to concentrate on m == 0 so the factor stays a proper pmf.
        return Fraction(1) if (m == 0 and y == 0) else Fraction(0)
    if y == 0:
        return Fraction(1) if m == 0 else Fraction(0)
    numerator = 0
    choose_v_m = binomial(v, m)
    for t in range(m + 1):
        term = choose_v_m * binomial(m, t) * binomial(binomial(t, 2), y)
        if (m - t) % 2 == 1:
            numerator -= term
        else:
            numerator += term
    if numerator <= 0:
        return Fraction(0)
    return Fraction(numerator, denominator)


@lru_cache(maxsize=262144)
def omega3(r: int, phi: int, branch_types: int) -> Fraction:
    """``Ω3(r, ϕ) = C(r, r-ϕ) (D-1)^ϕ / D^r`` (Lemma 3, Equation 30).

    Probability that exactly ``ϕ`` of the ``r`` relabelled branches end up
    different from their originals when each relabelled branch is assigned a
    uniformly random type among ``D`` possibilities.

    For very large ``D`` (rich label alphabets) the exact ratio involves
    integers with thousands of digits while its value is representable in a
    double to full precision, so a log-space float evaluation is used instead
    of exact big-integer arithmetic.
    """
    if phi < 0 or phi > r:
        return Fraction(0)
    if r == 0:
        return Fraction(1) if phi == 0 else Fraction(0)
    d = branch_types
    if d > 10**6:
        log_value = math.log(binomial(r, r - phi)) + phi * math.log(d - 1) - r * math.log(d)
        return Fraction(math.exp(log_value)) if log_value > -745.0 else Fraction(0)
    return Fraction(binomial(r, r - phi) * (d - 1) ** phi, d**r)


@lru_cache(maxsize=262144)
def omega4(x: int, r: int, m: int, extended_order: int) -> Fraction:
    """``Ω4(x, r, m) = H(x + m - r; v, m, x)`` (Lemma 4, Equation 31).

    Probability that the set of ``x`` relabelled vertices intersects the set
    of ``m`` edge-covered vertices in exactly ``x + m - r`` vertices, i.e.
    the union — the number of touched branches — has size ``r``.
    """
    overlap = x + m - r
    if overlap < 0 or overlap > min(x, m):
        return Fraction(0)
    return hypergeometric_pmf(overlap, extended_order, m, x)


# --------------------------------------------------------------------------- #
# τ-derivatives (Gamma-function continuation) for the Jeffreys prior
# --------------------------------------------------------------------------- #
def _log_binomial_dk(n: int, k: int) -> float:
    """``d/dk log C(n, k)`` at integer points via digamma: ``psi(n-k+1) - psi(k+1)``."""
    return digamma(n - k + 1.0) - digamma(k + 1.0)


@lru_cache(maxsize=262144)
def omega1_dtau(x: int, tau: int, extended_order: int) -> Fraction:
    """Analytic ``dΩ1/dτ`` (continuation of Equation 36).

    ``Ω1 = C(v, x) C(E, τ-x) / C(v+E, τ)`` with ``E = C(v, 2)``; its
    τ-derivative is ``Ω1 * [d/dτ log C(E, τ-x) - d/dτ log C(v+E, τ)]``.
    The digamma factors are converted to rationals so the result composes
    exactly with the other Ω factors.
    """
    value = omega1(x, tau, extended_order)
    if value == 0:
        return Fraction(0)
    v = extended_order
    total_edges = binomial(v, 2)
    log_derivative = _log_binomial_dk(total_edges, tau - x) - _log_binomial_dk(v + total_edges, tau)
    return value * Fraction(log_derivative).limit_denominator(10**12)


@lru_cache(maxsize=262144)
def omega2_dtau(m: int, x: int, tau: int, extended_order: int) -> Fraction:
    """Analytic ``dΩ2/dτ`` (continuation of Equation 37).

    Differentiates each inclusion–exclusion term
    ``C(v,m) C(m,t) C(C(t,2), τ-x) / C(C(v,2), τ-x)`` separately:
    the τ-derivative of its logarithm is
    ``d/dτ log C(C(t,2), τ-x) - d/dτ log C(C(v,2), τ-x)``.
    Terms whose binomial vanishes contribute zero.
    """
    v = extended_order
    y = tau - x
    if y < 0 or m < 0 or m > v:
        return Fraction(0)
    total_edges = binomial(v, 2)
    denominator = binomial(total_edges, y)
    if denominator == 0 or y == 0:
        return Fraction(0)
    choose_v_m = binomial(v, m)
    log_derivative_denom = _log_binomial_dk(total_edges, y)
    result = Fraction(0)
    for t in range(m + 1):
        pairs = binomial(t, 2)
        numerator_term = choose_v_m * binomial(m, t) * binomial(pairs, y)
        if numerator_term == 0:
            continue
        term_value = Fraction(numerator_term, denominator)
        if (m - t) % 2 == 1:
            term_value = -term_value
        log_derivative = _log_binomial_dk(pairs, y) - log_derivative_denom
        result += term_value * Fraction(log_derivative).limit_denominator(10**12)
    return result


def omega_support(tau: int, extended_order: int) -> Tuple[range, range, range]:
    """Return the (x, m, r) summation ranges used when assembling Λ1.

    Follows Section VI-B: ``x ∈ [0, τ]``, ``m ∈ [0, min(2τ, v)]``,
    ``r ∈ [0, min(3τ, v)]``.
    """
    v = extended_order
    return (
        range(0, tau + 1),
        range(0, min(2 * tau, v) + 1),
        range(0, min(3 * tau, v) + 1),
    )
