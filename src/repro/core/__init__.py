"""Core contribution of the paper: branches, GBD, and the GBDA model.

The public entry points most users need are:

* :func:`repro.core.gbd.graph_branch_distance` — the Graph Branch Distance
  (Definition 4), computable in ``O(nd)`` time.
* :class:`repro.core.estimator.GBDAEstimator` — the posterior
  ``Pr[GED <= tau_hat | GBD = phi]`` of Section V.
* :class:`repro.core.search.GBDASearch` — Algorithm 1 (offline priors +
  online probabilistic filtering).
"""

from repro.core.branches import Branch, branch_multiset, branches_of
from repro.core.gbd import (
    branch_intersection_size,
    graph_branch_distance,
    variant_graph_branch_distance,
)
from repro.core.estimator import GBDAEstimator
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.core.plan import CandidateScores, ExecutionCore, FilterCounters
from repro.core.search import GBDASearch, SearchResult
from repro.core.variants import GBDAV1Search, GBDAV2Search

__all__ = [
    "Branch",
    "branches_of",
    "branch_multiset",
    "graph_branch_distance",
    "variant_graph_branch_distance",
    "branch_intersection_size",
    "GBDAEstimator",
    "GBDPrior",
    "GEDPrior",
    "CandidateScores",
    "ExecutionCore",
    "FilterCounters",
    "GBDASearch",
    "SearchResult",
    "GBDAV1Search",
    "GBDAV2Search",
]
