"""Branch structures (Definition 2) and branch isomorphism (Definition 3).

A *branch* rooted at vertex ``v`` is the pair ``B(v) = (L(v), N(v))`` where
``L(v)`` is the vertex label and ``N(v)`` is the sorted multiset of labels of
the edges incident to ``v``.  The sorted multiset of all branches of a graph
``G`` is denoted ``B_G``.

Two branches are isomorphic iff both their root labels and their sorted edge
label multisets coincide — for our canonical tuple representation this is
plain equality, which is what makes the multiset-intersection computation of
GBD a linear merge of two sorted lists.

In practice (per the paper, Section III) each branch is stored as a list of
strings whose first element is the vertex label and whose remaining elements
are the sorted edge labels; we store an immutable, hashable tuple with the
same layout so branches can live in ``Counter`` multisets and be compared
lexicographically.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Hashable, Iterator, List, Tuple

from repro.graphs.graph import Graph

Label = Hashable


@dataclasses.dataclass(frozen=True, order=True)
class Branch:
    """The branch rooted at a single vertex.

    Attributes
    ----------
    vertex_label:
        ``L(v)`` — the label of the root vertex.
    edge_labels:
        ``N(v)`` — the sorted tuple of labels of edges incident to the root.
    """

    vertex_label: Label
    edge_labels: Tuple[Label, ...]

    @property
    def degree(self) -> int:
        """Degree of the root vertex (size of the incident-edge multiset)."""
        return len(self.edge_labels)

    def as_strings(self) -> List[str]:
        """Return the list-of-strings encoding described in Section III."""
        return [str(self.vertex_label)] + [str(label) for label in self.edge_labels]

    def canonical_key(self) -> Tuple:
        """Return a hashable key that identifies the branch up to isomorphism."""
        return (self.vertex_label, self.edge_labels)

    def is_isomorphic_to(self, other: "Branch") -> bool:
        """Branch isomorphism of Definition 3 (equality of label and multiset)."""
        return self.canonical_key() == other.canonical_key()

    def __str__(self) -> str:
        edge_part = ", ".join(str(label) for label in self.edge_labels)
        return f"{{{self.vertex_label}; {edge_part}}}"


def branch_of(graph: Graph, vertex) -> Branch:
    """Extract the branch ``B(v)`` rooted at ``vertex``."""
    labels = sorted(graph.incident_edge_labels(vertex), key=_sort_key)
    return Branch(vertex_label=graph.vertex_label(vertex), edge_labels=tuple(labels))


def branches_of(graph: Graph) -> List[Branch]:
    """Return the sorted list of all branches of ``graph`` (``B_G``).

    The list is sorted by the branches' natural (lexicographic) order so the
    multiset-intersection of two branch collections can be computed with a
    single linear merge, keeping GBD at the paper's ``O(nd)`` bound.
    """
    return sorted(
        (branch_of(graph, vertex) for vertex in graph.vertices()),
        key=_branch_sort_key,
    )


def branch_multiset(graph: Graph) -> Counter:
    """Return ``B_G`` as a ``Counter`` keyed by canonical branch keys.

    The ``Counter`` view is what the GBD computation and the branch index of
    the graph database use; the sorted-list view of :func:`branches_of` is
    kept for faithfulness to the paper's storage description and for
    human-readable output.

    This is the innermost per-query cost of the online stage (one call per
    similarity query), so it builds the canonical ``(L(v), N(v))`` keys
    directly instead of going through :class:`Branch` objects; the keys are
    exactly ``branch_of(graph, v).canonical_key()``.
    """
    counts: Counter = Counter()
    for vertex, vertex_label in graph.vertex_items():
        labels = sorted(graph.incident_edge_labels(vertex), key=_sort_key)
        counts[(vertex_label, tuple(labels))] += 1
    return counts


def iter_branches(graph: Graph) -> Iterator[Tuple[object, Branch]]:
    """Yield ``(vertex, branch)`` pairs for every vertex of the graph."""
    for vertex in graph.vertices():
        yield vertex, branch_of(graph, vertex)


#: Memo of label -> sort key: labels come from small fixed alphabets and the
#: (type name, str) tuples are expensive to rebuild per comparison in the
#: per-query branch-extraction hot loop.  Bounded so a long-lived server
#: answering arbitrary query graphs cannot grow it without limit.
_SORT_KEY_MEMO: dict = {}
_SORT_KEY_MEMO_LIMIT = 8192


def _sort_key(label: Label) -> Tuple[str, str]:
    """Total order over labels of arbitrary hashable types.

    Mirrors the lexicographic ordering the paper borrows from
    ``std::lexicographical_compare`` while staying robust to mixed label
    types (ints vs strings) that Python 3 refuses to compare directly.
    """
    # Memoise per (type, value): equal-but-distinct labels such as 1 and
    # True must not share an entry or their type names would be conflated.
    memo_key = (type(label), label)
    key = _SORT_KEY_MEMO.get(memo_key)
    if key is None:
        if len(_SORT_KEY_MEMO) >= _SORT_KEY_MEMO_LIMIT:
            _SORT_KEY_MEMO.clear()  # alphabet churn beyond any real dataset
        key = (type(label).__name__, str(label))
        _SORT_KEY_MEMO[memo_key] = key
    return key


def _branch_sort_key(branch: Branch) -> Tuple:
    """Sort key for whole branches: root label first, then edge labels."""
    return (_sort_key(branch.vertex_label), tuple(_sort_key(label) for label in branch.edge_labels))
