"""Offline GED prior ``Λ3 = Pr[GED = τ]`` via the Jeffreys prior (Section V-C).

Sampling graph pairs and computing exact GEDs is infeasible (NP-hard), so
the paper adopts the non-informative Jeffreys prior computed from the Fisher
information of the conditional model ``Pr[GBD | GED]``:

``Pr[GED = τ] ∝ sqrt( Σ_{ϕ=0}^{2τ} Λ1(τ, ϕ) · Z(τ, ϕ)² )``   (Equation 16)

where ``Z = d/dτ log Pr[GBD | GED]`` is the score function (Equation 17).
The value depends only on τ and the extended order ``|V'1|``, so the offline
stage pre-computes a ``(τ, |V'1|)`` matrix that the online stage looks up in
``O(1)``; that matrix is exactly what Figure 6 visualises and what Table V
prices.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.model import BranchEditModel
from repro.exceptions import PriorNotFittedError

__all__ = ["GEDPrior", "GEDPriorReport"]

#: Floor applied to unnormalised Jeffreys weights so that no (τ, v) cell is
#: exactly zero; keeps the posterior well-defined at boundary thresholds.
_WEIGHT_FLOOR = 1e-12


def _jeffreys_row(args: Tuple[int, int, int, int]) -> Tuple[int, Dict[int, float]]:
    """One normalised grid column ``{τ: Pr[GED = τ]}`` for a fixed order.

    Module-level (and taking a single tuple argument) so the offline stage
    can fan the per-order computations out over a process pool — each
    extended order is independent of every other.
    """
    extended_order, max_tau, num_vertex_labels, num_edge_labels = args
    model = BranchEditModel(extended_order, num_vertex_labels, num_edge_labels)
    weights: Dict[int, float] = {}
    for tau in range(1, max_tau + 1):
        fisher_information = 0.0
        for phi in range(model.max_phi(tau) + 1):
            conditional = model.lambda1(tau, phi)
            if conditional <= 0.0:
                continue
            score = model.score(tau, phi)
            fisher_information += conditional * score * score
        weights[tau] = max(math.sqrt(max(fisher_information, 0.0)), _WEIGHT_FLOOR)
    # The score is degenerate at τ = 0 (the conditional is a point mass and
    # its Fisher information is unbounded); use the τ = 1 information as a
    # conservative stand-in so GED = 0 keeps a sensible positive prior mass
    # and exact matches are never filtered out by the prior alone.
    weights[0] = weights.get(1, _WEIGHT_FLOOR) if max_tau >= 1 else 1.0
    normaliser = sum(weights.values())
    if normaliser <= 0:
        normaliser = 1.0
    return extended_order, {tau: weight / normaliser for tau, weight in weights.items()}


@dataclass
class GEDPriorReport:
    """Book-keeping produced while pre-computing the prior (feeds Table V)."""

    max_tau: int = 0
    orders: List[int] = field(default_factory=list)
    compute_seconds: float = 0.0
    table_entries: int = 0

    @property
    def table_bytes(self) -> int:
        """Approximate storage of the pre-computed matrix (8 bytes per entry)."""
        return 8 * self.table_entries


class GEDPrior:
    """Jeffreys prior of GED values over a ``(τ, |V'1|)`` grid.

    Parameters
    ----------
    max_tau:
        Largest similarity threshold the prior must support (``τ̂``).
    num_vertex_labels, num_edge_labels:
        Label alphabet sizes of the dataset (they parameterise the
        conditional model through the branch-type count ``D``).
    """

    def __init__(self, max_tau: int, num_vertex_labels: int, num_edge_labels: int) -> None:
        if max_tau < 0:
            raise ValueError("max_tau must be non-negative")
        self.max_tau = int(max_tau)
        self.num_vertex_labels = int(num_vertex_labels)
        self.num_edge_labels = int(num_edge_labels)
        self._table: Dict[Tuple[int, int], float] = {}
        self._orders: List[int] = []
        self.report = GEDPriorReport()

    # ------------------------------------------------------------------ #
    # fitting (offline pre-computation)
    # ------------------------------------------------------------------ #
    def fit(
        self, extended_orders: Iterable[int], *, num_workers: Optional[int] = None
    ) -> "GEDPrior":
        """Pre-compute the Jeffreys prior for every extended order in the input.

        ``extended_orders`` is typically the set of distinct values of
        ``max(|V_Q|, |V_G|)`` that can arise for the dataset — for the
        synthetic datasets that is just the handful of generated sizes, which
        is why Table V reports smaller costs on Syn-1/Syn-2 than on the real
        datasets despite the much larger graphs.

        Each order's column is independent, so with ``num_workers > 1`` the
        grid is built across a process pool (columns merged in sorted order;
        the resulting matrix is identical to the serial build).
        """
        start = time.perf_counter()
        orders = sorted({int(v) for v in extended_orders if int(v) >= 1})
        self._table = {}
        self._insert_rows(orders, num_workers=num_workers)
        self._orders = orders
        self.report = GEDPriorReport(
            max_tau=self.max_tau,
            orders=orders,
            compute_seconds=time.perf_counter() - start,
            table_entries=len(self._table),
        )
        return self

    def update(
        self, extended_orders: Iterable[int], *, num_workers: Optional[int] = None
    ) -> List[int]:
        """Extend the grid with any orders not yet covered; return the new ones.

        Incremental counterpart of :meth:`fit` used by the offline refit
        path: columns already present are left untouched (they depend only
        on ``(τ, |V'1|)`` and the label alphabets fixed at construction), so
        adding graphs with previously unseen sizes costs only the missing
        columns instead of a full offline rebuild.
        """
        self._require_fitted()
        start = time.perf_counter()
        requested = {int(v) for v in extended_orders if int(v) >= 1}
        missing = sorted(requested - set(self._orders))
        if missing:
            self._insert_rows(missing, num_workers=num_workers)
            self._orders = sorted(set(self._orders) | set(missing))
        self.report = GEDPriorReport(
            max_tau=self.max_tau,
            orders=list(self._orders),
            compute_seconds=self.report.compute_seconds + (time.perf_counter() - start),
            table_entries=len(self._table),
        )
        return missing

    def _insert_rows(self, orders: List[int], *, num_workers: Optional[int]) -> None:
        """Compute and merge the grid columns for ``orders`` (sorted input)."""
        # Imported lazily to avoid the cycle ged_prior -> repro.offline ->
        # fitter -> ged_prior.
        from repro.offline.parallel import parallel_map

        rows = parallel_map(
            _jeffreys_row,
            [
                (order, self.max_tau, self.num_vertex_labels, self.num_edge_labels)
                for order in orders
            ],
            num_workers=num_workers,
        )
        for order, row in rows:
            for tau, probability in row.items():
                self._table[(tau, order)] = probability

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has pre-computed at least one extended order."""
        return bool(self._table)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise PriorNotFittedError("GEDPrior.fit must be called before querying probabilities")

    def probability(self, tau: int, extended_order: int) -> float:
        """Return ``Pr[GED = τ]`` for the given extended order.

        Orders never seen during :meth:`fit` fall back to the nearest
        pre-computed order (the prior varies slowly with ``|V'1|``), matching
        the paper's practice of tabulating a fixed grid and looking it up.
        """
        self._require_fitted()
        if tau < 0 or tau > self.max_tau:
            return _WEIGHT_FLOOR
        order = self._nearest_order(extended_order)
        return self._table.get((tau, order), _WEIGHT_FLOOR)

    def distribution(self, extended_order: int) -> List[float]:
        """Return ``[Pr[GED = τ] for τ in 0..max_tau]`` for one extended order."""
        return [self.probability(tau, extended_order) for tau in range(self.max_tau + 1)]

    def matrix(self) -> Dict[Tuple[int, int], float]:
        """Return a copy of the full ``{(τ, |V'1|): probability}`` matrix (Figure 6)."""
        self._require_fitted()
        return dict(self._table)

    def _nearest_order(self, extended_order: int) -> int:
        if extended_order in self._orders:
            return extended_order
        return min(self._orders, key=lambda order: abs(order - extended_order))

    @property
    def orders(self) -> List[int]:
        """The extended orders covered by the pre-computed matrix."""
        return list(self._orders)

    # ------------------------------------------------------------------ #
    # serialization (used by the serving snapshot layer)
    # ------------------------------------------------------------------ #
    def to_state(self) -> dict:
        """Return the pre-computed grid as a plain dict."""
        self._require_fitted()
        return {
            "max_tau": self.max_tau,
            "num_vertex_labels": self.num_vertex_labels,
            "num_edge_labels": self.num_edge_labels,
            "table": [(tau, order, p) for (tau, order), p in self._table.items()],
            "orders": list(self._orders),
        }

    @classmethod
    def from_state(cls, state: dict) -> "GEDPrior":
        """Rebuild a fitted prior from :meth:`to_state` output without re-fitting."""
        prior = cls(
            int(state["max_tau"]),
            int(state["num_vertex_labels"]),
            int(state["num_edge_labels"]),
        )
        prior._table = {
            (int(tau), int(order)): float(p) for tau, order, p in state["table"]
        }
        prior._orders = [int(order) for order in state["orders"]]
        prior.report = GEDPriorReport(
            max_tau=prior.max_tau,
            orders=list(prior._orders),
            table_entries=len(prior._table),
        )
        return prior

    def __repr__(self) -> str:
        state = f"{len(self._orders)} orders" if self.is_fitted else "unfitted"
        return f"<GEDPrior max_tau={self.max_tau} ({state})>"
