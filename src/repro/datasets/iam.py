"""Parser for IAM graph-database files (GXL graphs, CXL collection indexes).

The IAM Graph Database Repository distributes each dataset as a directory of
GXL files (one graph each) plus CXL index files listing the graphs of each
split.  This module parses those formats so the genuine AIDS / Fingerprint /
GREC data can be dropped into the experiments when a copy is available —
the offline look-alike generators are used otherwise.

Only the features the experiments need are supported: node/edge elements,
string/float/int attribute values, and the ``chem``/``type`` style symbolic
labels the three datasets use.  Numeric attributes are concatenated into a
single composite label because GBDA (and all the baselines in this
repository) operate on symbolic labels.
"""

from __future__ import annotations

import xml.etree.ElementTree as ElementTree
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

PathLike = Union[str, Path]

__all__ = ["parse_gxl", "parse_gxl_file", "parse_cxl_index", "load_iam_directory"]


def _attribute_value(attr_element: ElementTree.Element) -> str:
    """Extract the value of a GXL ``<attr>`` element as a string."""
    for child in attr_element:
        tag = child.tag.lower()
        if tag in ("string", "int", "float", "double", "bool"):
            return (child.text or "").strip()
    return (attr_element.text or "").strip()


def _composite_label(attributes: Dict[str, str], preferred: Sequence[str]) -> str:
    """Build a single symbolic label from a GXL attribute dictionary.

    Preferred keys (``chem``, ``type``, ``symbol``, ...) are used alone when
    present; otherwise all attributes are concatenated in key order so that
    distinct attribute combinations stay distinguishable.
    """
    for key in preferred:
        if key in attributes and attributes[key] != "":
            return attributes[key]
    if not attributes:
        return "node"
    return "|".join(f"{key}={attributes[key]}" for key in sorted(attributes))


def parse_gxl(text: str, *, name: Optional[str] = None) -> Graph:
    """Parse one GXL document (as text) into a :class:`Graph`."""
    try:
        root = ElementTree.fromstring(text)
    except ElementTree.ParseError as exc:
        raise DatasetError(f"invalid GXL document: {exc}") from exc

    graph_element = root.find("graph")
    if graph_element is None:
        graph_element = root if root.tag == "graph" else None
    if graph_element is None:
        raise DatasetError("GXL document does not contain a <graph> element")

    graph = Graph(name=name or graph_element.get("id"))
    for node in graph_element.findall("node"):
        node_id = node.get("id")
        if node_id is None:
            raise DatasetError("GXL node without an id attribute")
        attributes = {attr.get("name", ""): _attribute_value(attr) for attr in node.findall("attr")}
        label = _composite_label(attributes, preferred=("chem", "type", "symbol", "label"))
        graph.add_vertex(node_id, label)

    for edge in graph_element.findall("edge"):
        source = edge.get("from")
        target = edge.get("to")
        if source is None or target is None:
            raise DatasetError("GXL edge without from/to attributes")
        if source == target:
            continue  # simple graphs: skip self-loops
        attributes = {attr.get("name", ""): _attribute_value(attr) for attr in edge.findall("attr")}
        label = _composite_label(attributes, preferred=("valence", "type", "frequency", "label"))
        if not graph.has_edge(source, target):
            graph.add_edge(source, target, label)
    return graph


def parse_gxl_file(path: PathLike) -> Graph:
    """Parse one ``.gxl`` file into a :class:`Graph` (named after the file stem)."""
    path = Path(path)
    return parse_gxl(path.read_text(encoding="utf-8"), name=path.stem)


def parse_cxl_index(path: PathLike) -> List[str]:
    """Parse a CXL collection index and return the listed GXL file names."""
    path = Path(path)
    try:
        root = ElementTree.fromstring(path.read_text(encoding="utf-8"))
    except ElementTree.ParseError as exc:
        raise DatasetError(f"invalid CXL index {path}: {exc}") from exc
    files = []
    for print_element in root.iter("print"):
        file_name = print_element.get("file")
        if file_name:
            files.append(file_name)
    return files


def load_iam_directory(
    directory: PathLike,
    *,
    index_file: Optional[PathLike] = None,
    limit: Optional[int] = None,
) -> List[Graph]:
    """Load every GXL graph from a directory (optionally filtered by a CXL index)."""
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"{directory} is not a directory")
    if index_file is not None:
        names = parse_cxl_index(index_file)
        paths = [directory / name for name in names]
    else:
        paths = sorted(directory.glob("*.gxl"))
    if limit is not None:
        paths = paths[:limit]
    graphs = []
    for path in paths:
        if not path.exists():
            raise DatasetError(f"GXL file listed in the index does not exist: {path}")
        graphs.append(parse_gxl_file(path))
    return graphs
