"""Dataset generators, loaders, and the dataset registry.

The paper evaluates on four real datasets (AIDS, Fingerprint, GREC from the
IAM graph database, and the NCI AIDS Antiviral Screen Data) plus two
synthetic collections with known pairwise GEDs (Syn-1 scale-free, Syn-2
random).  The real datasets are not redistributable/downloadable in this
offline environment, so this subpackage provides:

* the Appendix-I style **known-GED family generator**
  (:mod:`repro.datasets.synthetic`) used for Syn-1/Syn-2 and, in
  domain-flavoured form, for the real-data look-alikes;
* look-alike generators matching the published Table III statistics
  (:mod:`repro.datasets.molecules`, :mod:`~repro.datasets.fingerprints`,
  :mod:`~repro.datasets.grec`, :mod:`~repro.datasets.aasd`);
* a GXL/CXL parser (:mod:`repro.datasets.iam`) so the genuine IAM data can
  be dropped in when available;
* a :class:`~repro.datasets.registry.Dataset` container and registry binding
  each named dataset to its generator.
"""

from repro.datasets.registry import Dataset, GroundTruth, DATASET_BUILDERS, build_dataset
from repro.datasets.synthetic import (
    KnownGEDFamily,
    find_modification_center,
    make_known_ged_family,
    make_syn1,
    make_syn2,
)
from repro.datasets.molecules import make_aids_like
from repro.datasets.fingerprints import make_fingerprint_like
from repro.datasets.grec import make_grec_like
from repro.datasets.aasd import make_aasd_like

__all__ = [
    "Dataset",
    "GroundTruth",
    "DATASET_BUILDERS",
    "build_dataset",
    "KnownGEDFamily",
    "find_modification_center",
    "make_known_ged_family",
    "make_syn1",
    "make_syn2",
    "make_aids_like",
    "make_fingerprint_like",
    "make_grec_like",
    "make_aasd_like",
]
