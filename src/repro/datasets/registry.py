"""Dataset container, ground-truth bookkeeping, and the named-dataset registry.

A :class:`Dataset` bundles everything one experiment needs: the database
graphs, the query workload, a :class:`GroundTruth` oracle giving the true
GED (or "far apart") for every (query, database graph) pair, and metadata
(name, scale-free flag).  The registry maps the paper's dataset names
("AIDS", "Fingerprint", "GREC", "AASD", "Syn-1", "Syn-2") to the generator
functions that build laptop-scale look-alikes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

__all__ = ["GroundTruth", "Dataset", "DATASET_BUILDERS", "build_dataset", "register_dataset"]

#: Sentinel distance meaning "far apart": the true GED exceeds any threshold
#: used in the experiments, so the pair never belongs to an answer set.
FAR = None


class GroundTruth:
    """Oracle of true GED values between query graphs and database graphs.

    Ground truth is stored sparsely: pairs within the same generated family
    have an exact known GED (the Appendix-I construction), pairs across
    families are "far apart" (GED provably larger than every threshold used
    in the experiments) and are represented implicitly.
    """

    def __init__(self) -> None:
        self._exact: Dict[Tuple[str, int], int] = {}

    def record(self, query_key: str, graph_id: int, ged: int) -> None:
        """Record the exact GED between a query (by key) and a database graph."""
        if ged < 0:
            raise DatasetError("ground-truth GED values must be non-negative")
        self._exact[(query_key, graph_id)] = int(ged)

    def ged(self, query_key: str, graph_id: int) -> Optional[int]:
        """Return the exact GED, or ``None`` when the pair is far apart."""
        return self._exact.get((query_key, graph_id), FAR)

    def answer_set(self, query_key: str, tau_hat: int) -> FrozenSet[int]:
        """True answer set: database graphs with ``GED <= tau_hat``."""
        return frozenset(
            graph_id
            for (key, graph_id), ged in self._exact.items()
            if key == query_key and ged <= tau_hat
        )

    def known_pairs(self) -> int:
        """Number of (query, graph) pairs with an exact recorded GED."""
        return len(self._exact)

    def items(self):
        """Iterate over ``((query_key, graph_id), ged)`` pairs."""
        return self._exact.items()


@dataclass
class Dataset:
    """A named dataset: database graphs, queries, and ground truth."""

    name: str
    database_graphs: List[Graph]
    query_graphs: List[Graph]
    ground_truth: GroundTruth
    scale_free: bool = True
    description: str = ""
    metadata: Dict[str, object] = field(default_factory=dict)

    def query_key(self, query_index: int) -> str:
        """Stable key identifying one query graph inside the ground truth."""
        query = self.query_graphs[query_index]
        return query.name or f"q{query_index}"

    @property
    def num_database_graphs(self) -> int:
        """Number of graphs in the searchable database."""
        return len(self.database_graphs)

    @property
    def num_query_graphs(self) -> int:
        """Number of query graphs in the workload."""
        return len(self.query_graphs)

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.name!r} |D|={self.num_database_graphs} "
            f"|Q|={self.num_query_graphs} scale_free={self.scale_free}>"
        )


#: Registry of named dataset builders.  Populated lazily by
#: :func:`register_dataset` calls at the bottom of the generator modules.
DATASET_BUILDERS: Dict[str, Callable[..., Dataset]] = {}


def register_dataset(name: str, builder: Callable[..., Dataset]) -> None:
    """Register a dataset builder under a (case-insensitive) name."""
    DATASET_BUILDERS[name.lower()] = builder


def build_dataset(name: str, **kwargs) -> Dataset:
    """Build a registered dataset by name (e.g. ``"AIDS"``, ``"Syn-1"``)."""
    try:
        builder = DATASET_BUILDERS[name.lower()]
    except KeyError as exc:
        known = ", ".join(sorted(DATASET_BUILDERS))
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") from exc
    return builder(**kwargs)
