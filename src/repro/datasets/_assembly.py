"""Shared assembly of family-based datasets (real-data look-alikes).

Each "real" dataset look-alike (AIDS, Fingerprint, GREC, AASD) is built the
same way: a domain-specific generator produces template graphs matching the
published Table III statistics, and every template is expanded into a
known-GED family (Appendix I machinery) so that precision/recall/F1 against
exact ground truth can be computed without solving NP-hard GED instances.
This module holds the shared expansion/partitioning logic.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.datasets.registry import Dataset, GroundTruth
from repro.datasets.synthetic import make_known_ged_family
from repro.graphs.graph import Graph

__all__ = ["assemble_family_dataset"]


def assemble_family_dataset(
    name: str,
    templates: Sequence[Graph],
    *,
    family_size: int,
    max_distance: int,
    queries_per_family: int,
    seed: int,
    scale_free: bool,
    description: str = "",
) -> Dataset:
    """Expand templates into known-GED families and package them as a dataset.

    Parameters
    ----------
    templates:
        Domain-flavoured template graphs (one family per template).
    family_size:
        Members per family (template included).
    max_distance:
        Largest GED of a family member to its template.
    queries_per_family:
        How many members of each family become query graphs (removed from the
        searchable database, as in the paper's 5 %/95 % split).
    """
    rng = random.Random(seed)
    database_graphs: List[Graph] = []
    query_graphs: List[Graph] = []
    ground_truth = GroundTruth()

    for template in templates:
        family = make_known_ged_family(
            template,
            family_size=family_size,
            max_distance=max_distance,
            seed=rng.randrange(2**31),
        )
        num_queries = min(queries_per_family, max(len(family) - 1, 0))
        query_members = rng.sample(range(len(family)), num_queries) if num_queries else []

        member_graph_ids: List[int] = []
        for member_index, member in enumerate(family.members):
            if member_index in query_members:
                member.name = f"{member.name or template.name}_q"
                query_graphs.append(member)
                member_graph_ids.append(-1)
            else:
                graph_id = len(database_graphs)
                database_graphs.append(member)
                member_graph_ids.append(graph_id)

        for query_member in query_members:
            query_key = family.members[query_member].name
            for member_index, graph_id in enumerate(member_graph_ids):
                if graph_id < 0:
                    continue
                ground_truth.record(query_key, graph_id, family.ged(query_member, member_index))

    return Dataset(
        name=name,
        database_graphs=database_graphs,
        query_graphs=query_graphs,
        ground_truth=ground_truth,
        scale_free=scale_free,
        description=description,
        metadata={
            "num_templates": len(templates),
            "family_size": family_size,
            "max_distance": max_distance,
        },
    )


def spread_sizes(
    rng: random.Random, count: int, minimum: int, maximum: int, mode: int
) -> List[int]:
    """Draw ``count`` graph sizes from a triangular distribution.

    Real graph datasets have right-skewed size distributions (many small
    graphs, a few near the published maximum); a triangular draw reproduces
    that shape with three interpretable knobs.
    """
    sizes = []
    for _ in range(count):
        size = int(round(rng.triangular(minimum, maximum, mode)))
        sizes.append(max(min(size, maximum), minimum))
    return sizes
