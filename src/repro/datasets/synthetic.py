"""Known-GED synthetic graph families (Appendix I) and the Syn-1/Syn-2 datasets.

The paper needs GED ground truth on graphs far too large for exact
computation, so Appendix I generates graphs around a *modification centre*:
a vertex ``v_c`` whose neighbours have pairwise-different signatures.  When
only the edges incident to ``v_c`` are modified (and each modified edge gets
a label unique to its variant), the GED between any two family members is
simply the number of incident edges on which they disagree — computable in
polynomial time by comparing the centres' adjacencies.

The implementation follows the same two phases:

1. generate a random "qualified" template graph (scale-free for Syn-1,
   uniform-random for Syn-2) that is connected and owns a modification
   centre of sufficiently high degree;
2. derive the family by relabelling ``k`` chosen centre edges per variant,
   recording pairwise GEDs exactly.

Different families are made "far apart" by drawing their vertex labels from
disjoint sub-alphabets, so the cross-family GED provably exceeds every
similarity threshold used in the experiments (their label multisets differ
in more positions than the largest threshold).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.datasets.registry import Dataset, GroundTruth, register_dataset
from repro.exceptions import DatasetError
from repro.graphs.generators import random_labeled_graph, scale_free_labeled_graph
from repro.graphs.graph import Graph

RandomState = Union[int, random.Random, None]

__all__ = [
    "find_modification_center",
    "KnownGEDFamily",
    "make_known_ged_family",
    "make_syn1",
    "make_syn2",
]


def _as_rng(seed: RandomState) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _neighbor_signature(graph: Graph, center, neighbor) -> Tuple:
    """Signature of a centre neighbour: its label, the centre edge label, and its 1-hop view.

    This is the (truncated, k = 1) signature of Appendix I — sufficient to
    certify that two neighbours are distinguishable, which is what makes the
    centre a valid modification centre.
    """
    one_hop = sorted(
        (str(graph.vertex_label(other)), str(graph.edge_label(neighbor, other)))
        for other in graph.neighbors(neighbor)
        if other != center
    )
    return (
        str(graph.vertex_label(neighbor)),
        str(graph.edge_label(center, neighbor)),
        tuple(one_hop),
    )


def find_modification_center(graph: Graph, *, min_degree: int = 3) -> Optional[object]:
    """Return a vertex that is certainly a modification centre, or ``None``.

    A vertex qualifies when its degree is at least ``min_degree`` and the
    signatures of its neighbours are pairwise different (the sufficient
    condition of Appendix I).
    """
    best = None
    best_degree = min_degree - 1
    for vertex in graph.vertices():
        degree = graph.degree(vertex)
        if degree <= best_degree:
            continue
        signatures = [_neighbor_signature(graph, vertex, nbr) for nbr in graph.neighbors(vertex)]
        if len(set(signatures)) == len(signatures):
            best = vertex
            best_degree = degree
    return best


def _ensure_distinct_neighbor_labels(graph: Graph, center, labels: Sequence, rng: random.Random) -> None:
    """Relabel the centre's neighbours so their signatures are pairwise distinct.

    Used as a repair step when random generation fails to produce a valid
    centre: giving each neighbour a distinct vertex label is the simplest way
    to force pairwise-different signatures.
    """
    neighbors = list(graph.neighbors(center))
    pool = [f"{label}#{i}" for i, label in enumerate(labels * (len(neighbors) // max(len(labels), 1) + 1))]
    rng.shuffle(pool)
    for neighbor, label in zip(neighbors, pool):
        graph.relabel_vertex(neighbor, label)


@dataclass
class KnownGEDFamily:
    """A family of graphs with exactly known pairwise GEDs.

    Attributes
    ----------
    members:
        The generated graphs (index 0 is the unmodified template).
    center:
        The modification centre shared by all members.
    slots:
        The modification slots: ``("edge", neighbor)`` for centre-incident
        edges and ``("vertex", v)`` for distinguishable far-away vertices.
    edits_from_template:
        For each member, the mapping ``slot -> new label`` of its
        modifications relative to the template.
    """

    members: List[Graph]
    center: object
    slots: List[Tuple[str, object]]
    edits_from_template: List[Dict[Tuple[str, object], object]]

    def ged(self, i: int, j: int) -> int:
        """Exact GED between members ``i`` and ``j``.

        Members differ only on modification slots; each disagreeing slot
        requires exactly one relabelling operation, and no shorter edit path
        exists because every slot is uniquely distinguishable (pairwise
        different signatures, Appendix I).
        """
        edits_i = self.edits_from_template[i]
        edits_j = self.edits_from_template[j]
        touched = set(edits_i) | set(edits_j)
        distance = 0
        for slot in touched:
            if edits_i.get(slot) != edits_j.get(slot):
                distance += 1
        return distance

    def __len__(self) -> int:
        return len(self.members)


def _vertex_slot_candidates(template: Graph, center, limit: int) -> List[object]:
    """Vertices (away from the centre) usable as vertex-relabel modification slots.

    A candidate must not be the centre or one of its neighbours (so vertex
    modifications never interact with the edge slots) and candidates must be
    pairwise non-adjacent with pairwise-different branch context, which keeps
    the Hamming-distance GED argument intact.
    """
    center_neighbors = set(template.neighbors(center))
    chosen: List[object] = []
    chosen_set: set = set()
    seen_signatures: set = set()
    for vertex in sorted(template.vertices(), key=str):
        if len(chosen) >= limit:
            break
        if vertex == center or vertex in center_neighbors:
            continue
        if any(template.has_edge(vertex, other) for other in chosen_set):
            continue
        signature = (
            str(template.vertex_label(vertex)),
            tuple(
                sorted(
                    (str(template.vertex_label(nbr)), str(template.edge_label(vertex, nbr)))
                    for nbr in template.neighbors(vertex)
                )
            ),
        )
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        chosen.append(vertex)
        chosen_set.add(vertex)
    return chosen


def make_known_ged_family(
    template: Graph,
    family_size: int,
    max_distance: int,
    *,
    seed: RandomState = None,
    edge_label_prefix: str = "mod",
    min_center_degree: Optional[int] = None,
) -> KnownGEDFamily:
    """Derive a known-GED family from a template graph (Appendix I, phase 2).

    Parameters
    ----------
    template:
        The qualified template graph; it must contain (or be repairable to
        contain) a modification centre.
    family_size:
        Number of graphs in the family, including the template itself.
    max_distance:
        Maximum number of modification slots altered per variant, i.e. the
        largest possible GED to the template.  When the centre's degree is
        smaller than ``max_distance`` the generator adds vertex-relabel slots
        on distinguishable far-away vertices to make up the difference, so
        low-degree domains (molecule-like graphs) can still span the full
        GED range used in the experiments.
    edge_label_prefix:
        Prefix of the fresh labels assigned to modified elements; each
        (variant, slot) combination gets a distinct label so that the
        pairwise GED equals the plain Hamming distance of the modifications.
    """
    if family_size < 1:
        raise DatasetError("family_size must be at least 1")
    rng = _as_rng(seed)
    needed_degree = 3 if min_center_degree is None else min_center_degree

    center = find_modification_center(template, min_degree=max(needed_degree, 1))
    if center is None:
        # Repair: pick the highest-degree vertex and make its neighbourhood
        # distinguishable, then re-check.
        candidate = max(template.vertices(), key=template.degree, default=None)
        if candidate is None or template.degree(candidate) < 1:
            raise DatasetError(
                "template has no vertex of sufficient degree to host a modification centre"
            )
        _ensure_distinct_neighbor_labels(
            template, candidate, sorted(template.vertex_label_set(), key=str), rng
        )
        center = find_modification_center(template, min_degree=1)
        if center is None:
            raise DatasetError("failed to construct a modification centre on the template")

    slots: List[Tuple[str, object]] = [
        ("edge", neighbor) for neighbor in sorted(template.neighbors(center), key=str)
    ]
    if len(slots) < max_distance:
        extra_needed = max_distance - len(slots)
        slots.extend(
            ("vertex", vertex)
            for vertex in _vertex_slot_candidates(template, center, extra_needed)
        )
    max_distance = min(max_distance, len(slots))
    if max_distance < 1:
        raise DatasetError("template is too small to host any modification slot")

    members: List[Graph] = [template]
    edits: List[Dict[Tuple[str, object], object]] = [{}]
    for variant_index in range(1, family_size):
        distance = rng.randint(1, max_distance)
        chosen = rng.sample(slots, distance)
        variant = template.copy(name=f"{template.name or 'syn'}_v{variant_index}")
        variant_edits: Dict[Tuple[str, object], object] = {}
        for slot in chosen:
            kind, target = slot
            new_label = f"{edge_label_prefix}_{variant_index}_{kind}_{target}"
            if kind == "edge":
                variant.relabel_edge(center, target, new_label)
            else:
                variant.relabel_vertex(target, new_label)
            variant_edits[slot] = new_label
        members.append(variant)
        edits.append(variant_edits)
    return KnownGEDFamily(
        members=members, center=center, slots=slots, edits_from_template=edits
    )


# --------------------------------------------------------------------------- #
# Syn-1 / Syn-2 dataset builders
# --------------------------------------------------------------------------- #
def _build_synthetic_dataset(
    name: str,
    *,
    scale_free: bool,
    sizes: Sequence[int],
    families_per_size: int,
    family_size: int,
    queries_per_size: int,
    max_distance: int,
    seed: int,
) -> Dataset:
    """Shared builder for Syn-1 (scale-free) and Syn-2 (uniform random)."""
    rng = random.Random(seed)
    database_graphs: List[Graph] = []
    query_graphs: List[Graph] = []
    ground_truth = GroundTruth()

    for size_index, size in enumerate(sizes):
        for family_index in range(families_per_size):
            # Disjoint vertex-label sub-alphabets keep distinct families far apart.
            alphabet_tag = f"s{size_index}f{family_index}"
            vertex_labels = [f"V{alphabet_tag}_{i}" for i in range(5)]
            edge_labels = [f"E{alphabet_tag}_{i}" for i in range(3)]
            template_name = f"{name}_{size}_{family_index}"
            if scale_free:
                template = scale_free_labeled_graph(
                    size,
                    edges_per_vertex=3,
                    vertex_labels=vertex_labels,
                    edge_labels=edge_labels,
                    seed=rng.randrange(2**31),
                    name=template_name,
                )
            else:
                template = random_labeled_graph(
                    size,
                    num_edges=3 * size,
                    vertex_labels=vertex_labels,
                    edge_labels=edge_labels,
                    seed=rng.randrange(2**31),
                    name=template_name,
                )
            family = make_known_ged_family(
                template,
                family_size=family_size,
                max_distance=max_distance,
                seed=rng.randrange(2**31),
            )

            member_ids: List[int] = []
            query_members: List[int] = []
            queries_from_family = min(queries_per_size // max(families_per_size, 1) or 1, len(family))
            query_members = rng.sample(range(len(family)), queries_from_family)

            for member_index, member in enumerate(family.members):
                if member_index in query_members:
                    member.name = f"{template_name}_q{member_index}"
                    query_graphs.append(member)
                    member_ids.append(-1)  # placeholder; queries are not in the database
                else:
                    graph_id = len(database_graphs)
                    database_graphs.append(member)
                    member_ids.append(graph_id)

            # record exact GEDs between the family's queries and its database members
            for query_member in query_members:
                query_key = family.members[query_member].name
                for member_index, graph_id in enumerate(member_ids):
                    if graph_id < 0:
                        continue
                    ground_truth.record(query_key, graph_id, family.ged(query_member, member_index))

    return Dataset(
        name=name,
        database_graphs=database_graphs,
        query_graphs=query_graphs,
        ground_truth=ground_truth,
        scale_free=scale_free,
        description=(
            "Appendix-I style synthetic graphs with exactly known pairwise GEDs; "
            f"sizes={list(sizes)}, {families_per_size} families per size"
        ),
        metadata={"sizes": list(sizes), "family_size": family_size, "max_distance": max_distance},
    )


def make_syn1(
    *,
    sizes: Sequence[int] = (100, 200, 500, 1000, 2000),
    families_per_size: int = 2,
    family_size: int = 12,
    queries_per_size: int = 2,
    max_distance: int = 10,
    seed: int = 17,
) -> Dataset:
    """Build the Syn-1 dataset (scale-free graphs, known GEDs).

    The paper's Syn-1 uses sizes from 1K to 100K vertices; the defaults here
    are laptop-scale but the knob is exposed so the full-size experiment can
    be regenerated on bigger hardware.
    """
    return _build_synthetic_dataset(
        "Syn-1",
        scale_free=True,
        sizes=sizes,
        families_per_size=families_per_size,
        family_size=family_size,
        queries_per_size=queries_per_size,
        max_distance=max_distance,
        seed=seed,
    )


def make_syn2(
    *,
    sizes: Sequence[int] = (100, 200, 500, 1000, 2000),
    families_per_size: int = 2,
    family_size: int = 12,
    queries_per_size: int = 2,
    max_distance: int = 10,
    seed: int = 23,
) -> Dataset:
    """Build the Syn-2 dataset (uniform random graphs, known GEDs)."""
    return _build_synthetic_dataset(
        "Syn-2",
        scale_free=False,
        sizes=sizes,
        families_per_size=families_per_size,
        family_size=family_size,
        queries_per_size=queries_per_size,
        max_distance=max_distance,
        seed=seed,
    )


register_dataset("syn-1", make_syn1)
register_dataset("syn1", make_syn1)
register_dataset("syn-2", make_syn2)
register_dataset("syn2", make_syn2)
