"""AASD-like dataset (look-alike of the NCI AIDS Antiviral Screen Data).

The AIDS Antiviral Screen Data (AASD) is the large-scale sibling of the IAM
AIDS dataset: the same kind of molecular graphs (element-labeled atoms,
bond-labeled edges, average degree ≈ 2.1, up to ~93 atoms) but with roughly
twenty times as many graphs (|D| = 37 995 in Table III).  The look-alike
reuses the molecular generator and simply scales the number of templates;
the default is laptop-sized and the knobs allow regenerating the full-scale
collection when time permits.
"""

from __future__ import annotations

import random
from typing import List

from repro.datasets._assembly import assemble_family_dataset, spread_sizes
from repro.datasets.molecules import make_molecule_graph
from repro.datasets.registry import Dataset, register_dataset
from repro.graphs.graph import Graph

__all__ = ["make_aasd_like"]


def make_aasd_like(
    *,
    num_templates: int = 80,
    family_size: int = 12,
    max_distance: int = 10,
    queries_per_family: int = 1,
    min_atoms: int = 10,
    max_atoms: int = 93,
    mode_atoms: int = 30,
    seed: int = 19,
) -> Dataset:
    """Build the AASD look-alike dataset (a larger molecular collection)."""
    rng = random.Random(seed)
    sizes = spread_sizes(rng, num_templates, min_atoms, max_atoms, mode_atoms)
    templates: List[Graph] = [
        make_molecule_graph(size, seed=rng.randrange(2**31), name=f"aasd_t{index}")
        for index, size in enumerate(sizes)
    ]
    return assemble_family_dataset(
        "AASD",
        templates,
        family_size=family_size,
        max_distance=max_distance,
        queries_per_family=queries_per_family,
        seed=rng.randrange(2**31),
        scale_free=True,
        description=(
            "Molecule-like look-alike of the NCI AIDS Antiviral Screen Data: the AIDS "
            "generator scaled to a larger number of compounds, known-GED families"
        ),
    )


register_dataset("aasd", make_aasd_like)
