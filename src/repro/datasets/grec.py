"""GREC-like graph generator (look-alike of the IAM GREC dataset).

The IAM GREC graphs represent symbols from architectural and electronic
drawings: vertices are junction/corner/endpoint primitives, edges are line
or arc segments, the graphs are small (~24 vertices) with average degree
around 2.1.  The generator lays out grid-like symbol skeletons (rectangles,
crosses, and connecting strokes) to mimic that structure.
"""

from __future__ import annotations

import random
from typing import List, Union

from repro.datasets._assembly import assemble_family_dataset, spread_sizes
from repro.datasets.registry import Dataset, register_dataset
from repro.graphs.graph import Graph

RandomState = Union[int, random.Random, None]

__all__ = ["make_grec_graph", "make_grec_like"]

#: Drawing primitive types (vertex labels).
_PRIMITIVES = ["corner", "junction", "endpoint", "circle-center"]
_PRIMITIVE_WEIGHTS = [0.40, 0.30, 0.22, 0.08]

#: Segment types (edge labels).
_SEGMENTS = ["line", "arc", "dashed"]


def _as_rng(seed: RandomState) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def make_grec_graph(num_vertices: int, *, seed: RandomState = None, name: str = None) -> Graph:
    """Generate one GREC-like symbol graph.

    Symbols are built as a closed polygon (the outer contour of the symbol)
    plus internal strokes connecting contour points, producing the mix of
    cycles and trees typical of technical drawings.
    """
    rng = _as_rng(seed)
    graph = Graph(name=name)
    if num_vertices <= 0:
        return graph
    for vertex in range(num_vertices):
        primitive = rng.choices(_PRIMITIVES, weights=_PRIMITIVE_WEIGHTS, k=1)[0]
        graph.add_vertex(vertex, primitive)

    if num_vertices == 1:
        return graph

    # outer contour: a cycle over roughly two thirds of the vertices
    contour_size = max(min(2 * num_vertices // 3, num_vertices), 2)
    for index in range(contour_size):
        nxt = (index + 1) % contour_size
        if index != nxt and not graph.has_edge(index, nxt):
            graph.add_edge(index, nxt, rng.choice(_SEGMENTS))

    # internal strokes: connect remaining vertices to contour points
    for vertex in range(contour_size, num_vertices):
        anchor = rng.randrange(contour_size)
        graph.add_edge(vertex, anchor, rng.choice(_SEGMENTS))

    # a few chords across the contour
    for _ in range(max(num_vertices // 6, 0)):
        u = rng.randrange(contour_size)
        v = rng.randrange(contour_size)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice(_SEGMENTS))
    return graph


def make_grec_like(
    *,
    num_templates: int = 30,
    family_size: int = 12,
    max_distance: int = 10,
    queries_per_family: int = 1,
    min_vertices: int = 6,
    max_vertices: int = 24,
    mode_vertices: int = 12,
    seed: int = 13,
) -> Dataset:
    """Build the GREC look-alike dataset (symbol drawing graphs)."""
    rng = random.Random(seed)
    sizes = spread_sizes(rng, num_templates, min_vertices, max_vertices, mode_vertices)
    templates: List[Graph] = [
        make_grec_graph(size, seed=rng.randrange(2**31), name=f"grec_t{index}")
        for index, size in enumerate(sizes)
    ]
    return assemble_family_dataset(
        "GREC",
        templates,
        family_size=family_size,
        max_distance=max_distance,
        queries_per_family=queries_per_family,
        seed=rng.randrange(2**31),
        scale_free=True,
        description=(
            "Symbol-drawing look-alike of the IAM GREC dataset: primitive-labeled vertices, "
            "segment-labeled edges, average degree ≈ 2.1, known-GED families"
        ),
    )


register_dataset("grec", make_grec_like)
