"""Fingerprint-like graph generator (look-alike of the IAM Fingerprint dataset).

The IAM Fingerprint graphs are built from minutiae skeletons: small, very
sparse graphs (average degree ≈ 1.7, at most ~26 vertices) whose vertices
carry ridge-ending/bifurcation type labels and whose edges carry quantised
orientation labels.  This generator reproduces that regime with short paths
and occasional bifurcations.
"""

from __future__ import annotations

import random
from typing import List, Union

from repro.datasets._assembly import assemble_family_dataset, spread_sizes
from repro.datasets.registry import Dataset, register_dataset
from repro.graphs.graph import Graph

RandomState = Union[int, random.Random, None]

__all__ = ["make_fingerprint_graph", "make_fingerprint_like"]

#: Minutia types (vertex labels).
_MINUTIAE = ["ending", "bifurcation", "core", "delta"]
_MINUTIAE_WEIGHTS = [0.55, 0.30, 0.08, 0.07]

#: Quantised ridge orientations (edge labels).
_ORIENTATIONS = ["o0", "o45", "o90", "o135"]


def _as_rng(seed: RandomState) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def make_fingerprint_graph(num_vertices: int, *, seed: RandomState = None, name: str = None) -> Graph:
    """Generate one fingerprint-like graph (sparse skeleton, degree ≈ 1.7)."""
    rng = _as_rng(seed)
    graph = Graph(name=name)
    if num_vertices <= 0:
        return graph
    for vertex in range(num_vertices):
        minutia = rng.choices(_MINUTIAE, weights=_MINUTIAE_WEIGHTS, k=1)[0]
        graph.add_vertex(vertex, minutia)

    # ridge skeleton: mostly a path, with occasional bifurcations
    for vertex in range(1, num_vertices):
        if rng.random() < 0.85 or vertex < 3:
            anchor = vertex - 1
        else:
            anchor = rng.randrange(max(vertex - 4, 1))
        graph.add_edge(vertex, anchor, rng.choice(_ORIENTATIONS))

    # a few extra connections raise the average degree towards 1.7 without
    # creating hubs
    extra_edges = max(num_vertices // 8, 0)
    for _ in range(extra_edges):
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.choice(_ORIENTATIONS))
    return graph


def make_fingerprint_like(
    *,
    num_templates: int = 45,
    family_size: int = 12,
    max_distance: int = 10,
    queries_per_family: int = 1,
    min_vertices: int = 6,
    max_vertices: int = 26,
    mode_vertices: int = 12,
    seed: int = 11,
) -> Dataset:
    """Build the Fingerprint look-alike dataset (sparse skeleton graphs)."""
    rng = random.Random(seed)
    sizes = spread_sizes(rng, num_templates, min_vertices, max_vertices, mode_vertices)
    templates: List[Graph] = [
        make_fingerprint_graph(size, seed=rng.randrange(2**31), name=f"finger_t{index}")
        for index, size in enumerate(sizes)
    ]
    return assemble_family_dataset(
        "Fingerprint",
        templates,
        family_size=family_size,
        max_distance=max_distance,
        queries_per_family=queries_per_family,
        seed=rng.randrange(2**31),
        scale_free=True,
        description=(
            "Fingerprint-skeleton look-alike of the IAM Fingerprint dataset: minutia-labeled "
            "vertices, orientation-labeled edges, average degree ≈ 1.7, known-GED families"
        ),
    )


register_dataset("fingerprint", make_fingerprint_like)
register_dataset("finger", make_fingerprint_like)
