"""AIDS-like molecular graph generator (look-alike of the IAM AIDS dataset).

The IAM AIDS dataset contains molecular graphs of antiviral screening
compounds: vertices are atoms labelled by their chemical element, edges are
bonds labelled by their valence, the average degree is about 2.1, and the
largest graphs have ~95 atoms (Table III).  This generator produces graphs
with the same statistical profile — chains and rings of carbon with
heteroatom substitutions and single/double/aromatic bonds — without using
the (non-redistributable) original screening data.
"""

from __future__ import annotations

import random
from typing import List, Union

from repro.datasets._assembly import assemble_family_dataset, spread_sizes
from repro.datasets.registry import Dataset, register_dataset
from repro.graphs.graph import Graph

RandomState = Union[int, random.Random, None]

__all__ = ["make_molecule_graph", "make_aids_like"]

#: Element alphabet with occurrence weights roughly matching organic compounds.
_ELEMENTS = ["C", "N", "O", "S", "P", "Cl", "F", "Br"]
_ELEMENT_WEIGHTS = [0.62, 0.12, 0.14, 0.04, 0.02, 0.03, 0.02, 0.01]

#: Bond types (edge labels).
_BONDS = ["single", "double", "aromatic"]
_BOND_WEIGHTS = [0.70, 0.18, 0.12]


def _as_rng(seed: RandomState) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def make_molecule_graph(num_atoms: int, *, seed: RandomState = None, name: str = None) -> Graph:
    """Generate one molecule-like labeled graph with ``num_atoms`` vertices.

    The construction grows a backbone chain, occasionally closes small rings
    (5- or 6-cycles, as in aromatic systems) and attaches short side chains,
    which yields connected graphs with average degree close to the published
    2.1 of the AIDS dataset.
    """
    rng = _as_rng(seed)
    graph = Graph(name=name)
    if num_atoms <= 0:
        return graph

    for atom in range(num_atoms):
        element = rng.choices(_ELEMENTS, weights=_ELEMENT_WEIGHTS, k=1)[0]
        graph.add_vertex(atom, element)

    # backbone chain keeps the molecule connected
    for atom in range(1, num_atoms):
        anchor = atom - 1 if rng.random() < 0.75 else rng.randrange(atom)
        bond = rng.choices(_BONDS, weights=_BOND_WEIGHTS, k=1)[0]
        graph.add_edge(atom, anchor, bond)

    # close a few rings: connect atoms five or six positions apart
    num_rings = max(num_atoms // 12, 0)
    for _ in range(num_rings):
        ring_size = rng.choice((5, 6))
        start = rng.randrange(max(num_atoms - ring_size, 1))
        end = min(start + ring_size - 1, num_atoms - 1)
        if start != end and not graph.has_edge(start, end):
            graph.add_edge(start, end, "aromatic")
    return graph


def make_aids_like(
    *,
    num_templates: int = 40,
    family_size: int = 12,
    max_distance: int = 10,
    queries_per_family: int = 1,
    min_atoms: int = 10,
    max_atoms: int = 95,
    mode_atoms: int = 25,
    seed: int = 7,
) -> Dataset:
    """Build the AIDS look-alike dataset (molecule graphs, known-GED families).

    Defaults give ~440 database graphs and ~40 queries; scale ``num_templates``
    and ``family_size`` up to approach the published |D| = 1896 / |Q| = 100.
    """
    rng = random.Random(seed)
    sizes = spread_sizes(rng, num_templates, min_atoms, max_atoms, mode_atoms)
    templates: List[Graph] = [
        make_molecule_graph(size, seed=rng.randrange(2**31), name=f"aids_t{index}")
        for index, size in enumerate(sizes)
    ]
    return assemble_family_dataset(
        "AIDS",
        templates,
        family_size=family_size,
        max_distance=max_distance,
        queries_per_family=queries_per_family,
        seed=rng.randrange(2**31),
        scale_free=True,
        description=(
            "Molecule-like look-alike of the IAM AIDS dataset: element-labeled atoms, "
            "bond-labeled edges, average degree ≈ 2.1, known-GED families"
        ),
    )


register_dataset("aids", make_aids_like)
