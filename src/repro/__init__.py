"""repro — reproduction of "An Efficient Probabilistic Approach for Graph Similarity Search".

The library implements GBDA (Graph Branch Distance Approximation): a
probabilistic filter for graph similarity search under Graph Edit Distance.
Its three layers are exposed here for convenience:

* the graph substrate (:class:`~repro.graphs.Graph` and edit operations),
* the GBDA core (:func:`~repro.core.graph_branch_distance`,
  :class:`~repro.core.GBDASearch`, priors, and the probabilistic model),
* the competitor baselines and the evaluation harness used to regenerate the
  paper's tables and figures,
* the serving layer (:mod:`repro.serving`): a batched, vectorized,
  snapshot-backed query engine for production-style workloads,
* the offline layer (:mod:`repro.offline`): vectorized EM, multiprocess
  pair sampling, and incremental prior refits via
  :class:`~repro.offline.fitter.OfflineFitter`,
* the service layer (:mod:`repro.service`): an asyncio TCP server that
  micro-batches concurrent remote clients into ``query_batch`` calls, with
  admission control and zero-downtime snapshot hot swap,
* the observability layer (:mod:`repro.obs`): a low-overhead metrics
  registry instrumenting all of the above, distributed per-query stage
  waterfalls (one trace id from client to core), structured event
  logging, burn-rate SLOs, an on-demand sampling profiler, a slow-query
  log, and Prometheus text exposition.

Quickstart
----------
>>> from repro import Graph, GraphDatabase, GBDASearch, SimilarityQuery
>>> g1 = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "x"})
>>> g2 = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "y"})
>>> database = GraphDatabase([g1, g2])
>>> search = GBDASearch(database, max_tau=3, num_prior_pairs=10).fit()
>>> answer = search.search(g1, tau_hat=1, gamma=0.5)

Serving quickstart
------------------
The offline stage (``fit``) is paid once; the serving engine then answers
query batches with vectorized posterior-table lookups and can be persisted
to disk and reloaded in milliseconds:

>>> from repro import BatchQueryEngine, ServingExecutor
>>> engine = BatchQueryEngine.from_search(search)
>>> batch = [SimilarityQuery(g1, 1, 0.5), SimilarityQuery(g2, 1, 0.5)]
>>> answers = engine.query_batch(batch)
>>> engine.save("/tmp/gbda.snapshot")                       # doctest: +SKIP
>>> served = BatchQueryEngine.load("/tmp/gbda.snapshot")    # doctest: +SKIP
>>> executor = ServingExecutor(engine, num_workers=4)
>>> answers = executor.map(batch)
>>> executor.last_stats.num_queries
2
"""

from repro.graphs.graph import Graph, VIRTUAL_LABEL
from repro.core.gbd import graph_branch_distance, variant_graph_branch_distance
from repro.core.branches import Branch, branches_of, branch_multiset
from repro.core.search import GBDASearch, SearchResult
from repro.core.variants import GBDAV1Search, GBDAV2Search
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.core.estimator import GBDAEstimator
from repro.core.plan import ExecutionCore
from repro.db.database import GraphDatabase, GraphDatabaseShard
from repro.db.columnar import ColumnarBranchStore
from repro.db.index import BranchInvertedIndex
from repro.db.query import SimilarityQuery, QueryAnswer
from repro.offline import OfflineFitter
from repro.serving import (
    BatchQueryEngine,
    QueryResultCache,
    ServingExecutor,
    ServingStats,
    load_engine,
    save_engine,
)
from repro.service import (
    AsyncServiceClient,
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    RetryPolicy,
    ServiceClient,
    SimilarityService,
    start_service_thread,
)
from repro.obs import (
    MetricsRegistry,
    SamplingProfiler,
    SLOEngine,
    SlowQueryLog,
    TraceContext,
    Tracer,
    build_info,
    get_logger,
    get_registry,
    prometheus_text,
    register_build_info,
    set_enabled,
)
from repro.baselines import (
    AStarGED,
    BranchFilterGED,
    EstimatorSearch,
    GreedySortGED,
    LSAPGED,
    SeriationGED,
    exact_ged,
)
from repro.datasets.registry import Dataset, build_dataset
from repro.exceptions import (
    CircuitOpenError,
    ConnectionLostError,
    DeadlineExceededError,
    ProtocolError,
    QueryError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    ServingError,
    SnapshotCorruptError,
    SnapshotError,
)

__version__ = "1.8.0"


def _resolved_kernel_backend() -> str:
    """Best-effort concrete kernel backend for the build-info labels."""
    try:
        from repro.db.kernels import resolve_backend

        return resolve_backend("auto")
    except Exception:
        return "unknown"


#: ``repro_build_info`` is registered once at import so every scrape —
#: including one taken before any query ran — identifies the build.
register_build_info(__version__, _resolved_kernel_backend())

__all__ = [
    "Graph",
    "VIRTUAL_LABEL",
    "Branch",
    "branches_of",
    "branch_multiset",
    "graph_branch_distance",
    "variant_graph_branch_distance",
    "GBDASearch",
    "SearchResult",
    "GBDAV1Search",
    "GBDAV2Search",
    "GBDPrior",
    "GEDPrior",
    "GBDAEstimator",
    "ExecutionCore",
    "GraphDatabase",
    "GraphDatabaseShard",
    "ColumnarBranchStore",
    "BranchInvertedIndex",
    "SimilarityQuery",
    "QueryAnswer",
    "OfflineFitter",
    "BatchQueryEngine",
    "ServingExecutor",
    "ServingStats",
    "QueryResultCache",
    "save_engine",
    "load_engine",
    "SimilarityService",
    "ServiceClient",
    "AsyncServiceClient",
    "start_service_thread",
    "RetryPolicy",
    "CircuitBreaker",
    "HedgePolicy",
    "Deadline",
    "MetricsRegistry",
    "Tracer",
    "TraceContext",
    "SlowQueryLog",
    "SLOEngine",
    "SamplingProfiler",
    "get_registry",
    "get_logger",
    "prometheus_text",
    "set_enabled",
    "register_build_info",
    "build_info",
    "AStarGED",
    "exact_ged",
    "LSAPGED",
    "GreedySortGED",
    "SeriationGED",
    "BranchFilterGED",
    "EstimatorSearch",
    "Dataset",
    "build_dataset",
    "ReproError",
    "QueryError",
    "ServingError",
    "SnapshotError",
    "SnapshotCorruptError",
    "ServiceError",
    "ServiceOverloadedError",
    "DeadlineExceededError",
    "ConnectionLostError",
    "CircuitOpenError",
    "ProtocolError",
    "__version__",
]
