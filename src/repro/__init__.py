"""repro — reproduction of "An Efficient Probabilistic Approach for Graph Similarity Search".

The library implements GBDA (Graph Branch Distance Approximation): a
probabilistic filter for graph similarity search under Graph Edit Distance.
Its three layers are exposed here for convenience:

* the graph substrate (:class:`~repro.graphs.Graph` and edit operations),
* the GBDA core (:func:`~repro.core.graph_branch_distance`,
  :class:`~repro.core.GBDASearch`, priors, and the probabilistic model),
* the competitor baselines and the evaluation harness used to regenerate the
  paper's tables and figures.

Quickstart
----------
>>> from repro import Graph, GraphDatabase, GBDASearch, SimilarityQuery
>>> g1 = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "x"})
>>> g2 = Graph.from_dicts({0: "A", 1: "B"}, {(0, 1): "y"})
>>> database = GraphDatabase([g1, g2])
>>> search = GBDASearch(database, max_tau=3, num_prior_pairs=10).fit()
>>> answer = search.search(g1, tau_hat=1, gamma=0.5)
"""

from repro.graphs.graph import Graph, VIRTUAL_LABEL
from repro.core.gbd import graph_branch_distance, variant_graph_branch_distance
from repro.core.branches import Branch, branches_of, branch_multiset
from repro.core.search import GBDASearch, SearchResult
from repro.core.variants import GBDAV1Search, GBDAV2Search
from repro.core.gbd_prior import GBDPrior
from repro.core.ged_prior import GEDPrior
from repro.core.estimator import GBDAEstimator
from repro.db.database import GraphDatabase
from repro.db.query import SimilarityQuery, QueryAnswer
from repro.baselines import (
    AStarGED,
    BranchFilterGED,
    EstimatorSearch,
    GreedySortGED,
    LSAPGED,
    SeriationGED,
    exact_ged,
)
from repro.datasets.registry import Dataset, build_dataset
from repro.exceptions import ReproError

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "VIRTUAL_LABEL",
    "Branch",
    "branches_of",
    "branch_multiset",
    "graph_branch_distance",
    "variant_graph_branch_distance",
    "GBDASearch",
    "SearchResult",
    "GBDAV1Search",
    "GBDAV2Search",
    "GBDPrior",
    "GEDPrior",
    "GBDAEstimator",
    "GraphDatabase",
    "SimilarityQuery",
    "QueryAnswer",
    "AStarGED",
    "exact_ged",
    "LSAPGED",
    "GreedySortGED",
    "SeriationGED",
    "BranchFilterGED",
    "EstimatorSearch",
    "Dataset",
    "build_dataset",
    "ReproError",
    "__version__",
]
