"""Evaluation framework: metrics, ground truth answers, runners, reporting.

Turns the raw query answers of the search methods into the quantities the
paper reports — precision, recall, F1 (Figures 10–21, 31–42), wall-clock
query time (Figures 7–9), and offline costs (Tables IV–V) — and formats them
as text tables/series for the benchmark harness.
"""

from repro.evaluation.metrics import ConfusionCounts, precision_recall_f1, evaluate_answer
from repro.evaluation.ground_truth import true_answer_set, GroundTruthOracle
from repro.evaluation.runner import ExperimentRunner, MethodResult
from repro.evaluation.reporting import format_table, format_series, Table

__all__ = [
    "ConfusionCounts",
    "precision_recall_f1",
    "evaluate_answer",
    "true_answer_set",
    "GroundTruthOracle",
    "ExperimentRunner",
    "MethodResult",
    "format_table",
    "format_series",
    "Table",
]
